//! Gene regulatory network inference on the host backend: exhaustive
//! predictor-pair search per target gene, balanced by PLB-HeC, with the
//! planted regulatory relationships recovered and checked.
//!
//! ```sh
//! cargo run --release --example grn_inference
//! ```

use plb_hec_suite::apps::grn::{GrnCodelet, GrnData};
use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{HostEngine, HostPu};
use std::sync::Arc;

fn main() {
    let genes = 60usize;
    let samples = 50usize;
    println!("Inferring regulators for {genes} genes ({samples} expression samples)");

    // The generator plants gene g = f(gene g-1, gene g-2) for every
    // third gene: inference should rediscover those pairs.
    let data = Arc::new(GrnData::generate(genes, samples, 11));
    let codelet = Arc::new(GrnCodelet::new(Arc::clone(&data)));

    let mut engine = HostEngine::new(vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 4,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]);

    let cfg = PolicyConfig::default().with_initial_block(4);
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = engine
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn plb_hec_suite::runtime::Codelet>,
            genes as u64,
        )
        .expect("host run completes");

    println!(
        "makespan {:.1} ms, {} tasks",
        report.makespan * 1e3,
        report.tasks
    );
    for pu in &report.pus {
        println!(
            "  {:8} targets={:3} ({:4.1}%)",
            pu.name,
            pu.items,
            pu.item_share * 100.0
        );
    }

    // Check the planted relations were recovered.
    let results = codelet.results();
    let mut planted = 0;
    let mut recovered = 0;
    for g in (2..genes).step_by(3) {
        planted += 1;
        let r = results[g].expect("every target inferred");
        if r.score == 0.0 && r.pair == ((g as u32 - 2), (g as u32 - 1)) {
            recovered += 1;
        }
    }
    println!("planted relations recovered: {recovered}/{planted}");
    assert!(
        results.iter().all(Option::is_some),
        "every target must be processed"
    );
    assert_eq!(
        recovered, planted,
        "all planted regulator pairs must be found"
    );
    println!("verified: inference recovered every planted regulatory pair");
}
