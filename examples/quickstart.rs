//! Quickstart: balance a data-parallel workload across the paper's
//! four-machine heterogeneous cluster with PLB-HeC and compare against
//! the greedy baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_hec_suite::plb::{GreedyPolicy, PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::SimEngine;

fn main() {
    // The workload: Black-Scholes over 250k options (paper Fig. 5).
    let app = plb_hec_suite::apps::BlackScholes::new(250_000);
    let cost = app.cost();
    let total = app.total_items();

    // The cluster: machines A-D from the paper's Table I.
    let machines = cluster_scenario(Scenario::Four, false);
    println!("Cluster:");
    for m in &machines {
        println!(
            "  {}: {} + {} GPU processor(s)",
            m.name,
            m.cpu.name,
            m.gpus.len()
        );
    }

    let cfg = PolicyConfig::default().with_initial_block(800);

    // Run under PLB-HeC.
    let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
    let mut plb = PlbHecPolicy::new(&cfg);
    let report = SimEngine::new(&mut cluster, &cost)
        .run(&mut plb, total)
        .expect("run completes");

    println!(
        "\nPLB-HeC: makespan {:.3}s over {} tasks",
        report.makespan, report.tasks
    );
    println!("Block-size distribution (fraction of one round per unit):");
    if let Some(d) = &report.block_distribution {
        for (pu, frac) in report.pus.iter().zip(d) {
            println!(
                "  {:8} {:>6.1}%   (idle {:>4.1}%)",
                pu.name,
                frac * 100.0,
                pu.idle_fraction * 100.0
            );
        }
    }
    for sel in plb.selections() {
        println!(
            "Selection via {:?}: predicted round time {:.3}s, solver cost {:.1}µs",
            sel.method,
            sel.predicted_time,
            sel.solve_seconds * 1e6
        );
    }

    // Same workload under the greedy baseline.
    let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
    let mut greedy = GreedyPolicy::new(&cfg);
    let greedy_report = SimEngine::new(&mut cluster, &cost)
        .run(&mut greedy, total)
        .expect("run completes");

    println!(
        "\nGreedy baseline: makespan {:.3}s ({} tasks) -> PLB-HeC speedup {:.2}x",
        greedy_report.makespan,
        greedy_report.tasks,
        greedy_report.makespan / report.makespan
    );
}
