//! Solve latency of the block-size selection as the cluster grows.
//!
//! Runs the interior-point solver over synthetic heterogeneous rosters
//! of increasing size on both KKT paths — the O(n) arrow-structured
//! Schur elimination the selection problem normally takes, and the
//! dense LU path it would need without the structure — then shows what
//! warm-starting a drifted re-solve saves. This is a human-readable
//! tour of the numbers committed in `BENCH_solver.json`; the
//! methodology lives in `docs/PERFORMANCE.md`.
//!
//! ```text
//! cargo run --release --example solver_scaling
//! ```

use plb_ipm::nlp::FnCurve;
use plb_ipm::{solve, solve_warm, BlockPartitionNlp, BoxedCurve, IpmOptions, WarmStart};
use std::time::Instant;

/// A heterogeneous roster cycling through 64 speed grades, each with a
/// convex finish-time curve (overhead + linear rate + contention),
/// expressed in the normalized share `s = x·n` so per-unit times stay
/// O(1 s) at every roster size (how real fitted curves behave — see
/// `plb_bench::perf::synthetic_curves`).
fn curves(n: usize, drift: f64) -> Vec<BoxedCurve> {
    let k = n as f64;
    (0..n)
        .map(|i| {
            let rate = (1.0 + (i % 64) as f64 * 0.25) * drift;
            let overhead = 0.01 * (1 + i % 3) as f64;
            let quad = 0.05;
            Box::new(FnCurve::new(
                move |x: f64| overhead + x * k / rate + quad * (x * k) * (x * k),
                move |x: f64| k / rate + 2.0 * quad * k * (x * k),
                move |_x: f64| 2.0 * quad * k * k,
            )) as BoxedCurve
        })
        .collect()
}

fn main() {
    let opts = IpmOptions::default();
    println!(
        "{:>7} | {:>13} {:>6} {:>10} | {:>13} {:>6} | {:>10} {:>10}",
        "n_pus", "structured", "iters", "status", "dense", "iters", "cold iters", "warm iters"
    );
    for &n in &[10usize, 100, 1000, 10000] {
        // Structured (arrow) path, cold.
        let nlp = BlockPartitionNlp::new(curves(n, 1.0));
        let t0 = Instant::now();
        let sol = solve(&nlp, &opts).expect("structured solve");
        let structured = t0.elapsed();

        // Dense oracle — skipped at n = 10000, where the KKT matrix
        // alone would need gigabytes.
        let dense = (n <= 1000).then(|| {
            let dense_opts = IpmOptions {
                force_dense_kkt: true,
                ..Default::default()
            };
            let nlp = BlockPartitionNlp::new(curves(n, 1.0));
            let t0 = Instant::now();
            let dsol = solve(&nlp, &dense_opts).expect("dense solve");
            (t0.elapsed(), dsol.iterations)
        });

        // Rebalance scenario: 3% model drift, re-solved cold vs warm.
        let drifted = BlockPartitionNlp::new(curves(n, 1.03));
        let cold = solve(&drifted, &opts).expect("cold re-solve");
        let warm = solve_warm(&drifted, &opts, Some(&WarmStart::from_solution(&sol)))
            .expect("warm re-solve");

        let (dense_str, dense_iters) = match dense {
            Some((d, it)) => (
                format!("{:>10.1} us", d.as_secs_f64() * 1e6),
                format!("{it}"),
            ),
            None => ("- (too big)".to_string(), "-".to_string()),
        };
        println!(
            "{:>7} | {:>10.1} us {:>6} {:>10?} | {:>13} {:>6} | {:>10} {:>10}",
            n,
            structured.as_secs_f64() * 1e6,
            sol.iterations,
            sol.status,
            dense_str,
            dense_iters,
            cold.iterations,
            warm.iterations,
        );
    }
}
