//! Black-Scholes option pricing on the host backend, balanced by
//! PLB-HeC, with a put-call-parity audit of every priced option.
//!
//! ```sh
//! cargo run --release --example blackscholes_pricing
//! ```

use plb_hec_suite::apps::blackscholes::{BsCodelet, BsData};
use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{HostEngine, HostPu};
use std::sync::Arc;

fn main() {
    let n_options = 200_000usize;
    println!("Pricing {n_options} European options across three unequal units");

    let data = Arc::new(BsData::generate(n_options, 7));
    let codelet = Arc::new(BsCodelet::new(Arc::clone(&data)));

    let mut engine = HostEngine::new(vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 4,
        },
        HostPu {
            name: "mid".into(),
            kind: PuKind::Cpu,
            threads: 2,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]);

    let cfg = PolicyConfig::default().with_initial_block(4_000);
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = engine
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn plb_hec_suite::runtime::Codelet>,
            n_options as u64,
        )
        .expect("host run completes");

    println!(
        "makespan {:.1} ms, {} tasks",
        report.makespan * 1e3,
        report.tasks
    );
    for pu in &report.pus {
        println!(
            "  {:8} options={:7} ({:4.1}%)",
            pu.name,
            pu.items,
            pu.item_share * 100.0
        );
    }

    // Audit: every option priced, and put-call parity holds:
    // call - put = S - K·e^(-rT).
    let prices = codelet.results();
    let mut priced = 0usize;
    let mut worst_parity = 0.0f64;
    for (o, &(call, put)) in data.options.iter().zip(&prices) {
        if call == 0.0 && put == 0.0 {
            continue;
        }
        priced += 1;
        let parity = call - put;
        let expect = o.s as f64 - o.k as f64 * (-(o.r as f64) * o.t as f64).exp();
        worst_parity = worst_parity.max((parity - expect).abs());
    }
    println!("priced {priced}/{n_options}; worst put-call parity violation {worst_parity:.2e}");
    assert_eq!(
        priced, n_options,
        "every option must be priced exactly once"
    );
    assert!(worst_parity < 1e-3, "put-call parity audit failed");
    println!("verified: all options priced, parity holds");
}
