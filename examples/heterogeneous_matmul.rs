//! Matrix multiplication on the host backend: real kernels, real threads,
//! real wall-clock times.
//!
//! The host engine realizes heterogeneity with differently sized thread
//! pools (a "GPU" is a wide pool, a weak CPU a narrow one). PLB-HeC
//! probes them, fits curves, solves the block partition, and the result
//! is verified against a reference multiplication.
//!
//! ```sh
//! cargo run --release --example heterogeneous_matmul
//! ```

use plb_hec_suite::apps::matmul::{MatMulCodelet, MatMulData};
use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{HostEngine, HostPu};
use std::sync::Arc;

fn main() {
    let n = 768usize;
    println!("C = A x B at order {n} across four unequal units (real threads)");

    let data = Arc::new(MatMulData::generate(n, 42));
    let codelet = Arc::new(MatMulCodelet::new(Arc::clone(&data)));

    let mut engine = HostEngine::new(vec![
        HostPu {
            name: "gpu-like/wide".into(),
            kind: PuKind::Gpu,
            threads: 4,
        },
        HostPu {
            name: "gpu-like/mid".into(),
            kind: PuKind::Gpu,
            threads: 2,
        },
        HostPu {
            name: "cpu/1".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
        HostPu {
            name: "cpu/2".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]);

    let cfg = PolicyConfig::default().with_initial_block(16);
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = engine
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn plb_hec_suite::runtime::Codelet>,
            n as u64,
        )
        .expect("host run completes");

    println!(
        "makespan {:.1} ms, {} tasks",
        report.makespan * 1e3,
        report.tasks
    );
    for pu in &report.pus {
        println!(
            "  {:14} columns={:4} ({:4.1}%)  busy {:6.1} ms",
            pu.name,
            pu.items,
            pu.item_share * 100.0,
            pu.busy_s * 1e3
        );
    }

    // Verify against a straightforward reference product.
    let c = codelet.result();
    let mut max_err = 0.0f32;
    for j in 0..n {
        for i in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += data.a[i * n + k] * data.b[j * n + k];
            }
            max_err = max_err.max((c[j * n + i] - acc).abs());
        }
    }
    println!("max |C - reference| = {max_err:.2e}");
    assert!(max_err < 1e-2, "result verification failed");
    println!("verified: distributed result matches the reference multiplication");
}
