//! Dense neural-network layer inference balanced by PLB-HeC — the
//! machine-learning workload class the paper's introduction motivates —
//! with a Chrome-trace export of the run.
//!
//! ```sh
//! cargo run --release --example nn_inference
//! # then open /tmp/nn_inference_trace.json in chrome://tracing
//! ```

use plb_hec_suite::apps::nnlayer::{NnLayer, NnLayerCodelet, NnLayerData};
use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::CostModel;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuKind, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{HostEngine, HostPu, SimEngine};
use std::sync::Arc;

fn main() {
    // Part 1 — simulator: a big layer (1 GB of weights) across the
    // paper's four machines. The weight matrix no longer fits the small
    // GPUs, so their tasks re-stream it: the balancer discovers this
    // through its transfer curves and shifts their share accordingly.
    let app = NnLayer::new(200_000, 16384, 16384);
    let cost = app.cost();
    println!(
        "Simulated: batch of {} samples through a {}x{} layer ({} MB of weights)",
        app.samples,
        app.inputs,
        app.outputs,
        (cost.broadcast_bytes() / 1e6) as u64
    );
    let machines = cluster_scenario(Scenario::Four, false);
    let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
    let cfg = PolicyConfig::default().with_initial_block(400);
    let mut policy = PlbHecPolicy::new(&cfg);
    let mut engine = SimEngine::new(&mut cluster, &cost);
    let report = engine.run(&mut policy, app.total_items()).expect("sim run");
    println!(
        "  makespan {:.3}s across {} units:",
        report.makespan,
        report.pus.len()
    );
    for pu in &report.pus {
        println!(
            "    {:8} {:>7} samples ({:>5.1}%)",
            pu.name,
            pu.items,
            pu.item_share * 100.0
        );
    }
    let names: Vec<String> = report.pus.iter().map(|p| p.name.clone()).collect();
    let trace_json = engine.last_trace().expect("trace").to_chrome_trace(&names);
    let path = "/tmp/nn_inference_trace.json";
    std::fs::write(path, trace_json).expect("write trace");
    println!("  wrote Chrome trace to {path} (open in chrome://tracing)\n");

    // Part 2 — host backend: a small layer for real, verified against
    // the reference forward pass.
    let samples = 4_000usize;
    let data = Arc::new(NnLayerData::generate(samples, 256, 128, 7));
    let codelet = Arc::new(NnLayerCodelet::new(Arc::clone(&data)));
    let mut host = HostEngine::new(vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 4,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]);
    let cfg = PolicyConfig::default().with_initial_block(100);
    let mut policy = PlbHecPolicy::new(&cfg);
    let host_report = host
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn plb_hec_suite::runtime::Codelet>,
            samples as u64,
        )
        .expect("host run");
    println!(
        "Host backend: {} samples in {:.1} ms over {} tasks",
        host_report.total_items,
        host_report.makespan * 1e3,
        host_report.tasks
    );

    // Verify every sample against the reference forward pass.
    let acts = codelet.activations();
    let mut max_err = 0.0f32;
    for s in 0..samples {
        let expect = data.reference_forward(s);
        for (o, &e) in expect.iter().enumerate() {
            max_err = max_err.max((acts[s * data.outputs + o] - e).abs());
        }
    }
    println!("max |activation - reference| = {max_err:.2e}");
    assert!(max_err < 1e-4, "forward-pass verification failed");
    println!("verified: distributed inference matches the reference layer");
}
