//! The paper's future-work cloud scenario (Section VI): "the quality of
//! service may change during execution, and the addition of the
//! execution time difference threshold permits readjustments in data
//! distributions."
//!
//! A contended cloud node slows one GPU 5x mid-run; the finish-time
//! threshold fires, PLB-HeC re-fits and re-solves, and the new
//! distribution shifts work off the degraded unit. A greedy run on the
//! same drifting cluster is shown for contrast, plus a Gantt chart of
//! the rebalance.
//!
//! ```sh
//! cargo run --release --example cloud_rebalance
//! ```

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuId, Scenario};
use plb_hec_suite::plb::{GreedyPolicy, PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{
    write_jsonl, EventKind, Perturbation, PerturbationKind, SimEngine, TraceHeader,
    TRACE_FORMAT_VERSION,
};

fn main() {
    let app = plb_hec_suite::apps::MatMul::new(16384);
    let cost = app.cost();
    let total = app.total_items();
    let machines = cluster_scenario(Scenario::Two, true);
    let slowed = PuId(1); // A/gpu0

    let cfg = PolicyConfig::default()
        .with_initial_block(16)
        .with_round_fraction(0.12);

    // Baseline (no drift) to size the perturbation time.
    let baseline = {
        let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
        let mut p = PlbHecPolicy::new(&cfg);
        SimEngine::new(&mut cluster, &cost)
            .run(&mut p, total)
            .expect("baseline")
            .makespan
    };
    let drift_at = 0.45 * baseline;
    let drift = vec![Perturbation {
        at: drift_at,
        kind: PerturbationKind::SetSlowdown(slowed, 5.0),
    }];
    println!("Stable-cluster makespan {baseline:.2}s; at t={drift_at:.2}s A/gpu0 slows 5x.\n");

    // PLB-HeC under drift.
    let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
    let mut plb = PlbHecPolicy::new(&cfg);
    let mut engine = SimEngine::new(&mut cluster, &cost).with_perturbations(drift.clone());
    let report = engine.run(&mut plb, total).expect("plb run completes");
    let names: Vec<String> = report.pus.iter().map(|p| p.name.clone()).collect();
    println!(
        "PLB-HeC under drift: makespan {:.2}s, {} rebalance(s), {} selection(s)",
        report.makespan,
        plb.rebalances(),
        plb.selections().len()
    );
    for (i, sel) in plb.selections().iter().enumerate() {
        let shares: Vec<String> = sel
            .fractions
            .iter()
            .map(|f| format!("{:4.1}%", f * 100.0))
            .collect();
        println!("  selection {}: [{}]", i + 1, shares.join(", "));
    }
    println!("\nGantt ('#' compute, '-' transfer, '.' idle):");
    print!(
        "{}",
        engine.last_trace().expect("trace").ascii_gantt(&names, 96)
    );

    // The structured event stream shows the decision trail behind the
    // Gantt: when the threshold fired and by how much the block ran over.
    let sink = engine.last_events().expect("events recorded");
    for e in sink.events() {
        if let EventKind::RebalanceTriggered {
            ref trigger,
            expected_s,
            observed_s,
            ..
        } = e.kind
        {
            println!(
                "\nrebalance at t={:.3}s on {}: {} (block expected {:.4}s, ran {:.4}s)",
                e.t,
                e.pu.map(|p| names[p].clone()).unwrap_or_else(|| "-".into()),
                trigger,
                expected_s,
                observed_s
            );
        }
    }

    // Export the full trace for `plb trace --input <file>` (the JSONL
    // schema is documented in docs/OBSERVABILITY.md).
    let header = TraceHeader {
        version: TRACE_FORMAT_VERSION,
        policy: report.policy.clone(),
        pu_names: names.clone(),
    };
    let jsonl = write_jsonl(
        &header,
        engine.last_trace().expect("trace").segments(),
        &sink.events(),
    );
    let out = std::env::temp_dir().join("cloud_rebalance.trace.jsonl");
    std::fs::write(&out, jsonl).expect("write event trace");
    println!(
        "\nwrote {} (inspect with `plb trace --input ...`)",
        out.display()
    );

    // Greedy under the same drift.
    let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
    let mut greedy = GreedyPolicy::new(&cfg);
    let g = SimEngine::new(&mut cluster, &cost)
        .with_perturbations(drift)
        .run(&mut greedy, total)
        .expect("greedy run completes");
    println!(
        "\nGreedy under the same drift: {:.2}s -> PLB-HeC is {:.2}x faster",
        g.makespan,
        g.makespan / report.makespan
    );
    assert!(
        plb.rebalances() >= 1,
        "the drift must trigger at least one rebalance"
    );
}
