//! The paper's future-work fault-tolerance scenario (Section VI):
//! "machines may become unavailable during execution. In this scenario,
//! a simple redistribution of the data among the remaining devices
//! would permit the application to re-adapt."
//!
//! Mid-run, an entire machine's units fail. The in-flight blocks are
//! re-credited to the pool, PLB-HeC re-solves the partition over the
//! survivors using its already-fitted curves, and the run completes
//! with every item processed exactly once.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuId, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{Perturbation, PerturbationKind, SimEngine};

fn main() {
    let app = plb_hec_suite::apps::GrnInference::new(80_000);
    let cost = app.cost();
    let total = app.total_items();
    let machines = cluster_scenario(Scenario::Three, true);
    // 6 units: A/cpu, A/gpu0, B/cpu, B/gpu0, C/cpu, C/gpu0.

    let cfg = PolicyConfig::default().with_initial_block(80);

    let baseline = {
        let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
        let mut p = PlbHecPolicy::new(&cfg);
        SimEngine::new(&mut cluster, &cost)
            .run(&mut p, total)
            .expect("baseline")
            .makespan
    };
    let fail_at = 0.4 * baseline;
    println!("Healthy 3-machine makespan: {baseline:.2}s");
    println!("At t = {fail_at:.2}s machine C disappears (both of its units fail).\n");

    let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
    let mut plb = PlbHecPolicy::new(&cfg);
    let mut engine = SimEngine::new(&mut cluster, &cost).with_perturbations(vec![
        Perturbation {
            at: fail_at,
            kind: PerturbationKind::Fail(PuId(4)),
        }, // C/cpu
        Perturbation {
            at: fail_at,
            kind: PerturbationKind::Fail(PuId(5)),
        }, // C/gpu0
    ]);
    let report = engine
        .run(&mut plb, total)
        .expect("run survives the failure");

    println!(
        "Run completed: makespan {:.2}s (vs {baseline:.2}s healthy)",
        report.makespan
    );
    println!("Redistributions performed: {}", plb.rebalances());
    println!("Items processed per unit:");
    for pu in &report.pus {
        println!(
            "  {:8} {:7} items ({:4.1}%)",
            pu.name,
            pu.items,
            pu.item_share * 100.0
        );
    }

    assert_eq!(
        report.total_items, total,
        "every item processed despite the failure"
    );
    assert!(
        plb.rebalances() >= 1,
        "failure must trigger a redistribution"
    );
    assert!(
        report.makespan > baseline,
        "losing a machine mid-run costs time, but the run completes"
    );
    println!("\nverified: all {total} items processed despite losing machine C mid-run");
}
