//! Balance a workload on a cluster you define yourself — no Table I,
//! just `MachineSpec`s — and reuse the recorded profiles with the
//! static-profile policy ([17]) for a repeat run.
//!
//! ```sh
//! cargo run --release --example custom_cluster
//! ```

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{ClusterSim, CpuSpec, GpuSpec, MachineSpec};
use plb_hec_suite::plb::{PerfProfile, PlbHecPolicy, PolicyConfig, StaticProfilePolicy};
use plb_hec_suite::runtime::SimEngine;

fn my_cluster() -> Vec<MachineSpec> {
    vec![
        MachineSpec {
            name: "workstation".into(),
            cpu: CpuSpec {
                name: "Ryzen 9 5950X".into(),
                cores: 16,
                clock_ghz: 3.4,
                cache_mb: 64.0,
                ram_gb: 128.0,
                simd_width: 8,
                hyperthreading: true,
            },
            gpus: vec![GpuSpec {
                name: "RTX 3080-class".into(),
                cuda_cores: 8704,
                sms: 68,
                clock_ghz: 1.44,
                mem_bandwidth_gbs: 760.0,
                mem_gb: 10.0,
            }],
        },
        MachineSpec {
            name: "old-node".into(),
            cpu: CpuSpec {
                name: "Core i5-6500".into(),
                cores: 4,
                clock_ghz: 3.2,
                cache_mb: 6.0,
                ram_gb: 16.0,
                simd_width: 8,
                hyperthreading: false,
            },
            gpus: vec![],
        },
    ]
}

fn main() {
    let machines = my_cluster();
    let app = plb_hec_suite::apps::BlackScholes::new(400_000);
    let cost = app.cost();
    let total = app.total_items();
    let cfg = PolicyConfig::default().with_initial_block(1_000);
    let opts = ClusterOptions::default();

    // First run: PLB-HeC profiles the cluster online.
    let mut cluster = ClusterSim::build(&machines, &opts);
    let mut plb = PlbHecPolicy::new(&cfg);
    let report = SimEngine::new(&mut cluster, &cost)
        .run(&mut plb, total)
        .expect("run");
    println!("PLB-HeC on the custom cluster: {:.4}s", report.makespan);
    for pu in &report.pus {
        println!(
            "  {:18} {:>8} options ({:>5.1}%), {:>8} KiB staged",
            pu.name,
            pu.items,
            pu.item_share * 100.0,
            pu.bytes_in / 1024
        );
    }

    // Second run: reuse profiles recorded offline, as the static
    // algorithm [17] requires — no probing phase at all.
    let mut profiler = ClusterSim::build(&machines, &opts);
    let models: Vec<_> = profiler
        .ids()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|id| {
            let mut p = PerfProfile::new();
            for &b in &[1_000u64, 2_000, 4_000, 8_000, 16_000, 32_000] {
                let d = profiler.device_mut(id);
                let xfer = d.transfer_time(&cost, b);
                let proc = d.proc_time(&cost, b);
                p.record(b, proc, xfer);
            }
            p.fit().expect("profiles fit")
        })
        .collect();

    let mut cluster = ClusterSim::build(&machines, &opts);
    let mut static_p = StaticProfilePolicy::from_profiles(&cfg, models);
    let static_report = SimEngine::new(&mut cluster, &cost)
        .run(&mut static_p, total)
        .expect("static run");
    println!(
        "\nStatic-profile rerun (no probing): {:.4}s ({:+.1}% vs PLB-HeC)",
        static_report.makespan,
        (static_report.makespan / report.makespan - 1.0) * 100.0
    );
    assert_eq!(report.total_items, total);
    assert_eq!(static_report.total_items, total);
}
