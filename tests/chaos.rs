//! The seeded chaos harness end-to-end: generated fault plans are
//! deterministic and structurally valid, simulator runs survive them
//! across many seeds under both a trivial policy and full PLB-HeC, and
//! chaos composes with the durability layer (the CI smoke scenario).

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::workload::LinearCost;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::checkpoint::load;
use plb_hec_suite::runtime::policy::FixedBlockPolicy;
use plb_hec_suite::runtime::{CheckpointConfig, FaultPlan, SimEngine};
use std::path::PathBuf;

fn cost() -> LinearCost {
    LinearCost {
        label: "chaos".into(),
        flops_per_item: 1e5,
        in_bytes_per_item: 64.0,
        out_bytes_per_item: 64.0,
        threads_per_item: 64.0,
    }
}

fn cluster() -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(Scenario::Two, false),
        &ClusterOptions {
            noise_sigma: 0.01,
            ..Default::default()
        },
    )
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("plb-chaos-{}-{name}", std::process::id()));
    p
}

/// One seed, one plan: re-generating must be bit-identical (the whole
/// point of a *seeded* harness is a reproducible failure).
#[test]
fn chaos_plans_are_reproducible() {
    for seed in 0..64u64 {
        let a = FaultPlan::chaos(seed, 4, 8);
        let b = FaultPlan::chaos(seed, 4, 8);
        assert_eq!(a.faults, b.faults, "seed {seed} not reproducible");
    }
}

/// A trivial policy completes the full workload under chaos for every
/// seed: unit 0 is always kept healthy, so progress is guaranteed no
/// matter what the plan throws at the rest of the cluster.
#[test]
fn sim_completes_under_chaos_for_many_seeds() {
    let total = 200_000u64;
    let c = cost();
    for seed in [3u64, 17, 42, 99, 1234] {
        let mut cl = cluster();
        let n_units = cl.ids().count();
        let plan = FaultPlan::chaos(seed, n_units, 2 * n_units);
        let mut policy = FixedBlockPolicy { block: 4_000 };
        let report = SimEngine::new(&mut cl, &c)
            .with_faults(plan)
            .run(&mut policy, total)
            .unwrap_or_else(|e| panic!("seed {seed}: run failed: {e}"));
        assert_eq!(report.total_items, total, "seed {seed}");
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        assert_eq!(per_pu, total, "seed {seed}: items lost or duplicated");
    }
}

/// The full PLB-HeC pipeline (probing, fitting, solving, rebalancing)
/// survives a chaos plan and still accounts for every item.
#[test]
fn plb_hec_completes_under_chaos() {
    let total = 2_000_000u64;
    let c = cost();
    let mut cl = cluster();
    let n_units = cl.ids().count();
    let plan = FaultPlan::chaos(42, n_units, 2 * n_units);
    let cfg = PolicyConfig::default()
        .with_initial_block(1_000)
        .with_round_fraction(0.25);
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = SimEngine::new(&mut cl, &c)
        .with_faults(plan)
        .run(&mut policy, total)
        .expect("PLB-HeC completes under chaos");
    assert_eq!(report.total_items, total);
    let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
    assert_eq!(per_pu, total);
}

/// Chaos composes with checkpointing — the combination CI smokes with a
/// fixed seed: despite injected failures, the final snapshot's cover is
/// the entire workload.
#[test]
fn chaos_run_still_checkpoints_a_complete_cover() {
    let path = tmp_file("cover");
    let total = 200_000u64;
    let c = cost();
    let mut cl = cluster();
    let n_units = cl.ids().count();
    let plan = FaultPlan::chaos(7, n_units, 2 * n_units);
    let mut policy = FixedBlockPolicy { block: 4_000 };
    let report = SimEngine::new(&mut cl, &c)
        .with_faults(plan)
        .with_checkpoint(CheckpointConfig::new(&path).with_interval(4))
        .run(&mut policy, total)
        .expect("chaos run with checkpointing completes");
    assert_eq!(report.total_items, total);
    assert!(report.events.checkpoints >= 1);
    let ckpt = load(&path).expect("final snapshot loadable");
    assert_eq!(ckpt.completed, vec![(0, total)]);
    std::fs::remove_file(&path).unwrap();
}
