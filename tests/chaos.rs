//! The seeded chaos harness end-to-end: generated fault plans are
//! deterministic and structurally valid, simulator runs survive them
//! across many seeds under both a trivial policy and full PLB-HeC,
//! chaos composes with the durability layer (the CI smoke scenario),
//! and the weighted irregular workload (SpMV) survives chaos on both
//! engines without losing a row or a cost unit.

use plb_hec_suite::apps::Spmv;
use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::workload::LinearCost;
use plb_hec_suite::hetsim::PuId;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuKind, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::checkpoint::load;
use plb_hec_suite::runtime::policy::FixedBlockPolicy;
use plb_hec_suite::runtime::{
    CheckpointConfig, Codelet, FaultPlan, FnCodelet, HostEngine, HostPu, Policy, SchedulerCtx,
    SimEngine, TaskFailure, TaskInfo,
};
use std::path::PathBuf;
use std::sync::Arc;

/// The minimal fault-aware policy shape: a fixed *cost* budget per
/// block, re-pumped to every idle unit on every callback so re-credited
/// work from lost or quarantined units is always re-dispatched.
struct RedispatchPolicy {
    block: u64,
}

impl RedispatchPolicy {
    fn pump(&self, ctx: &mut dyn SchedulerCtx) {
        let ids: Vec<PuId> = ctx
            .pus()
            .iter()
            .filter(|p| p.available)
            .map(|p| p.id)
            .collect();
        for id in ids {
            if ctx.remaining_cost() == 0 {
                break;
            }
            if !ctx.is_busy(id) {
                ctx.assign(id, self.block);
            }
        }
    }
}

impl Policy for RedispatchPolicy {
    fn name(&self) -> &str {
        "redispatch"
    }
    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
        self.pump(ctx);
    }
    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, _done: &TaskInfo) {
        self.pump(ctx);
    }
    fn on_device_lost(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_device_restored(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_task_failed(&mut self, ctx: &mut dyn SchedulerCtx, _failure: &TaskFailure) {
        self.pump(ctx);
    }
}

fn cost() -> LinearCost {
    LinearCost {
        label: "chaos".into(),
        flops_per_item: 1e5,
        in_bytes_per_item: 64.0,
        out_bytes_per_item: 64.0,
        threads_per_item: 64.0,
    }
}

fn cluster() -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(Scenario::Two, false),
        &ClusterOptions {
            noise_sigma: 0.01,
            ..Default::default()
        },
    )
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("plb-chaos-{}-{name}", std::process::id()));
    p
}

/// One seed, one plan: re-generating must be bit-identical (the whole
/// point of a *seeded* harness is a reproducible failure).
#[test]
fn chaos_plans_are_reproducible() {
    for seed in 0..64u64 {
        let a = FaultPlan::chaos(seed, 4, 8);
        let b = FaultPlan::chaos(seed, 4, 8);
        assert_eq!(a.faults, b.faults, "seed {seed} not reproducible");
    }
}

/// A trivial policy completes the full workload under chaos for every
/// seed: unit 0 is always kept healthy, so progress is guaranteed no
/// matter what the plan throws at the rest of the cluster.
#[test]
fn sim_completes_under_chaos_for_many_seeds() {
    let total = 200_000u64;
    let c = cost();
    for seed in [3u64, 17, 42, 99, 1234] {
        let mut cl = cluster();
        let n_units = cl.ids().count();
        let plan = FaultPlan::chaos(seed, n_units, 2 * n_units);
        let mut policy = FixedBlockPolicy { block: 4_000 };
        let report = SimEngine::new(&mut cl, &c)
            .with_faults(plan)
            .run(&mut policy, total)
            .unwrap_or_else(|e| panic!("seed {seed}: run failed: {e}"));
        assert_eq!(report.total_items, total, "seed {seed}");
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        assert_eq!(per_pu, total, "seed {seed}: items lost or duplicated");
    }
}

/// The full PLB-HeC pipeline (probing, fitting, solving, rebalancing)
/// survives a chaos plan and still accounts for every item.
#[test]
fn plb_hec_completes_under_chaos() {
    let total = 2_000_000u64;
    let c = cost();
    let mut cl = cluster();
    let n_units = cl.ids().count();
    let plan = FaultPlan::chaos(42, n_units, 2 * n_units);
    let cfg = PolicyConfig::default()
        .with_initial_block(1_000)
        .with_round_fraction(0.25);
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = SimEngine::new(&mut cl, &c)
        .with_faults(plan)
        .run(&mut policy, total)
        .expect("PLB-HeC completes under chaos");
    assert_eq!(report.total_items, total);
    let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
    assert_eq!(per_pu, total);
}

/// The weighted irregular workload survives chaos on the simulator:
/// cost-budgeted claims, re-credits of failed weighted blocks, and
/// quarantine re-dispatch must still account for every row across
/// many seeds.
#[test]
fn spmv_sim_completes_under_chaos_for_many_seeds() {
    let rows = 20_000u64;
    let app = Spmv::new(rows, 1.2, 11).expect("valid spmv parameters");
    let c = app.cost();
    let weights = app.weights();
    let block = (weights.total_cost(rows) / 50).max(1);
    for seed in [3u64, 17, 42, 99, 1234] {
        let mut cl = cluster();
        let n_units = cl.ids().count();
        let plan = FaultPlan::chaos(seed, n_units, 2 * n_units);
        let mut policy = RedispatchPolicy { block };
        let report = SimEngine::new(&mut cl, &c)
            .with_weights(Arc::clone(&weights))
            .with_faults(plan)
            .run(&mut policy, rows)
            .unwrap_or_else(|e| panic!("seed {seed}: spmv sim run failed: {e}"));
        assert_eq!(report.total_items, rows, "seed {seed}");
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        assert_eq!(per_pu, rows, "seed {seed}: rows lost or duplicated");
    }
}

/// The same weighted chaos scenario on the real-thread host engine:
/// wall-clock timing and real worker threads must not break the
/// cost-budgeted re-credit path either.
#[test]
fn spmv_host_completes_under_chaos() {
    let rows = 20_000u64;
    let app = Spmv::new(rows, 1.2, 11).expect("valid spmv parameters");
    let weights = app.weights();
    let block = (weights.total_cost(rows) / 50).max(1);
    let n_units = cluster().ids().count();
    let pus: Vec<HostPu> = (0..n_units)
        .map(|i| HostPu {
            name: format!("pu{i}"),
            kind: PuKind::Cpu,
            threads: 1,
        })
        .collect();
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("noop", |_r, _| {}));
    for seed in [3u64, 42] {
        let plan = FaultPlan::chaos(seed, n_units, 2 * n_units);
        let mut policy = RedispatchPolicy { block };
        let report = HostEngine::new(pus.clone())
            .with_weights(Arc::clone(&weights))
            .with_faults(plan)
            .run(&mut policy, Arc::clone(&codelet), rows)
            .unwrap_or_else(|e| panic!("seed {seed}: spmv host run failed: {e}"));
        assert_eq!(report.total_items, rows, "seed {seed}");
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        assert_eq!(per_pu, rows, "seed {seed}: rows lost or duplicated");
    }
}

/// Chaos composes with checkpointing — the combination CI smokes with a
/// fixed seed: despite injected failures, the final snapshot's cover is
/// the entire workload.
#[test]
fn chaos_run_still_checkpoints_a_complete_cover() {
    let path = tmp_file("cover");
    let total = 200_000u64;
    let c = cost();
    let mut cl = cluster();
    let n_units = cl.ids().count();
    let plan = FaultPlan::chaos(7, n_units, 2 * n_units);
    let mut policy = FixedBlockPolicy { block: 4_000 };
    let report = SimEngine::new(&mut cl, &c)
        .with_faults(plan)
        .with_checkpoint(CheckpointConfig::new(&path).with_interval(4))
        .run(&mut policy, total)
        .expect("chaos run with checkpointing completes");
    assert_eq!(report.total_items, total);
    assert!(report.events.checkpoints >= 1);
    let ckpt = load(&path).expect("final snapshot loadable");
    assert_eq!(ckpt.completed, vec![(0, total)]);
    std::fs::remove_file(&path).unwrap();
}
