//! Cross-crate acceptance test for the fault-tolerance layer: the full
//! PLB-HeC policy on the real-thread host engine, with a panicking
//! kernel injected on one unit and a hung kernel on another. The run
//! must complete on the remaining units with retries, a quarantine,
//! and a profile-aware rebalance all on record.

use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{
    Codelet, EventKind, Fault, FaultKind, FaultPlan, FaultToleranceConfig, FnCodelet, HostEngine,
    HostPu, SimEngine,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn three_pus() -> Vec<HostPu> {
    vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 2,
        },
        HostPu {
            name: "mid".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]
}

/// A counting codelet with per-item busy work, so blocks have real
/// duration and the run is still in flight when the injected faults
/// land mid-execution.
fn spin_codelet(counter: Arc<AtomicU64>) -> Arc<dyn Codelet> {
    Arc::new(FnCodelet::new("spin-count", move |r, _| {
        let mut acc = 0u64;
        for i in r.clone() {
            for k in 0..2_000u64 {
                acc = acc.wrapping_add(i ^ k).rotate_left(5);
            }
        }
        std::hint::black_box(acc);
        counter.fetch_add(r.end - r.start, Ordering::Relaxed);
    }))
}

#[test]
fn plb_hec_host_run_survives_panic_and_hang() {
    // Unit 1 panics persistently from its 6th attempt on (it fails its
    // way into quarantine); unit 2 hangs inside the kernel on its 8th
    // attempt (the watchdog declares it lost). Late attempt indices let
    // the PLB-HeC modeling phase finish cleanly first, so the response
    // happens mid-execution with fitted models — the paper's
    // device-loss scenario. Unit 0 carries the run home.
    let n: u64 = 60_000;
    let touched = Arc::new(AtomicU64::new(0));
    let codelet = spin_codelet(Arc::clone(&touched));
    let plan = FaultPlan::new(vec![
        Fault {
            pu: 1,
            kind: FaultKind::PanicOnAttempt { nth: 6 },
        },
        Fault {
            pu: 1,
            kind: FaultKind::PanicOnAttempt { nth: 7 },
        },
        Fault {
            pu: 1,
            kind: FaultKind::PanicOnAttempt { nth: 8 },
        },
        Fault {
            pu: 2,
            kind: FaultKind::Delay {
                from: 8,
                attempts: 1,
                seconds: 30.0,
            },
        },
    ]);
    let ft = FaultToleranceConfig::default()
        .with_backoff_base(0.002)
        .with_min_deadline(0.25)
        .with_deadline_factor(8.0);
    let cfg = PolicyConfig::default()
        .with_initial_block(1_500)
        .with_round_fraction(0.15);
    let mut policy = PlbHecPolicy::new(&cfg);
    let mut engine = HostEngine::new(three_pus())
        .with_faults(plan)
        .with_fault_tolerance(ft);
    let t0 = std::time::Instant::now();
    let report = engine
        .run(&mut policy, Arc::clone(&codelet), n)
        .expect("the healthy units must finish the run");
    assert!(
        t0.elapsed().as_secs_f64() < 25.0,
        "the watchdog, not the hung kernel, bounds the wait"
    );

    // Every item completed (>= because a deadline-lost block may
    // eventually be double-executed by the wedged worker).
    assert_eq!(report.total_items, n);
    assert!(touched.load(Ordering::Relaxed) >= n);

    // The response is all on record: failed attempts, in-place
    // retries, and unit 1's quarantine.
    assert!(report.events.task_failures >= 3);
    assert!(report.events.task_retries >= 1, "retries must be recorded");
    assert!(report.events.quarantines >= 1, "unit 1 must be quarantined");
    assert!(
        report.events.device_failures >= 1,
        "device losses must be recorded"
    );

    // The policy re-solved the block split when it lost a unit.
    let events = engine.last_events().expect("events recorded").events();
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EventKind::RebalanceTriggered { trigger, .. }
                if trigger == "device-lost"
        )),
        "losing a unit must trigger a profile-aware rebalance"
    );
    assert!(policy.rebalances() >= 1);
}

#[test]
fn plb_hec_host_fault_run_is_repeatable() {
    // The fault plan is attempt-indexed, so the *injected* behavior is
    // identical across runs even though wall-clock times differ: the
    // same unit is quarantined every time.
    for _ in 0..2 {
        let touched = Arc::new(AtomicU64::new(0));
        let codelet = spin_codelet(Arc::clone(&touched));
        let plan = FaultPlan::new(vec![Fault {
            pu: 1,
            kind: FaultKind::FlakyUntil { attempts: u64::MAX },
        }]);
        let cfg = PolicyConfig::default()
            .with_initial_block(1_000)
            .with_round_fraction(0.2);
        let mut policy = PlbHecPolicy::new(&cfg);
        let mut engine = HostEngine::new(three_pus())
            .with_faults(plan)
            .with_fault_tolerance(FaultToleranceConfig::default().with_backoff_base(0.002));
        let n: u64 = 20_000;
        let report = engine
            .run(&mut policy, codelet, n)
            .expect("survivors finish");
        assert_eq!(report.total_items, n);
        assert_eq!(touched.load(Ordering::Relaxed), n);
        assert_eq!(report.events.quarantines, 1);
        assert_eq!(report.pus[1].items, 0, "the doomed unit completes nothing");
    }
}

#[test]
fn plb_hec_sim_flaky_unit_is_quarantined_and_run_completes() {
    // The same semantics on the simulator, fully deterministic: a unit
    // that fails every attempt is quarantined and PLB-HeC carries the
    // whole workload on the survivors.
    use plb_hec_suite::hetsim::cluster::ClusterOptions;
    use plb_hec_suite::hetsim::workload::LinearCost;
    use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, Scenario};

    let cost = LinearCost {
        label: "heavy".into(),
        flops_per_item: 1e5,
        in_bytes_per_item: 64.0,
        out_bytes_per_item: 64.0,
        threads_per_item: 64.0,
    };
    let run = || {
        let mut cluster = ClusterSim::build(
            &cluster_scenario(Scenario::Two, false),
            &ClusterOptions {
                noise_sigma: 0.01,
                ..Default::default()
            },
        );
        let cfg = PolicyConfig::default()
            .with_initial_block(1_000)
            .with_round_fraction(0.25);
        let mut policy = PlbHecPolicy::new(&cfg);
        // Unit 1 fails every attempt from its very first probe: it is
        // quarantined during modeling and the models are fitted from
        // the healthy unit alone.
        let mut engine =
            SimEngine::new(&mut cluster, &cost).with_faults(FaultPlan::new(vec![Fault {
                pu: 1,
                kind: FaultKind::FlakyUntil { attempts: u64::MAX },
            }]));
        let report = engine
            .run(&mut policy, 2_000_000)
            .expect("survivors complete the run");
        assert_eq!(report.total_items, 2_000_000);
        assert_eq!(report.pus[1].items, 0);
        assert_eq!(report.events.quarantines, 1);
        (report.makespan, report.events.task_failures)
    };
    // Deterministic end to end.
    assert_eq!(run(), run());
}
