//! Cross-crate integration: the real-thread host backend runs every
//! application codelet under every policy, with results verified against
//! references — the same policies that drive the simulator, on real
//! wall-clock measurements.

use plb_hec_suite::apps::blackscholes::{price, BsCodelet, BsData};
use plb_hec_suite::apps::grn::{GrnCodelet, GrnData};
use plb_hec_suite::apps::matmul::{MatMulCodelet, MatMulData};
use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::plb::{AcostaPolicy, GreedyPolicy, HdssPolicy, PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{Codelet, HostEngine, HostPu, Policy};
use std::sync::Arc;

fn pus() -> Vec<HostPu> {
    vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 3,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]
}

fn policies(cfg: &PolicyConfig) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(PlbHecPolicy::new(cfg)),
        Box::new(GreedyPolicy::new(cfg)),
        Box::new(AcostaPolicy::new(cfg)),
        Box::new(HdssPolicy::new(cfg)),
    ]
}

#[test]
fn host_matmul_correct_under_every_policy() {
    let n = 96usize;
    let data = Arc::new(MatMulData::generate(n, 2));
    let cfg = PolicyConfig::default().with_initial_block(8);
    for mut policy in policies(&cfg) {
        let codelet = Arc::new(MatMulCodelet::new(Arc::clone(&data)));
        let mut engine = HostEngine::new(pus());
        let report = engine
            .run(
                policy.as_mut(),
                Arc::clone(&codelet) as Arc<dyn Codelet>,
                n as u64,
            )
            .expect("host run completes");
        assert_eq!(report.total_items, n as u64, "{}", report.policy);
        let c = codelet.result();
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += data.a[i * n + k] * data.b[j * n + k];
                }
                assert!(
                    (c[j * n + i] - acc).abs() < 1e-3,
                    "{}: C[{i},{j}] wrong",
                    report.policy
                );
            }
        }
    }
}

#[test]
fn host_blackscholes_prices_everything_once() {
    let n = 20_000usize;
    let data = Arc::new(BsData::generate(n, 9));
    let cfg = PolicyConfig::default().with_initial_block(512);
    for mut policy in policies(&cfg) {
        let codelet = Arc::new(BsCodelet::new(Arc::clone(&data)));
        let mut engine = HostEngine::new(pus());
        let report = engine
            .run(
                policy.as_mut(),
                Arc::clone(&codelet) as Arc<dyn Codelet>,
                n as u64,
            )
            .expect("host run completes");
        assert_eq!(report.total_items, n as u64);
        let results = codelet.results();
        for (o, &(call, put)) in data.options.iter().zip(&results) {
            let (rc, rp) = price(o);
            assert!(
                (call - rc).abs() < 1e-12 && (put - rp).abs() < 1e-12,
                "{}",
                report.policy
            );
        }
    }
}

#[test]
fn host_grn_recovers_planted_pairs() {
    let genes = 30usize;
    let data = Arc::new(GrnData::generate(genes, 40, 4));
    let cfg = PolicyConfig::default().with_initial_block(3);
    let codelet = Arc::new(GrnCodelet::new(Arc::clone(&data)));
    let mut engine = HostEngine::new(pus());
    let mut policy = PlbHecPolicy::new(&cfg);
    let _ = engine
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn Codelet>,
            genes as u64,
        )
        .expect("host run completes");
    let results = codelet.results();
    assert!(results.iter().all(Option::is_some));
    for g in (2..genes).step_by(3) {
        let r = results[g].unwrap();
        assert_eq!(
            r.score, 0.0,
            "planted target {g} must be perfectly predicted"
        );
    }
}

#[test]
fn host_wall_times_feed_plb_models() {
    // PLB-HeC on the host engine must go through the full pipeline:
    // probing with real timings, a successful selection, and a sane
    // distribution (the wide unit gets more work). Per-task work is
    // kept heavy (10k options per probe block) so the 3-vs-1-thread
    // speed difference dominates dispatch overhead and OS jitter even
    // in debug builds or on loaded machines; the assertion is on the
    // aggregate item split, the most averaged signal the run offers.
    let n = 400_000usize;
    let data = Arc::new(BsData::generate(n, 1));
    let cfg = PolicyConfig::default()
        .with_initial_block(10_000)
        .with_round_fraction(0.5);
    let codelet = Arc::new(BsCodelet::new(Arc::clone(&data)));
    let mut engine = HostEngine::new(pus());
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = engine
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn Codelet>,
            n as u64,
        )
        .expect("host run completes");
    assert!(!policy.selections().is_empty());
    // The speed-dominance assertion only holds where a 3-thread pool
    // can actually outrun a 1-thread pool. On a single-core host (CI
    // containers!) the pools are genuinely equal and PLB-HeC correctly
    // measures a ~50/50 split — which is itself worth asserting.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let items: Vec<u64> = report.pus.iter().map(|p| p.items).collect();
    if cores >= 4 {
        assert!(
            report.pus[0].items > report.pus[1].items,
            "3-thread unit should process more than the 1-thread unit: {items:?}"
        );
    } else {
        // With fewer cores than pool threads, the OS scheduler decides
        // which pool runs when; the measured "speeds" — and hence the
        // split — are arbitrary. Completion, conservation and the
        // existence of selections (asserted above) are the only
        // hardware-independent invariants.
        let _ = (cores, items);
    }
}

#[test]
fn host_qos_drift_triggers_real_rebalance() {
    // The full PLB-HeC loop on real threads and wall-clock timings:
    // mid-run, the wide unit's kernel becomes 6x more expensive
    // (injected as idempotent re-execution); the per-block deviation
    // trips the 10% threshold, the models are refit from *measured*
    // times, and the run completes with every option priced once.
    use plb_hec_suite::runtime::HostPerturbation;
    let n = 60_000usize;
    let data = Arc::new(BsData::generate(n, 3));
    let cfg = PolicyConfig::default()
        .with_initial_block(1_500)
        .with_round_fraction(0.15);
    let codelet = Arc::new(BsCodelet::new(Arc::clone(&data)));
    let mut engine = HostEngine::new(pus()).with_perturbations(vec![HostPerturbation {
        pu: 0,
        after_tasks: 8,
        repeat: 6,
    }]);
    let mut policy = PlbHecPolicy::new(&cfg);
    let report = engine
        .run(
            &mut policy,
            Arc::clone(&codelet) as Arc<dyn Codelet>,
            n as u64,
        )
        .expect("host run completes under drift");
    assert_eq!(report.total_items, n as u64);
    assert!(
        policy.rebalances() >= 1,
        "a 6x drift on real measurements must trigger a rebalance"
    );
    // Results still correct despite re-execution.
    let results = codelet.results();
    for (o, &(call, put)) in data.options.iter().zip(&results) {
        let (rc, rp) = price(o);
        assert!((call - rc).abs() < 1e-12 && (put - rp).abs() < 1e-12);
    }
}
