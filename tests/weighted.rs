//! The weighted range model end-to-end: cost-budgeted claims must mean
//! the same thing on the virtual-clock simulator and the real-thread
//! host engine, `Weights::Uniform` must be a strict identity with the
//! pre-weights behavior, and on a skewed irregular workload (the SpMV
//! app) balancing *cost* must beat balancing *row counts*.

use plb_hec_suite::apps::Spmv;
use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::workload::LinearCost;
use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuId, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{
    Codelet, Event, EventKind, FnCodelet, HostEngine, HostPu, Policy, SchedulerCtx, SimEngine,
    TaskInfo, Weights,
};
use std::collections::BTreeMap;
use std::sync::Arc;

const ROWS: u64 = 20_000;
const SKEW: f64 = 1.5;
const SEED: u64 = 7;

/// Noise-free simulator cluster for Scenario::Two (machines A and B).
fn sim_cluster() -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(Scenario::Two, false),
        &ClusterOptions {
            noise_sigma: 0.0,
            ..Default::default()
        },
    )
}

fn host_pus(n: usize) -> Vec<HostPu> {
    (0..n)
        .map(|i| HostPu {
            name: format!("pu{i}"),
            kind: PuKind::Cpu,
            threads: 1,
        })
        .collect()
}

/// A static policy that hands every unit an equal *cost* share up
/// front, in unit order. All claims happen inside `on_start`, before
/// any completion, so the claimed ranges are decided entirely by the
/// shared core's cursor arithmetic — nothing about them depends on the
/// clock, and both engines must produce them identically.
struct EqualCostSharePolicy;

impl Policy for EqualCostSharePolicy {
    fn name(&self) -> &str {
        "equal-cost-share"
    }
    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
        let ids: Vec<PuId> = ctx.pus().iter().map(|p| p.id).collect();
        let n = ids.len() as u64;
        let fair = (ctx.total_cost() / n).max(1);
        for (i, id) in ids.iter().enumerate() {
            // The last unit sweeps the residue so the pool drains.
            let budget = if i + 1 == ids.len() {
                ctx.remaining_cost()
            } else {
                fair
            };
            ctx.assign(*id, budget);
        }
    }
    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, _done: &TaskInfo) {
        // Mop up rounding residue (a fair-share claim may round down to
        // an item boundary short of its budget).
        let ids: Vec<PuId> = ctx.pus().iter().map(|p| p.id).collect();
        for id in ids {
            if ctx.remaining_cost() == 0 {
                break;
            }
            if !ctx.is_busy(id) {
                ctx.assign(id, ctx.remaining_cost());
            }
        }
    }
}

/// Per-unit `(cost, items)` sums from a run's TaskFinish events.
fn finished_by_unit(events: &[Event]) -> BTreeMap<usize, (u64, u64)> {
    let mut per_unit: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for e in events {
        if let (Some(pu), EventKind::TaskFinish { items, cost, .. }) = (e.pu, &e.kind) {
            let entry = per_unit.entry(pu).or_default();
            entry.0 += cost;
            entry.1 += items;
        }
    }
    per_unit
}

#[test]
fn engines_agree_on_per_unit_cost_shares() {
    let app = Spmv::new(ROWS, SKEW, SEED).expect("valid spmv parameters");
    let weights = app.weights();
    let total_cost = weights.total_cost(ROWS);
    assert!(
        total_cost > ROWS,
        "a skewed matrix must cost more than one unit per row"
    );

    // Simulator run.
    let mut cluster = sim_cluster();
    let n = cluster.ids().count();
    let cost_model = app.cost();
    let mut engine = SimEngine::new(&mut cluster, &cost_model).with_weights(Arc::clone(&weights));
    let sim_report = engine
        .run(&mut EqualCostSharePolicy, ROWS)
        .expect("sim run completes");
    let sim_units = finished_by_unit(&engine.last_events().expect("events").events());

    // Host run, same unit count, no-op codelet.
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("noop", |_r, _| {}));
    let mut host = HostEngine::new(host_pus(n)).with_weights(Arc::clone(&weights));
    let host_report = host
        .run(&mut EqualCostSharePolicy, codelet, ROWS)
        .expect("host run completes");
    let host_units = finished_by_unit(&host.last_events().expect("events").events());

    assert_eq!(sim_report.total_items, ROWS);
    assert_eq!(host_report.total_items, ROWS);

    // The engines agree unit for unit on both claimed cost and items.
    assert_eq!(
        sim_units, host_units,
        "sim and host disagreed on per-unit cost/item totals"
    );

    // All cost is accounted for, and every unit's cost share is close
    // to the fair 1/n while the *item* counts are visibly unequal —
    // the whole point of budgeting claims in cost units.
    let sum_cost: u64 = sim_units.values().map(|&(c, _)| c).sum();
    assert_eq!(sum_cost, total_cost, "cost conservation");
    let shares: Vec<f64> = sim_units
        .values()
        .map(|&(c, _)| c as f64 / total_cost as f64)
        .collect();
    let fair = 1.0 / n as f64;
    for (i, s) in shares.iter().enumerate() {
        assert!(
            (s - fair).abs() < 0.05 * fair.max(*s),
            "unit {i} cost share {s:.4} strays from fair {fair:.4}"
        );
    }
    let items: Vec<u64> = sim_units.values().map(|&(_, i)| i).collect();
    let (min_items, max_items) = (
        items.iter().copied().min().unwrap_or(0),
        items.iter().copied().max().unwrap_or(0),
    );
    assert!(
        max_items > min_items,
        "equal cost shares of a skewed matrix must claim unequal row counts"
    );
}

#[test]
fn uniform_weights_are_an_identity() {
    // The same run with an explicit `Weights::uniform()` table and with
    // no table at all must produce bit-identical event streams: the
    // uniform fast path IS the pre-weights behavior. The policy here is
    // deterministic (no measured solver time charged to the clock), so
    // any divergence is the weights table's fault.
    let total: u64 = 20_000;
    let run = |weights: Option<Arc<Weights>>| -> Vec<Event> {
        let mut cluster = sim_cluster();
        let cost = LinearCost::generic();
        let mut engine = SimEngine::new(&mut cluster, &cost);
        if let Some(w) = weights {
            engine = engine.with_weights(w);
        }
        let _ = engine
            .run(&mut EqualCostSharePolicy, total)
            .expect("run completes");
        engine.last_events().expect("events recorded").events()
    };
    let implicit = run(None);
    let explicit = run(Some(Weights::uniform()));
    assert!(!implicit.is_empty());
    assert_eq!(
        implicit, explicit,
        "Weights::Uniform changed engine behavior"
    );
}

#[test]
fn weighted_plb_hec_beats_count_uniform_on_skewed_spmv() {
    // The e2e payoff: on a skewed SpMV, telling the scheduler the true
    // per-row cost (weighted run) must yield a strictly better makespan
    // than pretending rows are uniform (count-uniform baseline). Both
    // runs execute the *same* matrix through the same cost model on the
    // same noise-free cluster; only the claim/selection domain differs.
    let app = Spmv::new(ROWS, 0.8, SEED).expect("valid spmv parameters");
    let cost_model = app.cost();
    let run = |weights: Arc<Weights>| -> f64 {
        let mut cluster = sim_cluster();
        let total_cost = weights.total_cost(ROWS);
        let cfg = PolicyConfig::default()
            .with_initial_block((total_cost / 64).max(1))
            .with_round_fraction(0.2);
        let mut policy = PlbHecPolicy::new(&cfg);
        let mut engine = SimEngine::new(&mut cluster, &cost_model).with_weights(weights);
        engine
            .run(&mut policy, ROWS)
            .expect("run completes")
            .makespan
    };
    let weighted = run(app.weights());
    let uniform = run(Weights::uniform());
    assert!(
        weighted < uniform,
        "weighted PLB-HeC ({weighted:.6}s) must strictly beat the count-uniform \
         baseline ({uniform:.6}s) on a skewed matrix"
    );
}
