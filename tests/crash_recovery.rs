//! Crash recovery end-to-end: a host run is SIGKILLed mid-execution and
//! resumed from its last durability snapshot in a fresh process. The
//! resumed run must (a) complete, (b) produce a provably disjoint,
//! complete cover together with the crashed run's checkpointed work —
//! enforced with live [`DisjointOutput`] claims over every checkpointed
//! range — and (c) never re-enter the modeling phase: the policy is
//! re-seeded from the snapshot's profiles, so zero probes are issued.
//!
//! Mechanics: the parent test re-invokes its own test binary with
//! `--ignored --exact crash_child_body` and a checkpoint path in the
//! environment. The child runs PLB-HeC on the host engine with a
//! sleep-calibrated codelet and per-task snapshots until the parent,
//! polling the snapshot file, sees fitted models plus enough completed
//! tasks and kills it (SIGKILL — no destructors, no final snapshot).

#![cfg(unix)]

use plb_hec_suite::hetsim::PuKind;
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::checkpoint::load;
use plb_hec_suite::runtime::{
    Checkpoint, CheckpointConfig, Codelet, DisjointOutput, FnCodelet, HostEngine, HostPu,
};
use std::path::Path;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shared by the child and the resumed parent run. The sleep
/// per item makes timings linear in the block size (ideal for the
/// curve fits) and the total long enough (~2.4 s of aggregate work)
/// that the kill always lands while work remains.
const TOTAL_ITEMS: u64 = 60_000;
const SLEEP_PER_ITEM: Duration = Duration::from_micros(40);
const CKPT_ENV: &str = "PLB_CRASH_CKPT";

fn pus() -> Vec<HostPu> {
    vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 2,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]
}

fn config() -> PolicyConfig {
    PolicyConfig::default()
        .with_initial_block(512)
        .with_round_fraction(0.2)
}

/// Does the snapshot carry fitted models (the policy reached the
/// executing phase), so a resume can skip modeling entirely?
fn has_models(ckpt: &Checkpoint) -> bool {
    ckpt.policy_state
        .as_ref()
        .and_then(|v| v.get("models"))
        .and_then(|m| m.as_array())
        .is_some_and(|a| !a.is_empty())
}

/// Not a test: the workload the parent SIGKILLs. Only does anything
/// when invoked by `sigkilled_run_resumes_*` below with the checkpoint
/// path in the environment.
#[test]
#[ignore = "helper process body for the crash-recovery test"]
fn crash_child_body() {
    let Ok(path) = std::env::var(CKPT_ENV) else {
        return;
    };
    let codelet = Arc::new(FnCodelet::new("sleepy", |range, _res| {
        std::thread::sleep(SLEEP_PER_ITEM * (range.end - range.start) as u32);
    }));
    let mut engine =
        HostEngine::new(pus()).with_checkpoint(CheckpointConfig::new(&path).with_interval(1));
    let mut policy = PlbHecPolicy::new(&config());
    // The parent kills us mid-run; if we do finish, that's fine too —
    // the parent detects it and fails with a diagnostic.
    let _ = engine.run(&mut policy, codelet, TOTAL_ITEMS);
}

#[test]
fn sigkilled_run_resumes_with_disjoint_cover_and_no_reprobe() {
    let mut path = std::env::temp_dir();
    path.push(format!("plb-crash-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let ckpt = run_and_kill_child(&path);
    assert!(has_models(&ckpt), "kill condition guaranteed fitted models");
    let done_before_crash = ckpt.completed_items();
    assert!(
        done_before_crash < TOTAL_ITEMS,
        "child was killed mid-run, yet its snapshot covers everything"
    );

    // The resumed process writes through a disjoint-claims buffer. Every
    // range the crashed run checkpointed as completed is pre-claimed and
    // pre-filled here, and the claims are HELD for the whole resumed
    // run: if the resumed run dispatches any item the checkpoint already
    // covers, its claim fails and the flag trips. (Work finished after
    // the last snapshot is legitimately re-executed — the documented
    // at-least-once tail — and is not pre-claimed.)
    let out = Arc::new(DisjointOutput::new(0u8, TOTAL_ITEMS as usize));
    let mut held = Vec::new();
    for &(off, len) in &ckpt.completed {
        let mut w = out.writer(off as usize..(off + len) as usize);
        w.iter_mut().for_each(|b| *b = 1);
        held.push(w);
    }
    let double_write = Arc::new(AtomicBool::new(false));
    let codelet = {
        let out = Arc::clone(&out);
        let double_write = Arc::clone(&double_write);
        Arc::new(FnCodelet::new("sleepy", move |range, _res| {
            std::thread::sleep(SLEEP_PER_ITEM * (range.end - range.start) as u32 / 4);
            match out.try_writer(range.start as usize..range.end as usize) {
                Ok(mut w) => w.iter_mut().for_each(|b| *b = 1),
                Err(_) => double_write.store(true, Ordering::Relaxed),
            }
        }))
    };

    let mut engine = HostEngine::new(pus()).resume_from(ckpt);
    let mut policy = PlbHecPolicy::new(&config());
    let report = engine
        .run(&mut policy, codelet, TOTAL_ITEMS)
        .expect("resumed run completes");

    // In-process accounting: exactly the complement of the snapshot.
    assert_eq!(report.total_items, TOTAL_ITEMS - done_before_crash);
    assert!(
        !double_write.load(Ordering::Relaxed),
        "resumed run re-dispatched an item the checkpoint already covers"
    );
    // Zero re-probing: the snapshot's profiles re-seeded the models.
    // (`report.events` folds in the crashed run's carried counters,
    // which DO contain probes — the sink holds this process only.)
    let counters = engine.last_events().expect("event sink").counters();
    assert_eq!(counters.probes, 0, "resumed run re-entered modeling");
    assert_eq!(counters.resumes, 1);
    assert!(report.events.probes > 0, "carried modeling history lost");

    // Complete disjoint cover: every item written exactly once across
    // both processes (pre-crash ranges by the parent's pre-fill, the
    // rest by the resumed run).
    drop(held);
    let buf = Arc::try_unwrap(out)
        .unwrap_or_else(|_| panic!("codelet still holds the output"))
        .into_vec();
    let missing = buf.iter().filter(|&&b| b != 1).count();
    assert_eq!(missing, 0, "{missing} items never covered");

    let _ = std::fs::remove_file(&path);
}

/// Spawn the child workload, poll its snapshot until it has fitted
/// models and a few completed tasks, then SIGKILL it and return the
/// last snapshot.
fn run_and_kill_child(path: &Path) -> Checkpoint {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args([
            "--ignored",
            "--exact",
            "crash_child_body",
            "--test-threads=1",
        ])
        .env(CKPT_ENV, path)
        .spawn()
        .expect("spawn child workload");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(ckpt) = load(path) {
            if has_models(&ckpt) && ckpt.tasks_done >= 6 {
                // SIGKILL: no unwinding, no final snapshot, no cleanup —
                // the hardest crash the durability layer must survive.
                child.kill().expect("SIGKILL child");
                let _ = child.wait();
                return load(path).expect("last snapshot is loadable");
            }
        }
        if let Some(status) = child.try_wait().expect("poll child") {
            panic!(
                "child finished (status {status}) before the kill condition; \
                 the workload is sized to make this impossible"
            );
        }
        assert!(
            Instant::now() < deadline,
            "child never reached the kill condition"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
