//! Cross-engine equivalence: the virtual-clock simulator and the
//! real-thread host executor are thin backends of the same scheduling
//! core (`plb_runtime::core`), so under the same policy and the same
//! fault plan they must agree on everything the core decides — which
//! fault events fire and how often, how the item space is covered, and
//! which unit ends up with the work. Execution *times* legitimately
//! differ (virtual vs. wall clock); the decisions must not.

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::workload::LinearCost;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuId, PuKind, Scenario};
use plb_hec_suite::runtime::{
    Codelet, EventKind, Fault, FaultKind, FaultPlan, FnCodelet, HostEngine, HostPu, Policy,
    RunReport, SchedulerCtx, SimEngine, TaskFailure, TaskInfo,
};
use std::sync::Arc;

const TOTAL: u64 = 20_000;
const BLOCK: u64 = 1_000;

/// A fixed-block policy that re-dispatches re-credited items: on every
/// callback it tops up each idle available unit (the minimal
/// fault-aware policy shape both engines are designed around).
struct RedispatchPolicy {
    block: u64,
}

impl RedispatchPolicy {
    fn pump(&self, ctx: &mut dyn SchedulerCtx) {
        let ids: Vec<PuId> = ctx
            .pus()
            .iter()
            .filter(|p| p.available)
            .map(|p| p.id)
            .collect();
        for id in ids {
            if ctx.remaining_items() == 0 {
                break;
            }
            if !ctx.is_busy(id) {
                ctx.assign(id, self.block);
            }
        }
    }
}

impl Policy for RedispatchPolicy {
    fn name(&self) -> &str {
        "redispatch"
    }
    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
        self.pump(ctx);
    }
    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, _done: &TaskInfo) {
        self.pump(ctx);
    }
    fn on_device_lost(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_device_restored(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_task_failed(&mut self, ctx: &mut dyn SchedulerCtx, _failure: &TaskFailure) {
        self.pump(ctx);
    }
}

/// Noise-free simulator cluster for Scenario::Two (machines A and B).
fn sim_cluster() -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(Scenario::Two, false),
        &ClusterOptions {
            noise_sigma: 0.0,
            ..Default::default()
        },
    )
}

/// A host-engine unit list parallel to the simulator's: same count, one
/// thread each, so fault-plan indices address the same logical units.
fn host_pus(n: usize) -> Vec<HostPu> {
    (0..n)
        .map(|i| HostPu {
            name: format!("pu{i}"),
            kind: PuKind::Cpu,
            threads: 1,
        })
        .collect()
}

/// Run the fault plan through the simulator and return its report plus
/// the fault-related event-kind sequence (see [`fault_event_label`]).
fn run_sim(
    plan: FaultPlan,
) -> (
    RunReport,
    std::collections::BTreeMap<usize, Vec<&'static str>>,
) {
    let mut cluster = sim_cluster();
    let cost = LinearCost::generic();
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(plan);
    let report = engine
        .run(&mut RedispatchPolicy { block: BLOCK }, TOTAL)
        .expect("sim run completes");
    let seq = fault_sequence(engine.last_events().expect("events recorded").events());
    (report, seq)
}

/// Run the same plan through the host engine; also returns the exact
/// item ranges the codelet executed, for the disjoint-cover check.
fn run_host(
    n_units: usize,
    plan: FaultPlan,
) -> (
    RunReport,
    std::collections::BTreeMap<usize, Vec<&'static str>>,
    Vec<std::ops::Range<u64>>,
) {
    use std::sync::Mutex;
    let ranges = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&ranges);
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("collect", move |r, _| {
        r2.lock().expect("range log lock").push(r);
    }));
    let mut engine = HostEngine::new(host_pus(n_units)).with_faults(plan);
    let report = engine
        .run(&mut RedispatchPolicy { block: BLOCK }, codelet, TOTAL)
        .expect("host run completes");
    let seq = fault_sequence(engine.last_events().expect("events recorded").events());
    let got = ranges.lock().expect("range log lock").clone();
    (report, seq, got)
}

fn fault_event_label(kind: &EventKind) -> Option<&'static str> {
    match kind {
        EventKind::TaskFailed { .. } => Some("failed"),
        EventKind::TaskRetry { .. } => Some("retry"),
        EventKind::PuQuarantined { .. } => Some("quarantined"),
        EventKind::DeviceFailed => Some("device-failed"),
        EventKind::DeviceRestored => Some("device-restored"),
        EventKind::PuJoined { .. } => Some("joined"),
        _ => None,
    }
}

/// The per-unit fault-response story of a run: which fault events fired
/// on each unit, in emission order. The *interleaving across units* is
/// timing-dependent (wall clock vs. virtual clock), but each unit's own
/// sequence is decided by the shared core, so the two engines must
/// produce it identically.
fn fault_sequence(
    events: Vec<plb_hec_suite::runtime::Event>,
) -> std::collections::BTreeMap<usize, Vec<&'static str>> {
    let mut per_unit: std::collections::BTreeMap<usize, Vec<&'static str>> = Default::default();
    for e in &events {
        if let (Some(pu), Some(label)) = (e.pu, fault_event_label(&e.kind)) {
            per_unit.entry(pu).or_default().push(label);
        }
    }
    per_unit
}

fn assert_disjoint_cover(mut ranges: Vec<std::ops::Range<u64>>, total: u64) {
    ranges.sort_by_key(|r| r.start);
    let mut expect = 0;
    for r in ranges {
        assert_eq!(r.start, expect, "gap or overlap in executed ranges");
        expect = r.end;
    }
    assert_eq!(expect, total, "the cover must end at total_items");
}

fn flaky_forever(pu: usize) -> Fault {
    Fault {
        pu,
        kind: FaultKind::FlakyUntil { attempts: u64::MAX },
    }
}

#[test]
fn engines_agree_when_all_but_one_unit_is_quarantined() {
    // Every unit except the last is flaky forever: each accumulates
    // exactly 3 consecutive failures (one dispatch + two in-place
    // retries), is quarantined, and its items are re-credited to the
    // lone survivor. None of that depends on the clock, so the two
    // engines must tell the identical story.
    let n = sim_cluster().len();
    assert!(n >= 2, "the equivalence scenario needs a survivor");
    let plan = FaultPlan::new((0..n - 1).map(flaky_forever).collect());

    let (sim, sim_seq) = run_sim(plan.clone());
    let (host, host_seq, ranges) = run_host(n, plan);

    let k = (n - 1) as u64;
    for report in [&sim, &host] {
        assert_eq!(report.total_items, TOTAL);
        assert_eq!(report.events.task_failures, 3 * k);
        assert_eq!(report.events.task_retries, 2 * k);
        assert_eq!(report.events.quarantines, k);
        assert_eq!(report.events.device_failures, k);
    }

    // The forced distribution: quarantined units complete nothing, the
    // survivor completes everything — per-unit shares agree exactly.
    for i in 0..n {
        assert!(
            (sim.pus[i].item_share - host.pus[i].item_share).abs() < 1e-6,
            "share of unit {i} diverged: sim {} vs host {}",
            sim.pus[i].item_share,
            host.pus[i].item_share
        );
    }
    assert_eq!(sim.pus[n - 1].items, TOTAL);
    assert_eq!(host.pus[n - 1].items, TOTAL);

    // The host engine really executed a disjoint cover of 0..TOTAL; the
    // simulator executes no kernels, so its cover is checked through
    // the report's conservation law.
    assert_disjoint_cover(ranges, TOTAL);
    let sim_items: u64 = sim.pus.iter().map(|p| p.items).sum();
    assert_eq!(sim_items, TOTAL);

    // Per-unit fault-event sequences match event for event.
    assert_eq!(sim_seq, host_seq);
}

#[test]
fn engines_agree_on_hot_join_and_drift() {
    // Unit 1 is latent until 8 tasks complete globally, then hot-joins;
    // unit 0 ramps to 2× slower over its first 10 launches. Admission is
    // decided by the shared core on the global completed-task count, so
    // both engines must admit at the same point and tell the same
    // story; drift only stretches execution *times*, which the
    // equivalence deliberately does not compare.
    let n = sim_cluster().len();
    let plan = FaultPlan::parse(
        "join:pu=1,after=8; drift:pu=0,kind=ramp,from=0,n=10,to=2.0",
        n,
    )
    .expect("valid elastic plan");

    let (sim, sim_seq) = run_sim(plan.clone());
    let (host, host_seq, ranges) = run_host(n, plan);

    for report in [&sim, &host] {
        assert_eq!(report.total_items, TOTAL);
        assert_eq!(report.events.joins, 1, "exactly one admission");
        assert!(report.pus[1].items > 0, "joined unit must receive work");
    }
    assert_disjoint_cover(ranges, TOTAL);
    let sim_items: u64 = sim.pus.iter().map(|p| p.items).sum();
    assert_eq!(sim_items, TOTAL);

    // Per-unit fault/elastic sequences match event for event, and the
    // joined unit's story is exactly one admission.
    assert_eq!(sim_seq, host_seq);
    assert_eq!(sim_seq.get(&1), Some(&vec!["joined"]));
}

#[test]
fn event_streams_are_deterministic_across_repeat_runs() {
    // Run-to-run determinism, the property lint pass 9
    // (`nondeterminism-confinement`) exists to protect: the runtime and
    // policy state now lives exclusively in ordered collections
    // (`BTreeMap`/`BTreeSet`), so repeating the same plan must
    // reproduce the same decisions — not just equal counters.
    let n = sim_cluster().len();
    let plan = FaultPlan::parse(
        "flaky:pu=0,n=4; join:pu=1,after=8; drift:pu=0,kind=ramp,from=0,n=10,to=2.0",
        n,
    )
    .expect("valid mixed plan");

    // The simulator runs on a virtual clock, so its *entire* event
    // stream — sequence numbers, timestamps, payloads — must be
    // identical between two runs of the same plan.
    let sim_events = |plan: FaultPlan| -> Vec<plb_hec_suite::runtime::Event> {
        let mut cluster = sim_cluster();
        let cost = LinearCost::generic();
        let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(plan);
        let _report = engine
            .run(&mut RedispatchPolicy { block: BLOCK }, TOTAL)
            .expect("sim run completes");
        engine.last_events().expect("events recorded").events()
    };
    let first = sim_events(plan.clone());
    let second = sim_events(plan.clone());
    assert!(!first.is_empty(), "the plan must produce events");
    assert_eq!(
        first, second,
        "two identical sim runs diverged — hidden nondeterminism in the core"
    );

    // The host engine's timestamps and cross-unit interleavings are
    // wall-clock, but each unit's own fault-response story is decided
    // by the shared core and must replay exactly.
    let (_, host_first, _) = run_host(n, plan.clone());
    let (_, host_second, _) = run_host(n, plan);
    assert_eq!(
        host_first, host_second,
        "two identical host runs told different per-unit fault stories"
    );
}

#[test]
fn engines_agree_on_isolated_retry() {
    // A single panic on unit 0's first attempt: retried in place,
    // no quarantine, nothing lost — on both engines.
    let n = sim_cluster().len();
    let plan = FaultPlan::new(vec![Fault {
        pu: 0,
        kind: FaultKind::PanicOnAttempt { nth: 0 },
    }]);

    let (sim, sim_seq) = run_sim(plan.clone());
    let (host, host_seq, ranges) = run_host(n, plan);

    for report in [&sim, &host] {
        assert_eq!(report.total_items, TOTAL);
        assert_eq!(report.events.task_failures, 1);
        assert_eq!(report.events.task_retries, 1);
        assert_eq!(report.events.quarantines, 0);
        assert_eq!(report.events.device_failures, 0);
        assert!(
            report.pus[0].items > 0,
            "the retried unit keeps working after its one bad attempt"
        );
    }
    assert_disjoint_cover(ranges, TOTAL);
    assert_eq!(sim_seq, host_seq);
    assert_eq!(
        sim_seq.get(&0),
        Some(&vec!["failed", "retry"]),
        "unit 0's story is one failure followed by one in-place retry"
    );
}
