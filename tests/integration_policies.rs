//! Cross-crate integration: every scheduling policy completes every
//! application on every machine scenario, conserving work exactly.

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, CostModel, Scenario};
use plb_hec_suite::plb::{AcostaPolicy, GreedyPolicy, HdssPolicy, PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{Policy, RunReport, SimEngine};

fn apps() -> Vec<(String, Box<dyn CostModel>, u64)> {
    vec![
        (
            "mm-8192".into(),
            Box::new(plb_hec_suite::apps::MatMul::new(8192).cost()) as Box<dyn CostModel>,
            8192,
        ),
        (
            "grn-60k".into(),
            Box::new(plb_hec_suite::apps::GrnInference::new(60_000).cost()),
            60_000,
        ),
        (
            "bs-100k".into(),
            Box::new(plb_hec_suite::apps::BlackScholes::new(100_000).cost()),
            100_000,
        ),
    ]
}

fn policies(cfg: &PolicyConfig) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(PlbHecPolicy::new(cfg)),
        Box::new(GreedyPolicy::new(cfg)),
        Box::new(AcostaPolicy::new(cfg)),
        Box::new(HdssPolicy::new(cfg)),
    ]
}

fn run(policy: &mut dyn Policy, cost: &dyn CostModel, total: u64, scenario: Scenario) -> RunReport {
    let machines = cluster_scenario(scenario, false);
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed: 1,
            noise_sigma: 0.02,
            ..Default::default()
        },
    );
    SimEngine::new(&mut cluster, cost)
        .run(policy, total)
        .expect("policy must complete the run")
}

#[test]
fn every_policy_completes_every_app_on_every_scenario() {
    for scenario in Scenario::ALL {
        for (name, cost, total) in apps() {
            let cfg = PolicyConfig::default().with_initial_block((total / 500).max(64));
            for mut policy in policies(&cfg) {
                let report = run(policy.as_mut(), cost.as_ref(), total, scenario);
                assert_eq!(
                    report.total_items, total,
                    "{} under {} on {:?}: items lost or duplicated",
                    name, report.policy, scenario
                );
                assert!(report.makespan > 0.0);
                // Item shares always form a distribution.
                let share_sum: f64 = report.pus.iter().map(|p| p.item_share).sum();
                assert!(
                    (share_sum - 1.0).abs() < 1e-9,
                    "{name}: shares sum to {share_sum}"
                );
            }
        }
    }
}

#[test]
fn declared_distributions_are_normalized() {
    let cfg = PolicyConfig::default().with_initial_block(200);
    for (name, cost, total) in apps() {
        for mut policy in policies(&cfg) {
            let report = run(policy.as_mut(), cost.as_ref(), total, Scenario::Four);
            if let Some(d) = &report.block_distribution {
                let s: f64 = d.iter().sum();
                assert!(
                    (s - 1.0).abs() < 1e-6,
                    "{}/{}: distribution sums to {s}",
                    name,
                    report.policy
                );
                assert!(d.iter().all(|&f| (0.0..=1.0).contains(&f)));
            }
        }
    }
}

#[test]
fn plb_hec_is_competitive_on_large_mm() {
    // The paper's headline case: MM at the largest size, 4 machines.
    // PLB-HeC must clearly beat greedy and never lose to it.
    let cost = plb_hec_suite::apps::MatMul::new(65536).cost();
    let cfg = PolicyConfig::default().with_initial_block(66);
    let mut plb = PlbHecPolicy::new(&cfg);
    let plb_time = run(&mut plb, &cost, 65536, Scenario::Four).makespan;
    let mut greedy = GreedyPolicy::new(&cfg);
    let greedy_time = run(&mut greedy, &cost, 65536, Scenario::Four).makespan;
    assert!(
        plb_time * 1.5 < greedy_time,
        "PLB-HeC ({plb_time:.1}s) must beat greedy ({greedy_time:.1}s) by >1.5x at MM 65536"
    );
}

#[test]
fn single_machine_speedups_are_modest() {
    // Paper: "With one machine, the influence of the scheduling
    // algorithm was small, with speedups close to 1."
    let cost = plb_hec_suite::apps::GrnInference::new(100_000).cost();
    let cfg = PolicyConfig::default().with_initial_block(100);
    let mut plb = PlbHecPolicy::new(&cfg);
    let plb_time = run(&mut plb, &cost, 100_000, Scenario::One).makespan;
    let mut greedy = GreedyPolicy::new(&cfg);
    let greedy_time = run(&mut greedy, &cost, 100_000, Scenario::One).makespan;
    let speedup = greedy_time / plb_time;
    assert!(
        (0.7..=1.6).contains(&speedup),
        "single-machine GRN speedup should be near 1, got {speedup:.2}"
    );
}

#[test]
fn gpus_receive_larger_shares_than_their_machines_cpus() {
    // Fig. 6's qualitative shape for the profile-based policies on a
    // compute-bound workload.
    let cost = plb_hec_suite::apps::MatMul::new(32768).cost();
    let machines = cluster_scenario(Scenario::Four, true);
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed: 3,
            noise_sigma: 0.02,
            ..Default::default()
        },
    );
    let cfg = PolicyConfig::default().with_initial_block(33);
    let mut plb = PlbHecPolicy::new(&cfg);
    let report = SimEngine::new(&mut cluster, &cost)
        .run(&mut plb, 32768)
        .unwrap();
    let d = report
        .block_distribution
        .expect("plb declares a distribution");
    // Units alternate cpu, gpu per machine in single-gpu mode.
    for m in 0..4 {
        assert!(
            d[2 * m + 1] > d[2 * m],
            "machine {m}: GPU share {:.3} must exceed CPU share {:.3}",
            d[2 * m + 1],
            d[2 * m]
        );
    }
}
