//! Cross-crate integration: the simulator is deterministic given a seed
//! — the property every experiment in EXPERIMENTS.md rests on — and
//! seeds actually matter.
//!
//! The virtual clock charges a *deterministic* model of the scheduler's
//! own computation cost (the measured interior-point wall times are
//! recorded separately for reporting), so entire runs replay
//! bit-for-bit.

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{RunReport, SimEngine};

fn run_seeded(seed: u64) -> RunReport {
    let machines = cluster_scenario(Scenario::Three, false);
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed,
            noise_sigma: 0.05,
            ..Default::default()
        },
    );
    let cost = plb_hec_suite::apps::BlackScholes::new(150_000).cost();
    let cfg = PolicyConfig::default().with_initial_block(1_000);
    let mut policy = PlbHecPolicy::new(&cfg);
    SimEngine::new(&mut cluster, &cost)
        .run(&mut policy, 150_000)
        .unwrap()
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = run_seeded(17);
    let b = run_seeded(17);
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "makespan must be bit-identical"
    );
    assert_eq!(a.tasks, b.tasks);
    for (x, y) in a.pus.iter().zip(&b.pus) {
        assert_eq!(x.items, y.items, "work assignment must be deterministic");
        assert_eq!(
            x.busy_s.to_bits(),
            y.busy_s.to_bits(),
            "device timings must be bit-identical"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_seeded(1);
    let b = run_seeded(2);
    assert_ne!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "different noise seeds should perturb the timing"
    );
}

#[test]
fn ten_run_protocol_has_small_dispersion() {
    // The paper reports small standard deviations over its 10 runs on
    // dedicated machines; our 3% noise model must reproduce that.
    let makespans: Vec<f64> = (0..10).map(|s| run_seeded(s).makespan).collect();
    let mean = plb_hec_suite::numerics::mean(&makespans);
    let std = plb_hec_suite::numerics::stats::sample_stddev(&makespans);
    assert!(
        std / mean < 0.12,
        "relative dispersion {:.1}% too large for a dedicated cluster",
        100.0 * std / mean
    );
}
