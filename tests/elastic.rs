//! Elastic capacity end-to-end: hot-joins admitted mid-run fold into
//! the split and restabilize, deterministic speed drift completes
//! without rebalance thrash, the elastic chaos dimension is seeded and
//! reproducible, and — property-tested — an admission at *any* point of
//! the run never breaks the two conservation laws (the split sums to 1,
//! the executed item ranges form a disjoint cover of the workload).
//!
//! These are the CI `chaos-elastic` scenarios (`.github/workflows/
//! ci.yml`); docs/FAULT_TOLERANCE.md ("Elastic capacity") describes the
//! semantics they pin down.

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::workload::LinearCost;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuId, PuKind, Scenario};
use plb_hec_suite::plb::{PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{
    Codelet, EventKind, FaultPlan, FnCodelet, HostEngine, HostPu, Policy, SchedulerCtx, SimEngine,
    TaskFailure, TaskInfo,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Heavy, wide items: long enough virtual runs for mid-run admissions
/// to land during the execution phase.
fn heavy_cost() -> LinearCost {
    LinearCost {
        label: "elastic".into(),
        flops_per_item: 1e5,
        in_bytes_per_item: 64.0,
        out_bytes_per_item: 64.0,
        threads_per_item: 64.0,
    }
}

fn sim_cluster(scenario: Scenario) -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(scenario, false),
        &ClusterOptions {
            noise_sigma: 0.01,
            ..Default::default()
        },
    )
}

fn host_pus(n: usize) -> Vec<HostPu> {
    (0..n)
        .map(|i| HostPu {
            name: format!("pu{i}"),
            kind: PuKind::Cpu,
            threads: 1,
        })
        .collect()
}

/// Minimal fault-aware policy: tops up every idle available unit on
/// each callback, so a joined unit is picked up automatically.
struct PumpPolicy {
    block: u64,
}

impl PumpPolicy {
    fn pump(&self, ctx: &mut dyn SchedulerCtx) {
        let ids: Vec<PuId> = ctx
            .pus()
            .iter()
            .filter(|p| p.available)
            .map(|p| p.id)
            .collect();
        for id in ids {
            if ctx.remaining_items() == 0 {
                break;
            }
            if !ctx.is_busy(id) {
                ctx.assign(id, self.block);
            }
        }
    }
}

impl Policy for PumpPolicy {
    fn name(&self) -> &str {
        "pump"
    }
    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
        self.pump(ctx);
    }
    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, _done: &TaskInfo) {
        self.pump(ctx);
    }
    fn on_device_lost(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_device_restored(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_task_failed(&mut self, ctx: &mut dyn SchedulerCtx, _failure: &TaskFailure) {
        self.pump(ctx);
    }
}

fn assert_disjoint_cover(mut ranges: Vec<std::ops::Range<u64>>, total: u64) {
    ranges.sort_by_key(|r| r.start);
    let mut expect = 0;
    for r in ranges {
        assert_eq!(r.start, expect, "gap or overlap in executed ranges");
        expect = r.end;
    }
    assert_eq!(expect, total, "the cover must end at total_items");
}

/// The acceptance scenario on the simulator: a seeded hot-join ends the
/// run with the joined unit holding a nonzero share, every item
/// accounted for exactly once, and a `restabilized` event on record.
#[test]
fn sim_hot_join_gains_share_and_restabilizes() {
    let mut cluster = sim_cluster(Scenario::Two);
    let cost = heavy_cost();
    let cfg = PolicyConfig::default()
        .with_initial_block(1_000)
        .with_round_fraction(0.25);
    let mut policy = PlbHecPolicy::new(&cfg);
    let n = cluster.ids().count();
    let plan = FaultPlan::parse("join:pu=2,after=30", n).expect("valid join plan");
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(plan);
    let report = engine.run(&mut policy, 4_000_000).expect("run completes");

    assert_eq!(report.total_items, 4_000_000);
    let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
    assert_eq!(per_pu, 4_000_000, "items lost or duplicated");
    assert!(
        report.pus[2].items > 0,
        "joined unit must end with a share: {:?}",
        report.pus
    );

    let sink = engine.last_events().expect("events recorded");
    assert_eq!(sink.counters().joins, 1);
    let events = sink.events();
    assert!(
        events
            .iter()
            .any(|e| e.pu == Some(2) && matches!(e.kind, EventKind::PuJoined { after_tasks: 30 })),
        "admission must be on record"
    );
    let restab = events
        .iter()
        .find(|e| e.pu == Some(2) && matches!(e.kind, EventKind::Restabilized { .. }))
        .expect("joined unit must restabilize");
    let joined_at = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::PuJoined { .. }))
        .expect("join event")
        .t;
    assert!(
        restab.t >= joined_at,
        "restabilization follows the admission"
    );
}

/// The same acceptance scenario on the real-thread engine, with the
/// executed ranges captured: the joined unit works, the cover is
/// disjoint and complete, and the unit restabilizes.
#[test]
fn host_hot_join_gains_share_and_restabilizes() {
    let n = 3;
    let total = 500_000u64;
    let ranges = Arc::new(Mutex::new(Vec::new()));
    let sink_ranges = Arc::clone(&ranges);
    // Deterministic per-item spin so the fitted curves are linear and
    // the watchdog deadlines sane.
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("spin", move |r, _| {
        let mut acc = 0u64;
        for i in r.clone() {
            acc = acc.wrapping_add(i).rotate_left(1);
        }
        std::hint::black_box(acc);
        sink_ranges.lock().expect("range log lock").push(r);
    }));
    let plan = FaultPlan::parse("join:pu=1,after=12", n).expect("valid join plan");
    let cfg = PolicyConfig::default()
        .with_initial_block(500)
        .with_round_fraction(0.33);
    let mut policy = PlbHecPolicy::new(&cfg);
    let mut engine = HostEngine::new(host_pus(n)).with_faults(plan);
    let report = engine
        .run(&mut policy, codelet, total)
        .expect("host run completes");

    assert_eq!(report.total_items, total);
    assert!(report.pus[1].items > 0, "joined unit must end with a share");
    assert_disjoint_cover(ranges.lock().expect("range log lock").clone(), total);

    let sink = engine.last_events().expect("events recorded");
    assert_eq!(sink.counters().joins, 1);
    assert!(
        sink.events()
            .iter()
            .any(|e| e.pu == Some(1) && matches!(e.kind, EventKind::Restabilized { .. })),
        "joined unit must restabilize"
    );
}

/// Drift tracking without thrash: a continuously drifting unit keeps
/// the divergence trigger pressured, and the cooldown knob keeps the
/// re-solve count bounded while the run still completes.
#[test]
fn sim_drift_completes_without_rebalance_thrash() {
    let mut cluster = sim_cluster(Scenario::One);
    let cost = heavy_cost();
    let cfg = PolicyConfig::default()
        .with_initial_block(1_000)
        .with_round_fraction(0.25)
        .with_rebalance_cooldown(0.05);
    let mut policy = PlbHecPolicy::new(&cfg);
    let plan = FaultPlan::parse("drift:pu=1,kind=sin,from=0,period=8,amp=0.6", 2)
        .expect("valid drift plan");
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(plan);
    let report = engine.run(&mut policy, 8_000_000).expect("run completes");

    assert_eq!(report.total_items, 8_000_000);
    let sink = engine.last_events().expect("events recorded");
    assert!(
        sink.counters().drift_changes > 0,
        "the sinusoid must actually move the speed"
    );
    // The run lasts well under a second of virtual time: with a 50 ms
    // cooldown the trigger can re-solve only a handful of times, not
    // once per divergent block.
    assert!(
        policy.rebalances() <= 10,
        "rebalance thrash under drift: {} re-solves",
        policy.rebalances()
    );
}

/// Same drift scenario on the host engine: drift stretches real wall
/// time (the worker sleeps the surplus), the run completes, and the
/// cooldown bounds the re-solves.
#[test]
fn host_drift_completes_without_rebalance_thrash() {
    let n = 3;
    let total = 300_000u64;
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("spin", move |r, _| {
        let mut acc = 0u64;
        for i in r {
            acc = acc.wrapping_add(i).rotate_left(1);
        }
        std::hint::black_box(acc);
    }));
    let cfg = PolicyConfig::default()
        .with_initial_block(500)
        .with_round_fraction(0.33)
        .with_rebalance_cooldown(0.05);
    let mut policy = PlbHecPolicy::new(&cfg);
    let plan =
        FaultPlan::parse("drift:pu=1,kind=step,points=4:1.5/10:2.5", n).expect("valid drift plan");
    let mut engine = HostEngine::new(host_pus(n)).with_faults(plan);
    let report = engine
        .run(&mut policy, codelet, total)
        .expect("host run completes");

    assert_eq!(report.total_items, total);
    assert!(
        policy.rebalances() <= 10,
        "rebalance thrash under drift: {} re-solves",
        policy.rebalances()
    );
}

/// The elastic chaos dimension is seeded: bit-identical plans per seed,
/// never touching unit 0, at most one join per unit.
#[test]
fn chaos_elastic_plans_are_reproducible_and_bounded() {
    for seed in 0..32u64 {
        let a = FaultPlan::chaos_elastic(seed, 6, 12, 3);
        let b = FaultPlan::chaos_elastic(seed, 6, 12, 3);
        assert_eq!(a.faults, b.faults, "seed {seed} not reproducible");
        let joins = a.joins();
        for &(pu, _) in &joins {
            assert_ne!(pu, 0, "unit 0 must stay untouched");
        }
        let mut pus: Vec<usize> = joins.iter().map(|&(pu, _)| pu).collect();
        pus.dedup();
        assert_eq!(pus.len(), joins.len(), "a unit may join at most once");
        // The base (non-elastic) dimension is unchanged by composition.
        let base = FaultPlan::chaos(seed, 6, 12);
        let zero = FaultPlan::chaos_elastic(seed, 6, 12, 0);
        assert_eq!(base.faults, zero.faults);
    }
}

/// Full PLB-HeC survives combined loss + join + drift chaos across
/// seeds with every item accounted for.
#[test]
fn plb_hec_completes_under_elastic_chaos() {
    let total = 2_000_000u64;
    let cost = heavy_cost();
    for seed in [7u64, 42, 1234] {
        let mut cluster = sim_cluster(Scenario::Two);
        let n = cluster.ids().count();
        let plan = FaultPlan::chaos_elastic(seed, n, 2 * n, 2);
        let cfg = PolicyConfig::default()
            .with_initial_block(1_000)
            .with_round_fraction(0.25)
            .with_rebalance_cooldown(0.02);
        let mut policy = PlbHecPolicy::new(&cfg);
        let report = SimEngine::new(&mut cluster, &cost)
            .with_faults(plan)
            .run(&mut policy, total)
            .unwrap_or_else(|e| panic!("seed {seed}: run failed: {e}"));
        assert_eq!(report.total_items, total, "seed {seed}");
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        assert_eq!(per_pu, total, "seed {seed}: items lost or duplicated");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Folding a joined unit at an arbitrary point of the run preserves
    /// the split invariant (the reported distribution sums to 1) and
    /// item conservation on the simulator.
    #[test]
    fn prop_sim_join_preserves_split_sum(
        pu_pick in 0usize..8,
        after in 0u64..120,
    ) {
        let total = 2_000_000u64;
        let mut cluster = sim_cluster(Scenario::Two);
        let n = cluster.ids().count();
        // Any unit but 0 (the master CPU stays up by convention).
        let pu = 1 + pu_pick % (n - 1);
        let cost = heavy_cost();
        let cfg = PolicyConfig::default()
            .with_initial_block(1_000)
            .with_round_fraction(0.25);
        let mut policy = PlbHecPolicy::new(&cfg);
        let plan = FaultPlan::parse(&format!("join:pu={pu},after={after}"), n)
            .expect("valid join plan");
        let report = SimEngine::new(&mut cluster, &cost)
            .with_faults(plan)
            .run(&mut policy, total)
            .expect("run completes");
        prop_assert_eq!(report.total_items, total);
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        prop_assert_eq!(per_pu, total, "items lost or duplicated");
        if let Some(d) = &report.block_distribution {
            let sum: f64 = d.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "split must sum to 1, got {}", sum);
        }
    }

    /// On the real-thread engine the work pool's disjoint-range
    /// invariant holds under arbitrary join timing: the executed ranges
    /// tile 0..total exactly, joined unit included.
    #[test]
    fn prop_host_join_preserves_disjoint_cover(
        pu in 1usize..3,
        after in 0u64..20,
        block in 500u64..2_000,
    ) {
        let n = 3;
        let total = 60_000u64;
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let sink_ranges = Arc::clone(&ranges);
        let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("collect", move |r, _| {
            sink_ranges.lock().expect("range log lock").push(r);
        }));
        let plan = FaultPlan::parse(&format!("join:pu={pu},after={after}"), n)
            .expect("valid join plan");
        let mut engine = HostEngine::new(host_pus(n)).with_faults(plan);
        let report = engine
            .run(&mut PumpPolicy { block }, codelet, total)
            .expect("host run completes");
        prop_assert_eq!(report.total_items, total);
        let got = ranges.lock().expect("range log lock").clone();
        let mut sorted = got;
        sorted.sort_by_key(|r| r.start);
        let mut expect = 0;
        for r in sorted {
            prop_assert_eq!(r.start, expect, "gap or overlap in executed ranges");
            expect = r.end;
        }
        prop_assert_eq!(expect, total, "the cover must end at total_items");
    }
}
