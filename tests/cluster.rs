//! The cluster tier end-to-end: multi-node balancing with node-level
//! fault domains. Partitions degrade a run gracefully (zero lost or
//! duplicated items, quarantine + re-credit events, makespan within the
//! quarantined node's capacity share plus re-credit overhead, and
//! re-admission through the acquisition gate on heal); crashes execute
//! every item exactly once at the runner level; seeded cluster chaos
//! preserves the disjoint complete cover; the simulator and host node
//! runners agree on crash accounting; and checkpoint v3 stamps the node
//! roster so mid-partition snapshots resume only under the same nodes.

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::workload::LinearCost;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuKind, Scenario, Topology};
use plb_hec_suite::plb::NodeDiffusionPolicy;
use plb_hec_suite::runtime::{
    equal_cost_shards, Checkpoint, CheckpointConfig, ChunkOutcome, ClusterEngine, Codelet,
    EventCounters, FaultToleranceConfig, FixedBlockPolicy, FnCodelet, HostNodeRunner, HostPu,
    MigrationConfig, NodeFault, NodeFaultKind, NodeFaultPlan, NodeRunner, Policy, PuState,
    RunError, RunReport, SimNodeRunner, Weights, WorkloadId, CHECKPOINT_FORMAT_VERSION,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Per-node simulated machines, intra-node policies, and names for an
/// `n`-node homogeneous cluster.
fn sim_nodes(n: usize) -> (Vec<ClusterSim>, Vec<Box<dyn Policy>>, Vec<String>) {
    let opts = ClusterOptions {
        noise_sigma: 0.0,
        ..Default::default()
    };
    let clusters = (0..n)
        .map(|_| ClusterSim::build(&cluster_scenario(Scenario::One, false), &opts))
        .collect();
    let policies = (0..n)
        .map(|_| Box::new(FixedBlockPolicy { block: 4096 }) as Box<dyn Policy>)
        .collect();
    let names = (0..n).map(|i| format!("node{i}")).collect();
    (clusters, policies, names)
}

fn diffusion_for(n: usize, total: u64) -> NodeDiffusionPolicy {
    let bounds = equal_cost_shards(total, n, &Weights::uniform());
    NodeDiffusionPolicy::new(Topology::Full, bounds)
}

/// Migration tunables scaled to a simulated run whose fault-free
/// makespan is `m` seconds: the defaults are sized for wall-clock
/// clusters, so a sub-millisecond virtual run would otherwise spend
/// 25x its makespan in one retry backoff.
fn scaled_migration(m: f64) -> MigrationConfig {
    MigrationConfig {
        base_backoff_s: 0.02 * m,
        deadline_s: 10.0 * m,
        max_attempts: 6,
        ..Default::default()
    }
}

/// Rescale a plan's time windows (partitions, link degradations) by
/// `factor`, leaving chunk-keyed crashes untouched — chaos plans speak
/// in wall-clock seconds, simulated runs in sub-millisecond virtual
/// time.
fn rescale_windows(mut plan: NodeFaultPlan, factor: f64) -> NodeFaultPlan {
    for fault in &mut plan.faults {
        match &mut fault.kind {
            NodeFaultKind::Partition { from_s, to_s } => {
                *from_s *= factor;
                *to_s *= factor;
            }
            NodeFaultKind::LinkDegrade { from_s, to_s, .. } => {
                *from_s *= factor;
                *to_s *= factor;
            }
            NodeFaultKind::Crash { .. } => {}
        }
    }
    plan
}

/// Run an `n`-node simulated cluster under `plan`, returning the report
/// and the event counters. `migration` overrides the delivery tunables
/// (the defaults are sized for wall-clock seconds; simulated runs are
/// sub-millisecond, so tests scale the retry timescale to the run).
fn run_sim_cluster(
    n: usize,
    total: u64,
    plan: NodeFaultPlan,
    migration: Option<MigrationConfig>,
) -> (Result<RunReport, RunError>, EventCounters) {
    let cost = LinearCost::generic();
    let (clusters, policies, names) = sim_nodes(n);
    let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform());
    let mut policy = diffusion_for(n, total);
    let mut engine = ClusterEngine::new(&mut runner).with_node_faults(plan);
    if let Some(m) = migration {
        engine = engine.with_migration(m);
    }
    let result = engine.run(&mut policy, total);
    let counters = engine
        .last_events()
        .map(|s| s.counters())
        .unwrap_or_default();
    (result, counters)
}

fn assert_full_cover(report: &RunReport, total: u64) {
    assert_eq!(
        report.cover,
        vec![(0, total)],
        "cover must be one disjoint range over the whole item space"
    );
    let done: u64 = report.pus.iter().map(|p| p.items).sum();
    assert_eq!(done, total, "per-node item accounting must sum to total");
}

#[test]
fn fault_free_cluster_completes_with_full_cover() {
    let total = 90_000;
    let (result, counters) = run_sim_cluster(3, total, NodeFaultPlan::none(), None);
    let report = result.expect("fault-free cluster run");
    assert_full_cover(&report, total);
    assert!(report.makespan > 0.0);
    // Every node contributes: the shards are equal-cost and the nodes
    // identical, so nobody should sit the run out.
    for pu in &report.pus {
        assert!(pu.items > 0, "{} processed nothing", pu.name);
    }
    assert_eq!(counters.node_quarantines, 0);
    assert_eq!(counters.cover_recredits, 0);
}

/// The acceptance scenario: a partition mid-run quarantines one of
/// three nodes and re-credits its in-flight chunk; survivors absorb the
/// work (no lost or duplicated items); the makespan degrades by less
/// than the quarantined node's full capacity share; and the node is
/// re-admitted through the acquisition gate when the partition heals
/// before completion.
#[test]
fn partition_degrades_gracefully_recredits_and_readmits() {
    let total = 120_000;
    let (baseline, _) = run_sim_cluster(3, total, NodeFaultPlan::none(), None);
    let baseline = baseline.expect("baseline run");
    let m = baseline.makespan;
    assert!(m > 0.0);

    // Cut node 2 off during the middle of the run; it heals well before
    // the degraded run can finish.
    let plan = NodeFaultPlan::new(vec![NodeFault {
        node: 2,
        kind: NodeFaultKind::Partition {
            from_s: 0.25 * m,
            to_s: 0.60 * m,
        },
    }]);
    let (result, counters) = run_sim_cluster(3, total, plan, Some(scaled_migration(m)));
    let report = result.expect("partitioned run must still complete");

    // Zero lost, zero duplicated: the cover is exact.
    assert_full_cover(&report, total);

    // The fault surfaced through the v6 event stream: quarantine on the
    // cut, re-credit of the in-flight chunk, re-admission on heal.
    assert!(counters.node_quarantines >= 1, "no node_quarantined event");
    assert!(counters.cover_recredits >= 1, "no cover_recredited event");
    assert!(counters.node_joins >= 1, "healed node was not re-admitted");

    // Graceful degradation: losing one of three equal nodes for the
    // whole run would cost 1.5x; a bounded window plus re-credit
    // overhead must cost strictly less.
    assert!(
        report.makespan < 1.5 * m,
        "partition cost more than the node's full capacity share: {} vs baseline {}",
        report.makespan,
        m
    );
    assert!(
        report.makespan > 0.99 * m,
        "partitioned run cannot beat the fault-free baseline"
    );
}

/// A node runner that records every chunk execution, so tests can
/// assert the exactly-once property at the execution level (not just in
/// the driver's accounting).
struct CountingRunner<'c> {
    inner: SimNodeRunner<'c>,
    runs: Vec<(usize, u64, u64)>,
}

impl NodeRunner for CountingRunner<'_> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn node_name(&self, node: usize) -> String {
        self.inner.node_name(node)
    }
    fn run_chunk(&mut self, node: usize, offset: u64, items: u64) -> Result<ChunkOutcome, String> {
        self.runs.push((node, offset, items));
        self.inner.run_chunk(node, offset, items)
    }
}

/// Crashes are keyed on completed chunks and fire with nothing in
/// flight, and a degraded (slow but lossless) link never drops a
/// delivery — so every item is executed exactly once even while the
/// survivors absorb the dead node's shard over the network.
#[test]
fn crash_executes_every_item_exactly_once() {
    let total: u64 = 60_000;
    let cost = LinearCost::generic();
    let (clusters, policies, names) = sim_nodes(3);
    let mut runner = CountingRunner {
        inner: SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform()),
        runs: Vec::new(),
    };
    let mut policy = diffusion_for(3, total);
    let plan = NodeFaultPlan::new(vec![
        NodeFault {
            node: 2,
            kind: NodeFaultKind::Crash { after_chunks: 2 },
        },
        NodeFault {
            node: 0,
            kind: NodeFaultKind::LinkDegrade {
                peer: 1,
                factor: 3.0,
                from_s: 0.0,
                to_s: 1e6,
            },
        },
    ]);
    let counters;
    {
        let mut engine = ClusterEngine::new(&mut runner).with_node_faults(plan);
        let report = engine
            .run(&mut policy, total)
            .expect("survivors must finish after the crash");
        assert_full_cover(&report, total);
        counters = engine
            .last_events()
            .map(|s| s.counters())
            .unwrap_or_default();
    }
    assert!(counters.node_quarantines >= 1, "crash must quarantine");
    assert!(
        counters.migrations_sent >= 1,
        "absorbing the dead node's shard must migrate work"
    );
    // Execution-level exactly-once: every item ran in precisely one
    // chunk across all nodes.
    let mut hits = vec![0u32; total as usize];
    for &(_, offset, items) in &runner.runs {
        for i in offset..offset + items {
            hits[i as usize] += 1;
        }
    }
    let zero = hits.iter().filter(|&&h| h == 0).count();
    let multi = hits.iter().filter(|&&h| h > 1).count();
    assert!(
        zero == 0 && multi == 0,
        "exactly-once violated: {zero} items never ran, {multi} ran more than once \
         (chunks: {:?})",
        runner.runs
    );
}

/// An undeliverable migration (the shard owner is partitioned away)
/// retries with exponential backoff and succeeds once the partition
/// heals — the retry schedule bridges the outage instead of losing the
/// chunk.
#[test]
fn undeliverable_migrations_retry_until_heal() {
    let total = 60_000;
    // Baseline to calibrate the virtual timescale.
    let (baseline, _) = run_sim_cluster(2, total, NodeFaultPlan::none(), None);
    let m = baseline.expect("baseline run").makespan;

    // Node 1 is unreachable from the start until well after node 0 has
    // exhausted its own shard and reached across the cut.
    let heal = 1.4 * m;
    let plan = NodeFaultPlan::new(vec![NodeFault {
        node: 1,
        kind: NodeFaultKind::Partition {
            from_s: 0.0,
            to_s: heal,
        },
    }]);
    let cost = LinearCost::generic();
    let (clusters, policies, names) = sim_nodes(2);
    let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform());
    let mut policy = diffusion_for(2, total);
    let mut engine = ClusterEngine::new(&mut runner)
        .with_node_faults(plan)
        // A wide retry schedule: backoff doubling from 0.1x the
        // baseline makespan bridges any heal within ~12x baseline.
        .with_migration(MigrationConfig {
            base_backoff_s: 0.1 * m,
            max_attempts: 8,
            deadline_s: 100.0 * m,
            ..Default::default()
        })
        // Keep the reaching node un-quarantined while it waits.
        .with_fault_tolerance(FaultToleranceConfig::default().with_quarantine_after(100));
    let report = engine
        .run(&mut policy, total)
        .expect("run must complete after the heal");
    let counters = engine
        .last_events()
        .map(|s| s.counters())
        .unwrap_or_default();
    assert_full_cover(&report, total);
    assert!(counters.migrations_sent >= 1, "no migration was attempted");
    assert!(
        counters.migration_retries >= 1,
        "the undeliverable migration never retried"
    );
    assert!(
        counters.node_quarantines >= 1,
        "the cut node must be quarantined"
    );
    assert!(
        counters.node_joins >= 1,
        "the healed node must be re-admitted"
    );
    assert!(
        report.makespan >= 0.999 * heal,
        "completion cannot precede the heal: {} < {}",
        report.makespan,
        heal
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeded cluster chaos (crashes, partitions, lossy links in random
    /// combination) never loses or duplicates an item: a finished run
    /// covers the item space exactly, and the only admissible failure
    /// is a detected stall (every node dead), never a bad cover.
    #[test]
    fn cluster_chaos_preserves_disjoint_complete_cover(
        seed in any::<u64>(),
        intensity in 1usize..4,
    ) {
        let total = 30_000;
        let plan = NodeFaultPlan::chaos_cluster(seed, 3, intensity);
        prop_assert!(plan.validate(3).is_ok());
        // Chaos windows speak wall-clock seconds (0..~18s); squeeze
        // them into the virtual run so they actually overlap it.
        let (baseline, _) = run_sim_cluster(3, total, NodeFaultPlan::none(), None);
        let m = baseline.map(|r| r.makespan).unwrap_or(1.0);
        let plan = rescale_windows(plan, m / 6.0);
        prop_assert!(plan.validate(3).is_ok());
        let (result, _) = run_sim_cluster(3, total, plan, Some(scaled_migration(m)));
        match result {
            Ok(report) => {
                prop_assert_eq!(report.cover.clone(), vec![(0, total)]);
                let done: u64 = report.pus.iter().map(|p| p.items).sum();
                prop_assert_eq!(done, total);
            }
            Err(RunError::Stalled { .. }) => {
                // Admissible: chaos can kill every node.
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}

/// The same chunk-keyed crash plan produces the same order-independent
/// facts on the discrete-event runner and the real-thread runner: a
/// complete cover, zero lost items, and exactly one quarantine.
#[test]
fn sim_and_host_runners_agree_on_crash_accounting() {
    let total: u64 = 16_000;
    let plan = NodeFaultPlan::new(vec![NodeFault {
        node: 1,
        kind: NodeFaultKind::Crash { after_chunks: 1 },
    }]);

    // Simulated nodes.
    let (sim_report, sim_counters) = run_sim_cluster(2, total, plan.clone(), None);
    let sim_report = sim_report.expect("sim cluster run");
    assert_full_cover(&sim_report, total);

    // Real-thread nodes: one single-threaded CPU each, trivial kernel.
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("noop", |_r, _| {}));
    let pus: Vec<Vec<HostPu>> = (0..2)
        .map(|i| {
            vec![HostPu {
                name: format!("n{i}-cpu"),
                kind: PuKind::Cpu,
                threads: 1,
            }]
        })
        .collect();
    let policies: Vec<Box<dyn Policy>> = (0..2)
        .map(|_| Box::new(FixedBlockPolicy { block: 2048 }) as Box<dyn Policy>)
        .collect();
    let names = vec!["node0".to_string(), "node1".to_string()];
    let mut runner = HostNodeRunner::new(names, pus, policies, codelet, Weights::uniform());
    let mut policy = diffusion_for(2, total);
    let mut engine = ClusterEngine::new(&mut runner).with_node_faults(plan);
    let host_report = engine.run(&mut policy, total).expect("host cluster run");
    let host_counters = engine
        .last_events()
        .map(|s| s.counters())
        .unwrap_or_default();
    assert_full_cover(&host_report, total);

    assert_eq!(sim_counters.node_quarantines, 1);
    assert_eq!(host_counters.node_quarantines, 1);
    assert!(sim_counters.migrations_sent >= 1);
    assert!(host_counters.migrations_sent >= 1);
    // The crashed node stopped after one chunk on both engines, so the
    // survivor carried the majority of the items on both.
    for report in [&sim_report, &host_report] {
        let survivor = report.pus.first().map(|p| p.items).unwrap_or(0);
        let crashed = report.pus.get(1).map(|p| p.items).unwrap_or(0);
        assert!(
            survivor > crashed,
            "survivor must out-process the crashed node"
        );
    }
}

/// Checkpoint v3: cluster snapshots stamp the node roster, a roster
/// mismatch is rejected before any work runs, and a matching roster
/// resumes onto the uncovered remainder.
#[test]
fn cluster_checkpoints_stamp_and_enforce_the_node_roster() {
    let total: u64 = 40_000;
    let snapshot = |nodes: Vec<String>| Checkpoint {
        version: CHECKPOINT_FORMAT_VERSION,
        workload: WorkloadId {
            policy: "node-diffusion".to_string(),
            total_items: total,
            n_pus: 2,
            total_cost: total,
            nodes,
        },
        seq: 0,
        at: 1.0,
        tasks_done: 1,
        next_task: 1,
        completed: vec![(0, 1_000)],
        units: (0..2)
            .map(|i| PuState {
                name: format!("node{i}"),
                dispatches: 0,
                consecutive_failures: 0,
                rate_ewma: None,
                quarantined: false,
                lost: false,
            })
            .collect(),
        counters: Default::default(),
        policy_state: None,
    };

    // A snapshot from a different roster must be rejected up front.
    let cost = LinearCost::generic();
    {
        let (clusters, policies, names) = sim_nodes(2);
        let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform());
        let mut policy = diffusion_for(2, total);
        let foreign = snapshot(vec!["alpha".to_string(), "beta".to_string()]);
        let result = ClusterEngine::new(&mut runner)
            .resume_from(foreign)
            .run(&mut policy, total);
        assert!(
            matches!(result, Err(RunError::Checkpoint { .. })),
            "a foreign node roster must not resume: {result:?}"
        );
    }

    // The same roster resumes and completes the uncovered remainder.
    {
        let (clusters, policies, names) = sim_nodes(2);
        let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform());
        let mut policy = diffusion_for(2, total);
        let own = snapshot(vec!["node0".to_string(), "node1".to_string()]);
        let report = ClusterEngine::new(&mut runner)
            .resume_from(own)
            .run(&mut policy, total)
            .expect("matching roster must resume");
        // The snapshot pre-covered the first 1,000 items; the resumed
        // run completes the cover by processing only the remainder.
        assert_eq!(report.cover, vec![(0, total)]);
        let done: u64 = report.pus.iter().map(|p| p.items).sum();
        assert_eq!(done, total - 1_000);
    }

    // A live run stamps the roster into the snapshot it writes. The
    // offline test image ships a non-serializing serde_json stub, in
    // which case snapshot writing reports a typed checkpoint error and
    // the stamping assertion is skipped.
    {
        let dir = std::env::temp_dir().join(format!("plb-cluster-ckpt-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cluster.ckpt");
        let (clusters, policies, names) = sim_nodes(2);
        let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform());
        let mut policy = diffusion_for(2, total);
        let result = ClusterEngine::new(&mut runner)
            .with_checkpoint(CheckpointConfig::new(&path).with_interval(1))
            .run(&mut policy, total);
        match result {
            Ok(report) => {
                assert_full_cover(&report, total);
                let ck = plb_hec_suite::runtime::checkpoint::load(&path)
                    .expect("final snapshot must load");
                assert_eq!(
                    ck.workload.nodes,
                    vec!["node0".to_string(), "node1".to_string()],
                    "cluster snapshots must carry the node roster"
                );
            }
            Err(RunError::Checkpoint { .. }) => {
                // Stub serde_json: snapshot writing unavailable offline.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
