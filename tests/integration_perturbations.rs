//! Cross-crate integration: QoS drift, device failure and restoration
//! under every policy (the paper's Section VI scenarios).

use plb_hec_suite::hetsim::cluster::ClusterOptions;
use plb_hec_suite::hetsim::{cluster_scenario, ClusterSim, PuId, Scenario};
use plb_hec_suite::plb::{AcostaPolicy, GreedyPolicy, HdssPolicy, PlbHecPolicy, PolicyConfig};
use plb_hec_suite::runtime::{Perturbation, PerturbationKind, Policy, SimEngine};

const TOTAL: u64 = 120_000;

fn cost() -> impl plb_hec_suite::hetsim::CostModel {
    plb_hec_suite::apps::GrnInference::new(TOTAL).cost()
}

fn cfg() -> PolicyConfig {
    PolicyConfig::default().with_initial_block(120)
}

fn run_with(
    policy: &mut dyn Policy,
    perturbations: Vec<Perturbation>,
) -> plb_hec_suite::runtime::RunReport {
    let machines = cluster_scenario(Scenario::Two, false);
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed: 5,
            noise_sigma: 0.02,
            ..Default::default()
        },
    );
    let c = cost();
    SimEngine::new(&mut cluster, &c)
        .with_perturbations(perturbations)
        .run(policy, TOTAL)
        .expect("run completes despite perturbations")
}

fn all_policies() -> Vec<Box<dyn Policy>> {
    let cfg = cfg();
    vec![
        Box::new(PlbHecPolicy::new(&cfg)),
        Box::new(GreedyPolicy::new(&cfg)),
        Box::new(AcostaPolicy::new(&cfg)),
        Box::new(HdssPolicy::new(&cfg)),
    ]
}

#[test]
fn every_policy_survives_gpu_failure() {
    for mut p in all_policies() {
        let report = run_with(
            p.as_mut(),
            vec![Perturbation {
                at: 0.2,
                kind: PerturbationKind::Fail(PuId(1)),
            }],
        );
        assert_eq!(report.total_items, TOTAL, "{}", report.policy);
    }
}

#[test]
fn every_policy_survives_remote_machine_loss() {
    for mut p in all_policies() {
        let report = run_with(
            p.as_mut(),
            vec![
                Perturbation {
                    at: 0.15,
                    kind: PerturbationKind::Fail(PuId(2)),
                },
                Perturbation {
                    at: 0.15,
                    kind: PerturbationKind::Fail(PuId(3)),
                },
                Perturbation {
                    at: 0.15,
                    kind: PerturbationKind::Fail(PuId(4)),
                },
            ],
        );
        assert_eq!(report.total_items, TOTAL, "{}", report.policy);
        // Machine A's units absorb nearly everything.
        let absorbed: u64 = report.pus[..2].iter().map(|p| p.items).sum();
        assert!(
            absorbed > TOTAL * 8 / 10,
            "{}: survivors only processed {absorbed}",
            report.policy
        );
    }
}

#[test]
fn every_policy_survives_qos_drift() {
    for mut p in all_policies() {
        let report = run_with(
            p.as_mut(),
            vec![Perturbation {
                at: 0.1,
                kind: PerturbationKind::SetSlowdown(PuId(1), 8.0),
            }],
        );
        assert_eq!(report.total_items, TOTAL, "{}", report.policy);
    }
}

#[test]
fn failed_then_restored_device_rejoins_greedy() {
    // Restoration mid-run: greedy has no unit bookkeeping, so a restored
    // unit is only picked up by policies that re-poll availability; the
    // engine must at minimum complete the run.
    let cfgv = cfg();
    let mut p = GreedyPolicy::new(&cfgv);
    let report = run_with(
        &mut p,
        vec![
            Perturbation {
                at: 0.05,
                kind: PerturbationKind::Fail(PuId(1)),
            },
            Perturbation {
                at: 0.10,
                kind: PerturbationKind::Restore(PuId(1)),
            },
        ],
    );
    assert_eq!(report.total_items, TOTAL);
}

#[test]
fn plb_rebalances_on_drift_and_shifts_load() {
    let cfgv = cfg().with_round_fraction(0.15);
    let machines = cluster_scenario(Scenario::Two, false);
    let c = cost();

    // Baseline distribution.
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed: 5,
            noise_sigma: 0.02,
            ..Default::default()
        },
    );
    let mut p0 = PlbHecPolicy::new(&cfgv);
    let base = SimEngine::new(&mut cluster, &c)
        .run(&mut p0, TOTAL)
        .unwrap();
    let base_gpu_share = base.pus[1].item_share;

    // Drifted run: the GPU slows 6x at 40% of the baseline makespan.
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed: 5,
            noise_sigma: 0.02,
            ..Default::default()
        },
    );
    let mut p1 = PlbHecPolicy::new(&cfgv);
    let drifted = SimEngine::new(&mut cluster, &c)
        .with_perturbations(vec![Perturbation {
            at: 0.4 * base.makespan,
            kind: PerturbationKind::SetSlowdown(PuId(1), 6.0),
        }])
        .run(&mut p1, TOTAL)
        .unwrap();

    assert!(p1.rebalances() >= 1, "drift must trigger a rebalance");
    assert!(
        drifted.pus[1].item_share < base_gpu_share,
        "slowed GPU must end with a smaller share ({:.3} vs {:.3})",
        drifted.pus[1].item_share,
        base_gpu_share
    );
}
