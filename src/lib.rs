#![warn(missing_docs)]

//! PLB-HeC reproduction suite: one-stop re-exports of every crate in the
//! workspace.
//!
//! * [`numerics`] — dense linear algebra and the paper's curve models.
//! * [`ipm`] — the interior-point NLP solver (IPOPT's role).
//! * [`hetsim`] — the heterogeneous CPU/GPU cluster simulator (Table I).
//! * [`runtime`] — the StarPU-like task runtime (codelets, policies,
//!   discrete-event and real-thread engines).
//! * [`plb`] — PLB-HeC itself plus the Greedy/Acosta/HDSS baselines.
//! * [`apps`] — matrix multiplication, GRN inference, Black-Scholes.
//!
//! See the `examples/` directory for runnable entry points and the
//! `plb-bench` crate for the harness that regenerates the paper's
//! tables and figures.

pub use plb_apps as apps;
pub use plb_hec as plb;
pub use plb_hetsim as hetsim;
pub use plb_ipm as ipm;
pub use plb_numerics as numerics;
pub use plb_runtime as runtime;
