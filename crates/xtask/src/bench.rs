//! `cargo xtask bench-check [--tolerance PCT] [--fresh DIR]` validates
//! the committed performance snapshots (`BENCH_solver.json`,
//! `BENCH_driver.json`; written by `cargo run -p plb-bench --bin
//! perfbench --release`). The gates are machine-independent — shape,
//! iteration-count, and *ratio* invariants (structured vs dense
//! speedup, O(n) growth), never absolute microseconds — so the check
//! passes on any host. With `--fresh DIR`, freshly measured snapshots
//! in DIR are compared against the committed ones: iteration counts
//! (deterministic, machine-independent) must agree within the
//! tolerance. See `docs/PERFORMANCE.md`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One parsed `BENCH_solver.json` row.
#[derive(Debug, Clone, PartialEq)]
struct BenchEntry {
    n_pus: u64,
    structured_us: f64,
    dense_us: Option<f64>,
    cold_iters: u64,
    warm_iters: u64,
}

/// One parsed row of `BENCH_driver.json`'s claim-latency table.
#[derive(Debug, Clone, PartialEq)]
struct ClaimEntry {
    items: u64,
    uniform_ns: f64,
    weighted_ns: f64,
}

/// The parsed `BENCH_driver.json` fields bench-check gates on.
#[derive(Debug, Clone)]
struct DriverSnapshot {
    overhead: f64,
    events_per_sec: f64,
    claim: Vec<ClaimEntry>,
    /// `migration_sent` count in the reference cluster run.
    migrations: f64,
    /// Mean modeled inter-node transfer per migrated chunk, ms.
    migration_xfer_ms: f64,
}

/// Sizes every committed solver snapshot must cover.
const REQUIRED_SIZES: &[u64] = &[10, 100, 1000, 10000];

/// Minimum structured-vs-dense speedup at n = 1000 (the tentpole's
/// acceptance bar; the measured ratio is far larger).
const MIN_SPEEDUP_AT_1000: f64 = 10.0;

/// Growth cap: structured solve time may grow at most this factor per
/// 10× size step (O(n) per iteration with generous headroom for
/// iteration-count and cache effects).
const MAX_GROWTH_PER_DECADE: f64 = 30.0;

/// Entry point for `cargo xtask bench-check`.
pub fn bench_check(root: &Path, args: &[String]) -> ExitCode {
    let mut tolerance = 20.0f64;
    let mut fresh_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tolerance = v,
                _ => {
                    eprintln!("bench-check: --tolerance needs a non-negative number");
                    return ExitCode::FAILURE;
                }
            },
            "--fresh" => match it.next() {
                Some(v) => fresh_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("bench-check: --fresh needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench-check: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut errors = Vec::new();
    let committed = match load_solver_snapshot(&root.join("BENCH_solver.json")) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench-check: BENCH_solver.json: {e}");
            return ExitCode::FAILURE;
        }
    };
    check_solver_invariants(&committed, &mut errors);
    match load_driver_snapshot(&root.join("BENCH_driver.json")) {
        Ok(driver) => {
            if !(driver.overhead.is_finite() && driver.overhead > 0.0) {
                errors.push(format!(
                    "driver: sched_overhead_us_per_task = {} is not a positive number",
                    driver.overhead
                ));
            }
            if !(driver.events_per_sec.is_finite() && driver.events_per_sec >= 1e5) {
                errors.push(format!(
                    "driver: events_per_sec = {:.0} below the 1e5 sanity floor",
                    driver.events_per_sec
                ));
            }
            check_claim_invariants(&driver.claim, &mut errors);
            check_migration_invariants(&driver, &mut errors);
        }
        Err(e) => errors.push(format!("BENCH_driver.json: {e}")),
    }

    if let Some(dir) = fresh_dir {
        match load_solver_snapshot(&dir.join("BENCH_solver.json")) {
            Ok(fresh) => compare_iteration_counts(&committed, &fresh, tolerance, &mut errors),
            Err(e) => errors.push(format!("fresh snapshot {}: {e}", dir.display())),
        }
    }

    if errors.is_empty() {
        println!(
            "xtask bench-check: OK ({} solver entries, tolerance {tolerance}%)",
            committed.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("bench-check: {e}");
        }
        eprintln!("xtask bench-check: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

/// Shape + ratio gates on a committed solver snapshot. All gates are
/// machine-independent: they constrain ratios and iteration counts,
/// never absolute times.
fn check_solver_invariants(entries: &[BenchEntry], errors: &mut Vec<String>) {
    for &size in REQUIRED_SIZES {
        match entries.iter().find(|e| e.n_pus == size) {
            None => errors.push(format!("solver: no entry at n_pus = {size}")),
            Some(e) => {
                if !(e.structured_us.is_finite() && e.structured_us > 0.0) {
                    errors.push(format!(
                        "solver: structured_us at n = {size} is not a positive number"
                    ));
                }
                if e.warm_iters > e.cold_iters {
                    errors.push(format!(
                        "solver: warm start at n = {size} took {} iterations vs {} cold — \
                         warm must never be slower",
                        e.warm_iters, e.cold_iters
                    ));
                }
            }
        }
    }
    if let Some(e) = entries.iter().find(|e| e.n_pus == 1000) {
        match e.dense_us {
            Some(d) if d.is_finite() && d > 0.0 => {
                let speedup = d / e.structured_us;
                if speedup < MIN_SPEEDUP_AT_1000 {
                    errors.push(format!(
                        "solver: structured path is only {speedup:.1}x faster than dense at \
                         n = 1000 (required >= {MIN_SPEEDUP_AT_1000}x)"
                    ));
                }
            }
            _ => errors.push("solver: dense_us missing at n = 1000 (the oracle size)".to_string()),
        }
    }
    let mut sorted: Vec<&BenchEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| e.n_pus);
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.n_pus == a.n_pus * 10 && b.structured_us > a.structured_us * MAX_GROWTH_PER_DECADE {
            errors.push(format!(
                "solver: structured time grew {:.1}x from n = {} to n = {} \
                 (cap {MAX_GROWTH_PER_DECADE}x per decade — the O(n) path has regressed)",
                b.structured_us / a.structured_us,
                a.n_pus,
                b.n_pus
            ));
        }
    }
}

/// Pool sizes every committed claim-latency table must cover (the
/// weighted range model's `WorkPool::take` benchmark).
const REQUIRED_CLAIM_SIZES: &[u64] = &[10_000, 1_000_000];

/// Growth cap on the weighted claim column across the two-decade size
/// step: the weighted path is a binary search over the prefix sum, so
/// per-claim cost may grow logarithmically (~1.5x between 1e4 and 1e6),
/// never linearly. The cap leaves generous headroom for cache effects.
const MAX_WEIGHTED_CLAIM_GROWTH: f64 = 25.0;

/// Shape + ratio gates on the driver snapshot's claim-latency table.
/// Machine-independent like the solver gates: positivity and growth
/// ratios only, never absolute nanoseconds.
fn check_claim_invariants(claim: &[ClaimEntry], errors: &mut Vec<String>) {
    for &size in REQUIRED_CLAIM_SIZES {
        match claim.iter().find(|e| e.items == size) {
            None => errors.push(format!("driver: no claim entry at items = {size}")),
            Some(e) => {
                for (name, v) in [("uniform_ns", e.uniform_ns), ("weighted_ns", e.weighted_ns)] {
                    if !(v.is_finite() && v > 0.0) {
                        errors.push(format!(
                            "driver: claim {name} at items = {size} is not a positive number"
                        ));
                    }
                }
            }
        }
    }
    let mut sorted: Vec<&ClaimEntry> = claim.iter().collect();
    sorted.sort_by_key(|e| e.items);
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.weighted_ns > a.weighted_ns * MAX_WEIGHTED_CLAIM_GROWTH {
            errors.push(format!(
                "driver: weighted claim cost grew {:.1}x from {} to {} items \
                 (cap {MAX_WEIGHTED_CLAIM_GROWTH}x — the O(log n) claim path has regressed)",
                b.weighted_ns / a.weighted_ns,
                a.items,
                b.items
            ));
        }
    }
}

/// Gates on the cluster tier's migration snapshot. The reference run is
/// a virtual-clock simulation, so both values are deterministic and may
/// be gated directly: the skewed ring must actually migrate work, and
/// every migrated chunk pays at least the modeled link's 1 ms
/// propagation latency — a mean below that means the migration path
/// stopped charging the link.
fn check_migration_invariants(driver: &DriverSnapshot, errors: &mut Vec<String>) {
    if !(driver.migrations.is_finite() && driver.migrations >= 1.0) {
        errors.push(format!(
            "driver: migration.migrations = {} — the reference cluster run must migrate \
             at least one chunk",
            driver.migrations
        ));
    }
    if !(driver.migration_xfer_ms.is_finite() && driver.migration_xfer_ms >= 1.0) {
        errors.push(format!(
            "driver: migration.xfer_ms_mean = {} below the link's 1 ms latency floor",
            driver.migration_xfer_ms
        ));
    }
}

/// Iteration counts are deterministic per problem, so a fresh run on any
/// machine must reproduce the committed ones within the tolerance.
fn compare_iteration_counts(
    committed: &[BenchEntry],
    fresh: &[BenchEntry],
    tolerance_pct: f64,
    errors: &mut Vec<String>,
) {
    let within = |a: u64, b: u64| -> bool {
        let (a, b) = (a as f64, b as f64);
        // Small absolute slack covers tiny counts (2 vs 3 iterations is
        // noise, not a regression).
        (a - b).abs() <= (a.max(b) * tolerance_pct / 100.0).max(1.0)
    };
    for f in fresh {
        let Some(c) = committed.iter().find(|c| c.n_pus == f.n_pus) else {
            continue;
        };
        if !within(c.cold_iters, f.cold_iters) {
            errors.push(format!(
                "fresh: cold_iters at n = {} is {} vs committed {} (tolerance {tolerance_pct}%)",
                f.n_pus, f.cold_iters, c.cold_iters
            ));
        }
        if !within(c.warm_iters, f.warm_iters) {
            errors.push(format!(
                "fresh: warm_iters at n = {} is {} vs committed {} (tolerance {tolerance_pct}%)",
                f.n_pus, f.warm_iters, c.warm_iters
            ));
        }
        if f.warm_iters > f.cold_iters {
            errors.push(format!(
                "fresh: warm start at n = {} took {} iterations vs {} cold",
                f.n_pus, f.warm_iters, f.cold_iters
            ));
        }
    }
}

// --- minimal JSON field extraction (keeps xtask dependency-free) -----------

/// Value of `"key": <number|null>` inside `obj`, or an error. `None`
/// means an explicit `null`.
fn json_number(obj: &str, key: &str) -> Result<Option<f64>, String> {
    let needle = format!("\"{key}\"");
    let at = obj
        .find(&needle)
        .ok_or_else(|| format!("field `{key}` not found"))?;
    let rest = obj[at + needle.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("field `{key}` is not `key: value`"))?
        .trim_start();
    if rest.starts_with("null") {
        return Ok(None);
    }
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map(Some)
        .map_err(|e| format!("field `{key}`: {e}"))
}

/// Split the `"entries": [ ... ]` array into its `{...}` object slices.
fn json_entry_objects(text: &str) -> Result<Vec<&str>, String> {
    json_array_objects(text, "entries")
}

/// Split a top-level `"key": [ {...}, ... ]` array into object slices.
fn json_array_objects<'a>(text: &'a str, key: &str) -> Result<Vec<&'a str>, String> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle).ok_or(format!("no `{key}` array"))?;
    let open = at
        + text[at..]
            .find('[')
            .ok_or(format!("no `[` after `{key}`"))?;
    let close = open
        + text[open..]
            .find(']')
            .ok_or(format!("no `]` closing `{key}`"))?;
    let body = &text[open + 1..close];
    let mut objects = Vec::new();
    let mut rest = body;
    while let Some(s) = rest.find('{') {
        let e = rest[s..]
            .find('}')
            .ok_or("unterminated entry object".to_string())?;
        objects.push(&rest[s..s + e + 1]);
        rest = &rest[s + e + 1..];
    }
    Ok(objects)
}

fn load_solver_snapshot(path: &Path) -> Result<Vec<BenchEntry>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = json_entry_objects(&text)?;
    let mut out = Vec::with_capacity(entries.len());
    for obj in entries {
        let req = |key: &str| -> Result<f64, String> {
            json_number(obj, key)?.ok_or_else(|| format!("field `{key}` is null"))
        };
        out.push(BenchEntry {
            n_pus: req("n_pus")? as u64,
            structured_us: req("structured_us")?,
            dense_us: json_number(obj, "dense_us")?,
            cold_iters: req("cold_iters")? as u64,
            warm_iters: req("warm_iters")? as u64,
        });
    }
    if out.is_empty() {
        return Err("snapshot has no entries".to_string());
    }
    Ok(out)
}

fn load_driver_snapshot(path: &Path) -> Result<DriverSnapshot, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let overhead = json_number(&text, "sched_overhead_us_per_task")?
        .ok_or("sched_overhead_us_per_task is null")?;
    let events = json_number(&text, "events_per_sec")?.ok_or("events_per_sec is null")?;
    let mut claim = Vec::new();
    for obj in json_array_objects(&text, "claim")? {
        let req = |key: &str| -> Result<f64, String> {
            json_number(obj, key)?.ok_or_else(|| format!("claim field `{key}` is null"))
        };
        claim.push(ClaimEntry {
            items: req("items")? as u64,
            uniform_ns: req("uniform_ns")?,
            weighted_ns: req("weighted_ns")?,
        });
    }
    let migrations = json_number(&text, "migrations")?.ok_or("migration.migrations is null")?;
    let migration_xfer_ms =
        json_number(&text, "xfer_ms_mean")?.ok_or("migration.xfer_ms_mean is null")?;
    Ok(DriverSnapshot {
        overhead,
        events_per_sec: events,
        claim,
        migrations,
        migration_xfer_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_SNAPSHOT: &str = r#"{
  "schema": 1,
  "entries": [
    {"n_pus": 10, "structured_us": 24.5, "dense_us": 61.3, "cold_iters": 8, "warm_iters": 2},
    {"n_pus": 100, "structured_us": 236.2, "dense_us": 6562.8, "cold_iters": 9, "warm_iters": 2},
    {"n_pus": 1000, "structured_us": 3534.9, "dense_us": 3940227.4, "cold_iters": 16, "warm_iters": 2},
    {"n_pus": 10000, "structured_us": 7158.6, "dense_us": null, "cold_iters": 9, "warm_iters": 3}
  ]
}"#;

    fn sample_entries() -> Vec<BenchEntry> {
        json_entry_objects(SAMPLE_SNAPSHOT)
            .unwrap()
            .iter()
            .map(|obj| BenchEntry {
                n_pus: json_number(obj, "n_pus").unwrap().unwrap() as u64,
                structured_us: json_number(obj, "structured_us").unwrap().unwrap(),
                dense_us: json_number(obj, "dense_us").unwrap(),
                cold_iters: json_number(obj, "cold_iters").unwrap().unwrap() as u64,
                warm_iters: json_number(obj, "warm_iters").unwrap().unwrap() as u64,
            })
            .collect()
    }

    #[test]
    fn snapshot_json_parses_including_null_dense() {
        let entries = sample_entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].n_pus, 10);
        assert_eq!(entries[2].dense_us, Some(3940227.4));
        assert_eq!(entries[3].dense_us, None);
        assert_eq!(entries[3].warm_iters, 3);
    }

    #[test]
    fn solver_invariants_accept_the_committed_shape() {
        let mut errors = Vec::new();
        check_solver_invariants(&sample_entries(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn solver_invariants_catch_regressions() {
        // Dense barely faster than structured at n = 1000.
        let mut slow = sample_entries();
        slow[2].dense_us = Some(slow[2].structured_us * 2.0);
        let mut errors = Vec::new();
        check_solver_invariants(&slow, &mut errors);
        assert!(errors.iter().any(|e| e.contains("10x")), "{errors:?}");

        // Warm start slower than cold.
        let mut warm = sample_entries();
        warm[1].warm_iters = warm[1].cold_iters + 5;
        errors.clear();
        check_solver_invariants(&warm, &mut errors);
        assert!(errors.iter().any(|e| e.contains("warm")), "{errors:?}");

        // Super-linear growth.
        let mut growth = sample_entries();
        growth[3].structured_us = growth[2].structured_us * 100.0;
        errors.clear();
        check_solver_invariants(&growth, &mut errors);
        assert!(errors.iter().any(|e| e.contains("grew")), "{errors:?}");

        // A missing size.
        let partial: Vec<BenchEntry> = sample_entries().into_iter().take(2).collect();
        errors.clear();
        check_solver_invariants(&partial, &mut errors);
        assert!(errors.iter().any(|e| e.contains("no entry")), "{errors:?}");
    }

    const SAMPLE_DRIVER: &str = r#"{
  "schema": 1,
  "sched_overhead_us_per_task": 0.568,
  "tasks_measured": 512,
  "events_per_sec": 59185003.562,
  "events_measured": 1000000,
  "claim": [
    {"items": 10000, "uniform_ns": 45.2, "weighted_ns": 98.7},
    {"items": 1000000, "uniform_ns": 46.1, "weighted_ns": 141.3}
  ],
  "migration": {"migrations": 6, "xfer_ms_mean": 1.412}
}"#;

    fn sample_claim() -> Vec<ClaimEntry> {
        json_array_objects(SAMPLE_DRIVER, "claim")
            .unwrap()
            .iter()
            .map(|obj| ClaimEntry {
                items: json_number(obj, "items").unwrap().unwrap() as u64,
                uniform_ns: json_number(obj, "uniform_ns").unwrap().unwrap(),
                weighted_ns: json_number(obj, "weighted_ns").unwrap().unwrap(),
            })
            .collect()
    }

    #[test]
    fn claim_table_parses_and_passes_invariants() {
        let claim = sample_claim();
        assert_eq!(claim.len(), 2);
        assert_eq!(claim[1].items, 1_000_000);
        let mut errors = Vec::new();
        check_claim_invariants(&claim, &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn claim_invariants_catch_regressions() {
        // Missing the large-pool row.
        let partial: Vec<ClaimEntry> = sample_claim().into_iter().take(1).collect();
        let mut errors = Vec::new();
        check_claim_invariants(&partial, &mut errors);
        assert!(
            errors.iter().any(|e| e.contains("no claim entry")),
            "{errors:?}"
        );

        // Non-positive latency.
        let mut zero = sample_claim();
        zero[0].weighted_ns = 0.0;
        errors.clear();
        check_claim_invariants(&zero, &mut errors);
        assert!(
            errors.iter().any(|e| e.contains("not a positive")),
            "{errors:?}"
        );

        // Weighted claim cost growing linearly with pool size.
        let mut linear = sample_claim();
        linear[1].weighted_ns = linear[0].weighted_ns * 100.0;
        errors.clear();
        check_claim_invariants(&linear, &mut errors);
        assert!(errors.iter().any(|e| e.contains("grew")), "{errors:?}");
    }

    fn sample_driver_snapshot() -> DriverSnapshot {
        DriverSnapshot {
            overhead: json_number(SAMPLE_DRIVER, "sched_overhead_us_per_task")
                .unwrap()
                .unwrap(),
            events_per_sec: json_number(SAMPLE_DRIVER, "events_per_sec")
                .unwrap()
                .unwrap(),
            claim: sample_claim(),
            migrations: json_number(SAMPLE_DRIVER, "migrations").unwrap().unwrap(),
            migration_xfer_ms: json_number(SAMPLE_DRIVER, "xfer_ms_mean").unwrap().unwrap(),
        }
    }

    #[test]
    fn migration_gates_accept_the_committed_shape() {
        let snap = sample_driver_snapshot();
        assert_eq!(snap.migrations, 6.0);
        let mut errors = Vec::new();
        check_migration_invariants(&snap, &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn migration_gates_catch_regressions() {
        // No migrations at all: the reference run stopped exercising
        // the path.
        let mut none = sample_driver_snapshot();
        none.migrations = 0.0;
        let mut errors = Vec::new();
        check_migration_invariants(&none, &mut errors);
        assert!(
            errors.iter().any(|e| e.contains("at least one chunk")),
            "{errors:?}"
        );

        // Mean transfer below the link latency: the link is no longer
        // being charged.
        let mut free = sample_driver_snapshot();
        free.migration_xfer_ms = 0.2;
        errors.clear();
        check_migration_invariants(&free, &mut errors);
        assert!(
            errors.iter().any(|e| e.contains("latency floor")),
            "{errors:?}"
        );
    }

    #[test]
    fn fresh_comparison_tolerates_small_drift_only() {
        let committed = sample_entries();
        let mut fresh = sample_entries();
        fresh[0].cold_iters = 9; // 8 -> 9: within the ±1 slack
        let mut errors = Vec::new();
        compare_iteration_counts(&committed, &fresh, 20.0, &mut errors);
        assert!(errors.is_empty(), "{errors:?}");

        fresh[1].cold_iters = 40; // 9 -> 40: a real divergence
        errors.clear();
        compare_iteration_counts(&committed, &fresh, 20.0, &mut errors);
        assert_eq!(errors.len(), 1, "{errors:?}");
    }
}
