//! A dependency-free, token-accurate Rust lexer.
//!
//! The lint passes must never false-positive on banned words that
//! appear inside comments or string literals, and must never
//! false-negative because an exotic literal (a raw string whose body
//! contains `"`, a nested block comment) derailed a hand-rolled
//! scanner. This module lexes real Rust token boundaries — line/block
//! comments (including doc comments and arbitrary nesting), plain and
//! raw strings (any `#` depth, byte variants), char/byte-char
//! literals, lifetimes and loop labels — and derives from the token
//! stream a *code view*: the source with every comment and literal
//! blanked to spaces, byte-for-byte the same length with every newline
//! preserved, so byte offsets and line numbers in the view match the
//! file on disk exactly.
//!
//! Passes match words against the code view (or walk the token stream
//! directly); either way the input they see contains only code.

/// What a lexed token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (possibly with suffix: `1_000u64`, `0x1f`, `1e5`).
    Number,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Plain or byte string literal (`"…"`, `b"…"`), escapes handled.
    Str,
    /// Raw or raw-byte string literal (`r"…"`, `r##"…"##`, `br#"…"#`).
    RawStr,
    /// Char or byte-char literal (`'a'`, `'\n'`, `'\u{1F4A9}'`, `b'x'`).
    Char,
    /// `// …` comment (`///` and `//!` doc comments included).
    LineComment,
    /// `/* … */` comment, nesting respected (doc blocks included).
    BlockComment,
    /// Any other single byte of punctuation.
    Punct,
}

impl TokenKind {
    /// Tokens that are *not code*: blanked out of the code view.
    pub fn is_noncode(self) -> bool {
        matches!(
            self,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::Char
                | TokenKind::LineComment
                | TokenKind::BlockComment
        )
    }
}

/// One token: kind plus the half-open byte span in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

pub(crate) fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream (whitespace is skipped, every other
/// byte belongs to exactly one token).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let kind = if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            TokenKind::LineComment
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenKind::BlockComment
        } else if is_ident_start(c) {
            match string_prefix(b, i) {
                Some((end, kind)) => {
                    i = end;
                    kind
                }
                None => {
                    while i < b.len() && (is_word_byte(b[i]) || b[i] >= 0x80) {
                        i += 1;
                    }
                    TokenKind::Ident
                }
            }
        } else if c.is_ascii_digit() {
            // Good enough for word-boundary purposes: `1.5` lexes as
            // Number(1) Punct(.) Number(5), which no pass cares about.
            while i < b.len() && is_word_byte(b[i]) {
                i += 1;
            }
            TokenKind::Number
        } else if c == b'"' {
            i = escaped_string_end(b, i);
            TokenKind::Str
        } else if c == b'\'' {
            let (end, kind) = char_or_lifetime(b, i);
            i = end;
            kind
        } else {
            i += 1;
            TokenKind::Punct
        };
        toks.push(Token {
            kind,
            start,
            end: i,
        });
    }
    toks
}

/// If an ident-start byte at `pos` actually opens a (raw/byte) string
/// or byte-char literal, return (one past its end, kind).
fn string_prefix(b: &[u8], pos: usize) -> Option<(usize, TokenKind)> {
    match b[pos] {
        b'r' => raw_string_end(b, pos + 1).map(|e| (e, TokenKind::RawStr)),
        b'b' => match b.get(pos + 1) {
            Some(&b'"') => Some((escaped_string_end(b, pos + 1), TokenKind::Str)),
            Some(&b'\'') => Some((escaped_char_end(b, pos + 1), TokenKind::Char)),
            Some(&b'r') => raw_string_end(b, pos + 2).map(|e| (e, TokenKind::RawStr)),
            _ => None,
        },
        _ => None,
    }
}

/// One past the end of a raw-string body whose `#`* run starts at `i`
/// (the byte after the `r`). `None` when this is not a raw string
/// (e.g. the identifier `raw` or a raw identifier `r#match`).
fn raw_string_end(b: &[u8], mut i: usize) -> Option<usize> {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let tail = &b[i + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&c| c == b'#') {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(b.len())
}

/// One past the closing quote of an escaped string opened at `open`.
fn escaped_string_end(b: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// One past the closing quote of an escaped char literal opened at
/// `open` (`'\n'`, `'\''`, `'\u{1F4A9}'`, and the byte-char variants).
fn escaped_char_end(b: &[u8], open: usize) -> usize {
    if b.get(open + 1) == Some(&b'\\') {
        let mut i = open + 3; // skip the escaped byte
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    // b'x'
    if b.get(open + 2) == Some(&b'\'') {
        return open + 3;
    }
    (open + 2).min(b.len())
}

/// Disambiguate `'` at `pos`: a char literal (`'a'`, `'\n'`, `'('`) or
/// a lifetime / loop label (`'a`, `'static`, `'outer:`).
fn char_or_lifetime(b: &[u8], pos: usize) -> (usize, TokenKind) {
    if b.get(pos + 1) == Some(&b'\\') {
        return (escaped_char_end(b, pos), TokenKind::Char);
    }
    let mut j = pos + 1;
    while j < b.len() && (is_word_byte(b[j]) || b[j] >= 0x80) {
        j += 1;
    }
    if j > pos + 1 && b.get(j) == Some(&b'\'') {
        // 'a', '字' — a char literal (covers '_' as well).
        (j + 1, TokenKind::Char)
    } else if j == pos + 1 && b.get(pos + 2) == Some(&b'\'') {
        // Punctuation char literal such as '(' or '"'.
        (pos + 3, TokenKind::Char)
    } else {
        // 'a / 'static / 'outer — lifetime or label.
        (j.max(pos + 1), TokenKind::Lifetime)
    }
}

/// Overwrite `[from, to)` with spaces, keeping newlines so line
/// numbering is unaffected.
fn blank(out: &mut [u8], from: usize, to: usize) {
    let to = to.min(out.len());
    for slot in &mut out[from..to] {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// The code view of `src`: every comment and string/char literal token
/// blanked to spaces. Same length, same newlines, so byte offsets and
/// line numbers match the file on disk.
pub fn code_view(src: &str, tokens: &[Token]) -> String {
    let mut out = src.as_bytes().to_vec();
    for t in tokens {
        if t.kind.is_noncode() {
            blank(&mut out, t.start, t.end);
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Blank every `#[cfg(test)] mod … { … }` item (tests are exempt from
/// the passes; `#[cfg(test)]` on non-module items is left alone).
/// Operates on a code view, where `#[cfg(test)]` cannot occur inside a
/// literal or comment.
pub fn strip_test_modules(code: &str) -> String {
    let b = code.as_bytes();
    let mut out = b.to_vec();
    let mut from = 0;
    while let Some(off) = code[from..].find("#[cfg(test)]") {
        let start = from + off;
        let mut j = start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes between the cfg
        // gate and the item it applies to.
        loop {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'#') && b.get(j + 1) == Some(&b'[') {
                match match_delim(b, j + 1, b'[', b']') {
                    Some(past) => j = past,
                    None => break,
                }
            } else {
                break;
            }
        }
        let gated_mod = code[j..].starts_with("mod ") || code[j..].starts_with("pub mod ");
        if gated_mod {
            if let Some(open_off) = code[j..].find('{') {
                let open = j + open_off;
                if let Some(close) = match_delim(b, open, b'{', b'}') {
                    blank(&mut out, start, close);
                    from = close;
                    continue;
                }
            }
        }
        from = start + 1;
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Offset one past the delimiter matching the opener at `open`.
pub fn match_delim(b: &[u8], open: usize, open_c: u8, close_c: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        if b[i] == open_c {
            depth += 1;
        } else if b[i] == close_c {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Byte offsets of standalone occurrences of `needle` — occurrences
/// not embedded in a larger identifier on either side.
pub fn word_occurrences(code: &str, needle: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(needle) {
        let pos = from + off;
        let end = pos + needle.len();
        let before_ok = pos == 0 || !is_word_byte(b[pos - 1]);
        let after_ok = end >= b.len() || !is_word_byte(b[end]);
        if before_ok && after_ok {
            hits.push(pos);
        }
        from = pos + 1;
    }
    hits
}

/// 1-based line number of byte offset `pos`.
pub fn line_of(code: &str, pos: usize) -> usize {
    code.as_bytes()[..pos]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Variant names (with their lines) of the enum introduced by `decl`.
pub fn enum_variants(code: &str, decl: &str) -> Option<Vec<(String, usize)>> {
    let at = code.find(decl)?;
    let open = at + code[at..].find('{')?;
    let end = match_delim(code.as_bytes(), open, b'{', b'}')?;
    let b = code.as_bytes();
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut i = open + 1;
    while i < end - 1 {
        match b[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'#' if depth == 0 => {
                // Skip a variant attribute such as `#[serde(rename = …)]`.
                i += 1;
                if b.get(i) == Some(&b'[') {
                    match match_delim(b, i, b'[', b']') {
                        Some(past) => i = past,
                        None => i += 1,
                    }
                }
            }
            c if depth == 0 && c.is_ascii_uppercase() => {
                let start = i;
                while i < end && is_word_byte(b[i]) {
                    i += 1;
                }
                variants.push((code[start..i].to_string(), line_of(code, start)));
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// The brace-delimited body of the first function whose text contains
/// `sig`, plus the body's byte offset in `code`.
pub fn fn_body<'a>(code: &'a str, sig: &str) -> Option<(&'a str, usize)> {
    let at = code.find(sig)?;
    let open = at + code[at..].find('{')?;
    let end = match_delim(code.as_bytes(), open, b'{', b'}')?;
    Some((&code[open..end], open))
}

/// Byte offset (within `body`) of a wildcard `_ =>` match arm, if any.
pub fn wildcard_arm(body: &str) -> Option<usize> {
    let b = body.as_bytes();
    let mut from = 0;
    while let Some(off) = body[from..].find("=>") {
        let pos = from + off;
        let mut k = pos;
        while k > 0 && b[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k > 0 && b[k - 1] == b'_' && (k == 1 || !is_word_byte(b[k - 2])) {
            return Some(k - 1);
        }
        from = pos + 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(src: &str) -> String {
        code_view(src, &lex(src))
    }

    #[test]
    fn strips_line_and_block_comments() {
        let code = "let x = 1; // unsafe here\n/* parking_lot */ let y = 2;";
        let s = view(code);
        assert!(!s.contains("unsafe"));
        assert!(!s.contains("parking_lot"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.len(), code.len());
    }

    #[test]
    fn nested_block_comments_do_not_leak_their_tail() {
        let code = "/* outer /* inner unsafe */ still comment HashMap */ let z = 3;";
        let s = view(code);
        assert!(!s.contains("unsafe"), "{s}");
        assert!(!s.contains("HashMap"), "{s}");
        assert!(s.contains("let z = 3;"));
    }

    #[test]
    fn doc_comments_are_noncode() {
        let code =
            "/// uses `Instant::now` internally\n//! and HashMap\n/** SystemTime */\nfn f() {}";
        let s = view(code);
        for w in ["Instant", "HashMap", "SystemTime"] {
            assert!(word_occurrences(&s, w).is_empty(), "{w} leaked: {s}");
        }
        assert!(s.contains("fn f() {}"));
    }

    #[test]
    fn line_comment_markers_inside_strings_do_not_start_comments() {
        let code = "let url = \"https://example.org\"; let x = unsafe_name();";
        let s = view(code);
        assert!(!s.contains("example"));
        // The code *after* the string survives: the `//` inside the
        // literal must not eat the rest of the line.
        assert!(s.contains("let x = unsafe_name();"), "{s}");
        assert!(word_occurrences(&s, "unsafe").is_empty());
    }

    #[test]
    fn raw_strings_containing_quotes_and_keywords_are_blanked() {
        let code = r####"let a = r"unsafe"; let b = r#"say "unsafe" twice"#; let c = br##"std::sync"##; done();"####;
        let s = view(code);
        assert!(word_occurrences(&s, "unsafe").is_empty(), "{s}");
        assert!(!s.contains("std::sync"), "{s}");
        assert!(s.contains("done();"), "{s}");
    }

    #[test]
    fn strips_literals_but_keeps_lifetimes() {
        let code =
            r##"fn f<'a>(s: &'a str) { let c = '"'; let t = "unsafe"; let r = r#"std::sync"#; }"##;
        let s = view(code);
        assert!(!s.contains("unsafe"));
        assert!(!s.contains("std::sync"));
        assert!(s.contains("fn f<'a>(s: &'a str)"));
    }

    #[test]
    fn escaped_char_literals_do_not_derail_the_scanner() {
        let code = "let q = '\\''; let n = '\\n'; unsafe {}";
        let s = view(code);
        let hits = word_occurrences(&s, "unsafe");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn char_literal_underscore_vs_wildcard_lifetime() {
        let code = "let w = '_'; let r: &'_ str = s; loop_label: loop { break loop_label; }";
        let s = view(code);
        assert!(!s.contains("'_'"), "char literal '_' must be blanked");
        assert!(s.contains("&'_ str"), "lifetime '_ must survive: {s}");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let code = "let a = b\"unsafe bytes\"; let c = b'u'; let d = b'\\''; tail();";
        let s = view(code);
        assert!(word_occurrences(&s, "unsafe").is_empty(), "{s}");
        assert!(s.contains("tail();"), "{s}");
    }

    #[test]
    fn identifiers_starting_with_r_or_b_are_not_strings() {
        let code = "let result = balance(rate, b, r); fn brand() {}";
        let s = view(code);
        assert_eq!(s, code, "no literal here; nothing to blank");
    }

    #[test]
    fn blanks_test_modules_only() {
        let code =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { unsafe {} }\n}\nfn after() {}\n";
        let s = strip_test_modules(code);
        assert!(!s.contains("unsafe"));
        assert!(s.contains("fn real()"));
        assert!(s.contains("fn after()"));
        let after = s.find("fn after").expect("kept");
        assert_eq!(line_of(&s, after), 6, "blanking must preserve line numbers");
    }

    #[test]
    fn word_occurrences_respects_identifier_boundaries() {
        let code = "fn pass_unsafe() {} unsafe fn g() {}";
        let hits = word_occurrences(code, "unsafe");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn finds_enum_variants_and_wildcard_arms() {
        let code = "pub enum EventKind { A { x: usize }, B(Option<u8>), LongName }\n\
                    fn from_events() { match k { EventKind::A { .. } => {} _ => {} } }";
        let variants = enum_variants(code, "pub enum EventKind").expect("enum");
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "LongName"]);
        let (body, _) = fn_body(code, "fn from_events").expect("body");
        assert!(wildcard_arm(body).is_some());
        assert!(wildcard_arm("match k { EventKind::A { .. } => {} }").is_none());
    }

    #[test]
    fn token_spans_tile_the_nonwhitespace_source() {
        let src = "fn f(x: u64) -> u64 { x + 1 } // tail\n\"s\"";
        let toks = lex(src);
        let b = src.as_bytes();
        let mut covered = vec![false; src.len()];
        for t in &toks {
            assert!(t.start < t.end, "{t:?}");
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                assert!(!*c, "overlapping tokens");
                *c = true;
            }
        }
        // Every non-whitespace byte belongs to exactly one token. (The
        // converse doesn't hold: comment and string tokens span their
        // interior whitespace.)
        for (i, c) in covered.iter().enumerate() {
            assert!(
                *c || b[i].is_ascii_whitespace(),
                "byte {i} ({:?}) uncovered",
                b[i] as char
            );
        }
    }

    // ---- property tests: the code view never leaks literal/comment
    // content, so no pass (doc-consistency included) can be tripped by
    // words that exist only inside strings or comments. ----

    /// Words the generated non-code fragments plant; none may survive
    /// into the code view.
    const PLANTED: &[&str] = &[
        "unsafe",
        "HashMap",
        "Instant",
        "SystemTime",
        "thread_rng",
        "std::sync",
    ];

    /// Self-contained non-code fragments, each containing planted words.
    const NONCODE_FRAGMENTS: &[&str] = &[
        "// unsafe HashMap Instant\n",
        "/// doc: SystemTime and thread_rng\n",
        "//! inner doc: EventKind::Phantom unsafe\n",
        "/* block unsafe /* nested HashMap */ tail Instant */",
        "let s = \"unsafe // HashMap /* Instant */\";",
        "let r = r#\"raw \" quote unsafe SystemTime\"#;",
        "let rb = br##\"std::sync thread_rng \"# still\"##;",
        "let c = '\\''; let d = '\"';",
        "let u = \"esc \\\" unsafe\";",
    ];

    /// Clean code fragments (no planted words).
    const CODE_FRAGMENTS: &[&str] = &[
        "fn f(x: u64) -> u64 { x + 1 }",
        "let v: Vec<u8> = Vec::new();",
        "m.record(EventKind::RunStart);",
        "for i in 0..n { acc += table[i]; }",
        "impl<'a> Foo<'a> { fn get(&self) -> &'a str { self.s } }",
    ];

    proptest::proptest! {
        #[test]
        fn code_view_never_leaks_noncode_content(
            picks in proptest::collection::vec((0usize..2, 0usize..16), 1..24)
        ) {
            let mut src = String::new();
            for (family, idx) in picks {
                let frag = if family == 0 {
                    CODE_FRAGMENTS[idx % CODE_FRAGMENTS.len()]
                } else {
                    NONCODE_FRAGMENTS[idx % NONCODE_FRAGMENTS.len()]
                };
                src.push_str(frag);
                src.push('\n');
            }
            let toks = lex(&src);
            let s = code_view(&src, &toks);
            // Shape: same byte length, identical newline positions —
            // reported line numbers always match the file on disk.
            proptest::prop_assert_eq!(s.len(), src.len());
            for (a, b) in src.bytes().zip(s.bytes()) {
                proptest::prop_assert_eq!(a == b'\n', b == b'\n');
            }
            // No planted word survives into the code view: a pass
            // scanning the view can never rediscover a violation that
            // exists only in a comment or literal (the pass-8 / pass-9
            // false-positive class this lexer exists to kill).
            for w in PLANTED {
                let hits = word_occurrences(&s, w);
                proptest::prop_assert!(
                    hits.is_empty(),
                    "{} leaked at {:?} in:\n{}",
                    w,
                    hits,
                    s
                );
            }
            // And the schema-shaped phantom tag stays invisible to a
            // doc-consistency-style scan.
            proptest::prop_assert!(!s.contains("EventKind::Phantom"));
        }
    }
}
