//! Repo-local automation (`cargo xtask <command>`), dependency-free by
//! design so it builds anywhere the workspace does.
//!
//! * `lint` — the determinism auditor: ten token-accurate static
//!   passes over the workspace sources (policy table in
//!   `docs/SOUNDNESS.md`). Sources are lexed (`lexer.rs`) into a code
//!   view with comments, string/char literals, and `#[cfg(test)]`
//!   modules blanked in place, so a keyword inside a doc comment or a
//!   raw string can never produce a false positive, and line numbers
//!   always match the file on disk. Findings pass through per-pass
//!   allowlists and the ratcheting baseline (`report.rs`), and render
//!   as human text or SARIF 2.1.0 for GitHub code scanning.
//! * `bench-check` — machine-independent gates on the committed
//!   performance snapshots (`bench.rs`, `docs/PERFORMANCE.md`).

mod bench;
mod lexer;
mod passes;
mod report;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use passes::{registry, Context, Source};
use report::{default_baseline_path, sarif, timing_line, Baseline, PassTiming, Violation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&root, &args[1..]),
        Some("bench-check") => bench::bench_check(&root, &args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <command>\n\n\
                 commands:\n  \
                 lint [--format text|sarif] [--out PATH] [--baseline PATH] [--write-baseline]\n      \
                 run the ten soundness passes (docs/SOUNDNESS.md)\n  \
                 bench-check [--tolerance PCT] [--fresh DIR]\n      \
                 validate the committed performance snapshots (docs/PERFORMANCE.md)"
            );
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

enum Format {
    Text,
    Sarif,
}

fn lint(root: &Path, args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut out_path: Option<PathBuf> = None;
    let mut baseline_path = default_baseline_path(root);
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("lint: --format must be `text` or `sarif`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lint: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = PathBuf::from(p),
                None => {
                    eprintln!("lint: --baseline needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let sources = match load_sources(root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = Context {
        root,
        sources: &sources,
    };

    let passes = registry();
    let mut violations: Vec<Violation> = Vec::new();
    let mut timings: Vec<PassTiming> = Vec::new();
    for pass in &passes {
        let t0 = Instant::now();
        pass.run(&ctx, &mut violations);
        timings.push(PassTiming {
            name: pass.name(),
            millis: t0.elapsed().as_secs_f64() * 1e3,
        });
    }
    violations.sort_by(|a, b| (a.pass, &a.file, a.line).cmp(&(b.pass, &b.file, b.line)));

    if write_baseline {
        let text = Baseline::render(&violations);
        if let Err(e) = fs::write(&baseline_path, &text) {
            eprintln!("lint: writing {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: wrote baseline {} ({} finding(s) accepted)",
            baseline_path.display(),
            violations.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (reported, suppressed) = baseline.apply(violations);

    let rules: Vec<(&'static str, &'static str)> =
        passes.iter().map(|p| (p.name(), p.summary())).collect();
    match format {
        Format::Sarif => {
            let doc = sarif(&rules, &reported);
            match &out_path {
                Some(p) => {
                    if let Err(e) = fs::write(p, &doc) {
                        eprintln!("lint: writing {}: {e}", p.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "xtask lint: wrote SARIF {} ({} result(s))",
                        p.display(),
                        reported.len()
                    );
                }
                None => print!("{doc}"),
            }
        }
        Format::Text => {
            for v in &reported {
                println!("{}:{}: [{}] {}", v.file, v.line, v.pass, v.msg);
            }
        }
    }
    eprintln!("{}", timing_line(&timings));
    if reported.is_empty() {
        eprintln!(
            "xtask lint: OK ({} files, {} passes, {} baselined finding(s) suppressed)",
            sources.len(),
            passes.len(),
            suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} violation(s) ({} baselined suppressed)",
            reported.len(),
            suppressed
        );
        ExitCode::FAILURE
    }
}

/// Load every `.rs` file under the workspace crates' `src` trees,
/// lexed into its code view (comments, string/char literals, and
/// `#[cfg(test)]` modules blanked in place).
fn load_sources(root: &Path) -> Result<Vec<Source>, String> {
    let crates_dir = root.join("crates");
    let mut files: Vec<PathBuf> = Vec::new();
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let raw = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let tokens = lexer::lex(&raw);
        let code = lexer::strip_test_modules(&lexer::code_view(&raw, &tokens));
        sources.push(Source { rel, code });
    }
    Ok(sources)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
