//! Workspace static-analysis tasks.
//!
//! `cargo xtask lint` runs eight soundness passes over the workspace
//! sources (policy rationale in `docs/SOUNDNESS.md`):
//!
//! 1. **unsafe-allowlist** — `unsafe` may appear only in the audited
//!    files listed in [`UNSAFE_ALLOWLIST`]; everything else, app
//!    kernels in particular, must stay safe Rust.
//! 2. **sync-shim** — inside `crates/runtime/src`, concurrency
//!    primitives must come from `crate::sync` (the loom-swappable
//!    shim), never directly from `std::sync` or `parking_lot`.
//! 3. **event-coverage** — every `EventKind` variant is constructed
//!    somewhere outside `events.rs`, is matched explicitly in
//!    `EventCounters::from_events`, and that match has no `_ =>`
//!    wildcard (adding a variant must force a counters decision).
//! 4. **lossy-cast** — no `as` casts to narrower numeric types in
//!    `plb-numerics`/`plb-ipm` outside the audited `cast` module.
//! 5. **must-use** — result-carrying types stay `#[must_use]`.
//! 6. **fault-divergence** — fault-response decision logic (retry,
//!    backoff, quarantine, probation, re-credit) lives only in the
//!    scheduling core and the state machines it drives; engine backends
//!    must not grow their own copies (`docs/ARCHITECTURE.md`).
//! 7. **fs-confinement** — filesystem I/O in `plb-runtime` lives only
//!    in the checkpoint module ([`FS_IO_HOME`]), whose atomic-write
//!    protocol is what makes snapshots crash-safe; an engine or policy
//!    opening files on its own would bypass those guarantees.
//! 8. **doc-consistency** — the prose tracks the code: every
//!    `EventKind` variant's snake_case schema name is documented in
//!    `docs/OBSERVABILITY.md`, and `docs/PERFORMANCE.md` exists and is
//!    linked from `README.md` and `docs/ARCHITECTURE.md`.
//!
//! `cargo xtask bench-check [--tolerance PCT] [--fresh DIR]` validates
//! the committed performance snapshots (`BENCH_solver.json`,
//! `BENCH_driver.json`; written by `cargo run -p plb-bench --bin
//! perfbench --release`). The gates are machine-independent — shape,
//! iteration-count, and *ratio* invariants (structured vs dense
//! speedup, O(n) growth), never absolute microseconds — so the check
//! passes on any host. With `--fresh DIR`, freshly measured snapshots
//! in DIR are compared against the committed ones: iteration counts
//! (deterministic, machine-independent) must agree within the
//! tolerance. See `docs/PERFORMANCE.md`.
//!
//! The scanner is deliberately token-level rather than a real parser:
//! it blanks comments, string/char literals, and `#[cfg(test)]`
//! modules in place (preserving byte offsets, so reported line numbers
//! match the file on disk), then matches words. That keeps this binary
//! dependency-free, which is what lets it build and run as a blocking
//! CI step without registry access.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain `unsafe`. Each entry carries SAFETY
/// comments on every block and is exercised under Miri in CI.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/runtime/src/data.rs"];

/// The one runtime module allowed to name `std::sync` / `parking_lot`.
const SYNC_SHIM: &str = "crates/runtime/src/sync.rs";

/// The vocabulary of fault-response decisions: config knobs, driver
/// state, and state-machine transitions. Any of these appearing in a
/// runtime file outside [`fault_response_home`] means a backend is
/// re-implementing core policy.
const FAULT_RESPONSE_TOKENS: &[&str] = &[
    "max_retries",
    "backoff_for",
    "quarantine_after",
    "consec_failures",
    "recredit",
    "reclaim",
    "take_range",
    "probation_s",
    "quarantined_until",
    "pending_lost",
    "try_quarantine",
    "try_restore",
    "mark_lost",
];

/// Files where fault-response logic legitimately lives: the scheduling
/// core (decisions), the fault config (knobs), the protocol state
/// machines (transitions), and the sync shim they are built on.
fn fault_response_home(rel: &str) -> bool {
    rel.starts_with("crates/runtime/src/core/")
        || rel == "crates/runtime/src/fault.rs"
        || rel == "crates/runtime/src/protocol.rs"
        || rel == SYNC_SHIM
}

/// The one runtime module allowed to perform filesystem I/O: the
/// durability layer, whose tmp-write + fsync + rename protocol is
/// audited for crash atomicity (`docs/FAULT_TOLERANCE.md`).
const FS_IO_HOME: &str = "crates/runtime/src/checkpoint.rs";

/// Tokens that betray direct filesystem access.
const FS_IO_TOKENS: &[&str] = &["std::fs", "File", "OpenOptions"];

/// Checked-conversion module exempt from the lossy-cast pass (its
/// whole point is to fence the raw casts behind guarded APIs).
const CAST_MODULE: &str = "crates/numerics/src/cast.rs";

/// Where the event schema lives.
const EVENTS_MODULE: &str = "crates/runtime/src/events.rs";

/// Result-carrying types that must stay `#[must_use]`.
const MUST_USE_TYPES: &[(&str, &str)] = &[
    ("crates/runtime/src/metrics.rs", "RunReport"),
    ("crates/runtime/src/metrics.rs", "PuReport"),
    ("crates/core/src/selection.rs", "SelectionResult"),
    ("crates/ipm/src/solver.rs", "Solution"),
    ("crates/numerics/src/curvefit.rs", "FittedCurve"),
];

/// Cast targets that can drop bits or change sign coming from the
/// `f64`/`u64` domains the numeric crates work in.
const NARROWING: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") | None => lint(),
        Some("bench-check") => bench_check(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}` (supported: lint, bench-check)");
            ExitCode::FAILURE
        }
    }
}

struct Violation {
    file: String,
    line: usize,
    pass: &'static str,
    msg: String,
}

struct Source {
    /// Workspace-relative path with `/` separators.
    rel: String,
    /// Comment-, literal-, and test-module-stripped text; byte offsets
    /// (and therefore line numbers) match the file on disk.
    code: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let sources = load_sources(&root);
    if sources.is_empty() {
        eprintln!("xtask lint: no Rust sources under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut violations = Vec::new();
    pass_unsafe_allowlist(&sources, &mut violations);
    pass_sync_shim(&sources, &mut violations);
    pass_event_coverage(&sources, &mut violations);
    pass_lossy_casts(&sources, &mut violations);
    pass_must_use(&sources, &mut violations);
    pass_fault_divergence(&sources, &mut violations);
    pass_fs_confinement(&sources, &mut violations);
    pass_doc_consistency(&root, &sources, &mut violations);
    if violations.is_empty() {
        println!("xtask lint: OK ({} files, 8 passes)", sources.len());
        ExitCode::SUCCESS
    } else {
        violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for v in &violations {
            eprintln!("{}:{}: [{}] {}", v.file, v.line, v.pass, v.msg);
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .to_path_buf()
}

fn load_sources(root: &Path) -> Vec<Source> {
    let mut dirs = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        dirs.push(root_src);
    }
    let mut files = Vec::new();
    for dir in &dirs {
        collect_rs(dir, &mut files);
    }
    files.sort();
    files
        .into_iter()
        .filter_map(|path| {
            let raw = fs::read_to_string(&path).ok()?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            Some(Source {
                rel,
                code: strip_test_modules(&strip_noncode(&raw)),
            })
        })
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

fn pass_unsafe_allowlist(sources: &[Source], out: &mut Vec<Violation>) {
    for s in sources {
        if UNSAFE_ALLOWLIST.contains(&s.rel.as_str()) {
            continue;
        }
        for pos in word_occurrences(&s.code, "unsafe") {
            out.push(Violation {
                file: s.rel.clone(),
                line: line_of(&s.code, pos),
                pass: "unsafe-allowlist",
                msg: format!(
                    "`unsafe` outside the audited allowlist ({}); express this \
                     through a safe abstraction such as `plb_runtime::DisjointOutput`",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        }
    }
}

fn pass_sync_shim(sources: &[Source], out: &mut Vec<Violation>) {
    for s in sources {
        if !s.rel.starts_with("crates/runtime/src/") || s.rel == SYNC_SHIM {
            continue;
        }
        for banned in ["std::sync", "parking_lot"] {
            for pos in word_occurrences(&s.code, banned) {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: line_of(&s.code, pos),
                    pass: "sync-shim",
                    msg: format!(
                        "direct `{banned}` use in plb-runtime; import the primitive \
                         from `crate::sync` so the loom models stay faithful"
                    ),
                });
            }
        }
    }
}

fn pass_event_coverage(sources: &[Source], out: &mut Vec<Violation>) {
    let Some(events) = sources.iter().find(|s| s.rel == EVENTS_MODULE) else {
        out.push(Violation {
            file: EVENTS_MODULE.to_string(),
            line: 1,
            pass: "event-coverage",
            msg: "events module not found".to_string(),
        });
        return;
    };
    let Some(variants) = enum_variants(&events.code, "pub enum EventKind") else {
        out.push(Violation {
            file: events.rel.clone(),
            line: 1,
            pass: "event-coverage",
            msg: "could not locate `pub enum EventKind`".to_string(),
        });
        return;
    };
    let from_events = fn_body(&events.code, "fn from_events");
    if from_events.is_none() {
        out.push(Violation {
            file: events.rel.clone(),
            line: 1,
            pass: "event-coverage",
            msg: "could not locate `EventCounters::from_events`".to_string(),
        });
    }
    for (name, line) in &variants {
        let needle = format!("EventKind::{name}");
        let constructed = sources
            .iter()
            .any(|s| s.rel != EVENTS_MODULE && !word_occurrences(&s.code, &needle).is_empty());
        if !constructed {
            out.push(Violation {
                file: events.rel.clone(),
                line: *line,
                pass: "event-coverage",
                msg: format!(
                    "variant `{name}` is never constructed outside events.rs — \
                     dead schema entry or missing emission site"
                ),
            });
        }
        if let Some((body, _)) = from_events {
            if !body.contains(&needle) {
                out.push(Violation {
                    file: events.rel.clone(),
                    line: *line,
                    pass: "event-coverage",
                    msg: format!(
                        "`EventCounters::from_events` does not match \
                         `EventKind::{name}` explicitly"
                    ),
                });
            }
        }
    }
    if let Some((body, body_pos)) = from_events {
        if let Some(off) = wildcard_arm(body) {
            out.push(Violation {
                file: events.rel.clone(),
                line: line_of(&events.code, body_pos + off),
                pass: "event-coverage",
                msg: "wildcard `_ =>` arm in `EventCounters::from_events`; every \
                      variant must make an explicit counting decision"
                    .to_string(),
            });
        }
    }
}

fn pass_lossy_casts(sources: &[Source], out: &mut Vec<Violation>) {
    for s in sources {
        let scoped =
            s.rel.starts_with("crates/numerics/src/") || s.rel.starts_with("crates/ipm/src/");
        if !scoped || s.rel == CAST_MODULE {
            continue;
        }
        let b = s.code.as_bytes();
        for pos in word_occurrences(&s.code, "as") {
            let mut j = pos + 2;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            let start = j;
            while j < b.len() && is_word_byte(b[j]) {
                j += 1;
            }
            let target = &s.code[start..j];
            if NARROWING.contains(&target) {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: line_of(&s.code, pos),
                    pass: "lossy-cast",
                    msg: format!(
                        "`as {target}` can silently truncate, wrap, or change sign; \
                         use the checked `plb_numerics::cast` helpers or `TryFrom`"
                    ),
                });
            }
        }
    }
}

fn pass_must_use(sources: &[Source], out: &mut Vec<Violation>) {
    for (file, ty) in MUST_USE_TYPES {
        let Some(s) = sources.iter().find(|s| s.rel == *file) else {
            out.push(Violation {
                file: (*file).to_string(),
                line: 1,
                pass: "must-use",
                msg: format!("expected `{ty}` to be declared here, but the file is missing"),
            });
            continue;
        };
        let decl = format!("pub struct {ty}");
        let Some(pos) = word_occurrences(&s.code, &decl).into_iter().next() else {
            out.push(Violation {
                file: s.rel.clone(),
                line: 1,
                pass: "must-use",
                msg: format!("declaration `{decl}` not found"),
            });
            continue;
        };
        // The attribute must sit between the end of the previous item
        // and the declaration itself.
        let window_start = s.code[..pos]
            .rfind(|c| c == '}' || c == ';')
            .map(|p| p + 1)
            .unwrap_or(0);
        if !s.code[window_start..pos].contains("#[must_use") {
            out.push(Violation {
                file: s.rel.clone(),
                line: line_of(&s.code, pos),
                pass: "must-use",
                msg: format!(
                    "`{ty}` carries run results; annotate it `#[must_use]` so \
                     silently dropping one is a compile-time warning"
                ),
            });
        }
    }
}

fn pass_fault_divergence(sources: &[Source], out: &mut Vec<Violation>) {
    for s in sources {
        if !s.rel.starts_with("crates/runtime/src/") || fault_response_home(&s.rel) {
            continue;
        }
        for token in FAULT_RESPONSE_TOKENS {
            for pos in word_occurrences(&s.code, token) {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: line_of(&s.code, pos),
                    pass: "fault-divergence",
                    msg: format!(
                        "fault-response token `{token}` outside the scheduling core; \
                         retry/backoff/quarantine/re-credit decisions belong to \
                         `crates/runtime/src/core` (docs/ARCHITECTURE.md), not to \
                         engine backends"
                    ),
                });
            }
        }
    }
}

fn pass_fs_confinement(sources: &[Source], out: &mut Vec<Violation>) {
    for s in sources {
        if !s.rel.starts_with("crates/runtime/src/") || s.rel == FS_IO_HOME {
            continue;
        }
        for token in FS_IO_TOKENS {
            for pos in word_occurrences(&s.code, token) {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: line_of(&s.code, pos),
                    pass: "fs-confinement",
                    msg: format!(
                        "filesystem access `{token}` outside `{FS_IO_HOME}`; durability \
                         I/O must go through the checkpoint module's atomic-write \
                         protocol (docs/FAULT_TOLERANCE.md)"
                    ),
                });
            }
        }
    }
}

/// CamelCase → snake_case (the `EventKind` serde tag convention).
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn pass_doc_consistency(root: &Path, sources: &[Source], out: &mut Vec<Violation>) {
    // Every EventKind variant's schema name must be documented.
    let observability = fs::read_to_string(root.join("docs/OBSERVABILITY.md")).unwrap_or_default();
    if observability.is_empty() {
        out.push(Violation {
            file: "docs/OBSERVABILITY.md".to_string(),
            line: 1,
            pass: "doc-consistency",
            msg: "missing or unreadable (the event-schema reference)".to_string(),
        });
    } else if let Some(events) = sources.iter().find(|s| s.rel == EVENTS_MODULE) {
        if let Some(variants) = enum_variants(&events.code, "pub enum EventKind") {
            for (name, line) in &variants {
                let tag = snake_case(name);
                if !observability.contains(&tag) {
                    out.push(Violation {
                        file: events.rel.clone(),
                        line: *line,
                        pass: "doc-consistency",
                        msg: format!(
                            "event kind `{tag}` is not documented in docs/OBSERVABILITY.md \
                             (the schema reference must cover every variant)"
                        ),
                    });
                }
            }
        }
    }
    // The performance book must exist and be reachable.
    if !root.join("docs/PERFORMANCE.md").is_file() {
        out.push(Violation {
            file: "docs/PERFORMANCE.md".to_string(),
            line: 1,
            pass: "doc-consistency",
            msg: "missing (the cost-model and bench-methodology reference)".to_string(),
        });
    } else {
        for linker in ["README.md", "docs/ARCHITECTURE.md"] {
            let text = fs::read_to_string(root.join(linker)).unwrap_or_default();
            if !text.contains("PERFORMANCE.md") {
                out.push(Violation {
                    file: linker.to_string(),
                    line: 1,
                    pass: "doc-consistency",
                    msg: "does not link docs/PERFORMANCE.md".to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// bench-check
// ---------------------------------------------------------------------------

/// One parsed `BENCH_solver.json` row.
#[derive(Debug, Clone, PartialEq)]
struct BenchEntry {
    n_pus: u64,
    structured_us: f64,
    dense_us: Option<f64>,
    cold_iters: u64,
    warm_iters: u64,
}

/// Sizes every committed solver snapshot must cover.
const REQUIRED_SIZES: &[u64] = &[10, 100, 1000, 10000];

/// Minimum structured-vs-dense speedup at n = 1000 (the tentpole's
/// acceptance bar; the measured ratio is far larger).
const MIN_SPEEDUP_AT_1000: f64 = 10.0;

/// Growth cap: structured solve time may grow at most this factor per
/// 10× size step (O(n) per iteration with generous headroom for
/// iteration-count and cache effects).
const MAX_GROWTH_PER_DECADE: f64 = 30.0;

fn bench_check(args: &[String]) -> ExitCode {
    let mut tolerance = 20.0f64;
    let mut fresh_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tolerance = v,
                _ => {
                    eprintln!("bench-check: --tolerance needs a non-negative number");
                    return ExitCode::FAILURE;
                }
            },
            "--fresh" => match it.next() {
                Some(v) => fresh_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("bench-check: --fresh needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench-check: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let mut errors = Vec::new();
    let committed = match load_solver_snapshot(&root.join("BENCH_solver.json")) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench-check: BENCH_solver.json: {e}");
            return ExitCode::FAILURE;
        }
    };
    check_solver_invariants(&committed, &mut errors);
    match load_driver_snapshot(&root.join("BENCH_driver.json")) {
        Ok((overhead, events_per_sec)) => {
            if !(overhead.is_finite() && overhead > 0.0) {
                errors.push(format!(
                    "driver: sched_overhead_us_per_task = {overhead} is not a positive number"
                ));
            }
            if !(events_per_sec.is_finite() && events_per_sec >= 1e5) {
                errors.push(format!(
                    "driver: events_per_sec = {events_per_sec:.0} below the 1e5 sanity floor"
                ));
            }
        }
        Err(e) => errors.push(format!("BENCH_driver.json: {e}")),
    }

    if let Some(dir) = fresh_dir {
        match load_solver_snapshot(&dir.join("BENCH_solver.json")) {
            Ok(fresh) => compare_iteration_counts(&committed, &fresh, tolerance, &mut errors),
            Err(e) => errors.push(format!("fresh snapshot {}: {e}", dir.display())),
        }
    }

    if errors.is_empty() {
        println!(
            "xtask bench-check: OK ({} solver entries, tolerance {tolerance}%)",
            committed.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("bench-check: {e}");
        }
        eprintln!("xtask bench-check: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

/// Shape + ratio gates on a committed solver snapshot. All gates are
/// machine-independent: they constrain ratios and iteration counts,
/// never absolute times.
fn check_solver_invariants(entries: &[BenchEntry], errors: &mut Vec<String>) {
    for &size in REQUIRED_SIZES {
        match entries.iter().find(|e| e.n_pus == size) {
            None => errors.push(format!("solver: no entry at n_pus = {size}")),
            Some(e) => {
                if !(e.structured_us.is_finite() && e.structured_us > 0.0) {
                    errors.push(format!(
                        "solver: structured_us at n = {size} is not a positive number"
                    ));
                }
                if e.warm_iters > e.cold_iters {
                    errors.push(format!(
                        "solver: warm start at n = {size} took {} iterations vs {} cold — \
                         warm must never be slower",
                        e.warm_iters, e.cold_iters
                    ));
                }
            }
        }
    }
    if let Some(e) = entries.iter().find(|e| e.n_pus == 1000) {
        match e.dense_us {
            Some(d) if d.is_finite() && d > 0.0 => {
                let speedup = d / e.structured_us;
                if speedup < MIN_SPEEDUP_AT_1000 {
                    errors.push(format!(
                        "solver: structured path is only {speedup:.1}x faster than dense at \
                         n = 1000 (required >= {MIN_SPEEDUP_AT_1000}x)"
                    ));
                }
            }
            _ => errors.push("solver: dense_us missing at n = 1000 (the oracle size)".to_string()),
        }
    }
    let mut sorted: Vec<&BenchEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| e.n_pus);
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.n_pus == a.n_pus * 10 && b.structured_us > a.structured_us * MAX_GROWTH_PER_DECADE {
            errors.push(format!(
                "solver: structured time grew {:.1}x from n = {} to n = {} \
                 (cap {MAX_GROWTH_PER_DECADE}x per decade — the O(n) path has regressed)",
                b.structured_us / a.structured_us,
                a.n_pus,
                b.n_pus
            ));
        }
    }
}

/// Iteration counts are deterministic per problem, so a fresh run on any
/// machine must reproduce the committed ones within the tolerance.
fn compare_iteration_counts(
    committed: &[BenchEntry],
    fresh: &[BenchEntry],
    tolerance_pct: f64,
    errors: &mut Vec<String>,
) {
    let within = |a: u64, b: u64| -> bool {
        let (a, b) = (a as f64, b as f64);
        // Small absolute slack covers tiny counts (2 vs 3 iterations is
        // noise, not a regression).
        (a - b).abs() <= (a.max(b) * tolerance_pct / 100.0).max(1.0)
    };
    for f in fresh {
        let Some(c) = committed.iter().find(|c| c.n_pus == f.n_pus) else {
            continue;
        };
        if !within(c.cold_iters, f.cold_iters) {
            errors.push(format!(
                "fresh: cold_iters at n = {} is {} vs committed {} (tolerance {tolerance_pct}%)",
                f.n_pus, f.cold_iters, c.cold_iters
            ));
        }
        if !within(c.warm_iters, f.warm_iters) {
            errors.push(format!(
                "fresh: warm_iters at n = {} is {} vs committed {} (tolerance {tolerance_pct}%)",
                f.n_pus, f.warm_iters, c.warm_iters
            ));
        }
        if f.warm_iters > f.cold_iters {
            errors.push(format!(
                "fresh: warm start at n = {} took {} iterations vs {} cold",
                f.n_pus, f.warm_iters, f.cold_iters
            ));
        }
    }
}

// --- minimal JSON field extraction (keeps xtask dependency-free) -----------

/// Value of `"key": <number|null>` inside `obj`, or an error. `None`
/// means an explicit `null`.
fn json_number(obj: &str, key: &str) -> Result<Option<f64>, String> {
    let needle = format!("\"{key}\"");
    let at = obj
        .find(&needle)
        .ok_or_else(|| format!("field `{key}` not found"))?;
    let rest = obj[at + needle.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("field `{key}` is not `key: value`"))?
        .trim_start();
    if rest.starts_with("null") {
        return Ok(None);
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map(Some)
        .map_err(|e| format!("field `{key}`: {e}"))
}

/// Split the `"entries": [ ... ]` array into its `{...}` object slices.
fn json_entry_objects(text: &str) -> Result<Vec<&str>, String> {
    let at = text
        .find("\"entries\"")
        .ok_or("no `entries` array".to_string())?;
    let open = at + text[at..].find('[').ok_or("no `[` after `entries`")?;
    let close = open + text[open..].find(']').ok_or("no `]` closing `entries`")?;
    let body = &text[open + 1..close];
    let mut objects = Vec::new();
    let mut rest = body;
    while let Some(s) = rest.find('{') {
        let e = rest[s..]
            .find('}')
            .ok_or("unterminated entry object".to_string())?;
        objects.push(&rest[s..s + e + 1]);
        rest = &rest[s + e + 1..];
    }
    Ok(objects)
}

fn load_solver_snapshot(path: &Path) -> Result<Vec<BenchEntry>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = json_entry_objects(&text)?;
    let mut out = Vec::with_capacity(entries.len());
    for obj in entries {
        let req = |key: &str| -> Result<f64, String> {
            json_number(obj, key)?.ok_or_else(|| format!("field `{key}` is null"))
        };
        out.push(BenchEntry {
            n_pus: req("n_pus")? as u64,
            structured_us: req("structured_us")?,
            dense_us: json_number(obj, "dense_us")?,
            cold_iters: req("cold_iters")? as u64,
            warm_iters: req("warm_iters")? as u64,
        });
    }
    if out.is_empty() {
        return Err("snapshot has no entries".to_string());
    }
    Ok(out)
}

fn load_driver_snapshot(path: &Path) -> Result<(f64, f64), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let overhead = json_number(&text, "sched_overhead_us_per_task")?
        .ok_or("sched_overhead_us_per_task is null")?;
    let events = json_number(&text, "events_per_sec")?.ok_or("events_per_sec is null")?;
    Ok((overhead, events))
}

// ---------------------------------------------------------------------------
// Token-level scanner
// ---------------------------------------------------------------------------

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn prev_is_word(b: &[u8], i: usize) -> bool {
    i > 0 && (is_word_byte(b[i - 1]) || b[i - 1] >= 0x80)
}

/// Overwrite `[from, to)` with spaces, keeping newlines so line
/// numbering is unaffected.
fn blank(out: &mut [u8], from: usize, to: usize) {
    let to = to.min(out.len());
    for slot in &mut out[from..to] {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Blank comments and string/char literals. Lifetimes and loop labels
/// are preserved; raw and byte strings are handled.
fn strip_noncode(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if !prev_is_word(b, i) => {
                if let Some(end) = raw_string_end(b, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i);
            }
            b'\'' => {
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: '\n', '\'', '\u{1F4A9}'.
                    let start = i;
                    i += 3;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    if i < b.len() {
                        i += 1;
                    }
                    blank(&mut out, start, i);
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (is_word_byte(b[j]) || b[j] >= 0x80) {
                        j += 1;
                    }
                    if j > i + 1 && b.get(j) == Some(&b'\'') {
                        // Char literal such as 'a' (possibly multibyte).
                        blank(&mut out, i, j + 1);
                        i = j + 1;
                    } else if j == i + 1 && b.get(i + 2) == Some(&b'\'') {
                        // Punctuation char literal such as '(' or '"'.
                        blank(&mut out, i, i + 3);
                        i += 3;
                    } else {
                        // A lifetime ('a, 'static, '_) or loop label.
                        i = j.max(i + 1);
                    }
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// If `pos` starts a raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`),
/// return the offset one past its closing delimiter.
fn raw_string_end(b: &[u8], pos: usize) -> Option<usize> {
    let mut i = pos;
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let tail = &b[i + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&c| c == b'#') {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(b.len())
}

/// Blank every `#[cfg(test)] mod … { … }` item (tests are exempt from
/// the passes; `#[cfg(test)]` on non-module items is left alone).
fn strip_test_modules(code: &str) -> String {
    let b = code.as_bytes();
    let mut out = b.to_vec();
    let mut from = 0;
    while let Some(off) = code[from..].find("#[cfg(test)]") {
        let start = from + off;
        let mut j = start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes between the cfg
        // gate and the item it applies to.
        loop {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'#') && b.get(j + 1) == Some(&b'[') {
                match match_delim(b, j + 1, b'[', b']') {
                    Some(past) => j = past,
                    None => break,
                }
            } else {
                break;
            }
        }
        let gated_mod = code[j..].starts_with("mod ") || code[j..].starts_with("pub mod ");
        if gated_mod {
            if let Some(open_off) = code[j..].find('{') {
                let open = j + open_off;
                if let Some(close) = match_delim(b, open, b'{', b'}') {
                    blank(&mut out, start, close);
                    from = close;
                    continue;
                }
            }
        }
        from = start + 1;
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Offset one past the delimiter matching the opener at `open`.
fn match_delim(b: &[u8], open: usize, open_c: u8, close_c: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        if b[i] == open_c {
            depth += 1;
        } else if b[i] == close_c {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Byte offsets of standalone occurrences of `needle` — occurrences
/// not embedded in a larger identifier on either side.
fn word_occurrences(code: &str, needle: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(needle) {
        let pos = from + off;
        let end = pos + needle.len();
        let before_ok = pos == 0 || !is_word_byte(b[pos - 1]);
        let after_ok = end >= b.len() || !is_word_byte(b[end]);
        if before_ok && after_ok {
            hits.push(pos);
        }
        from = pos + 1;
    }
    hits
}

/// 1-based line number of byte offset `pos`.
fn line_of(code: &str, pos: usize) -> usize {
    code.as_bytes()[..pos]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Variant names (with their lines) of the enum introduced by `decl`.
fn enum_variants(code: &str, decl: &str) -> Option<Vec<(String, usize)>> {
    let at = code.find(decl)?;
    let open = at + code[at..].find('{')?;
    let end = match_delim(code.as_bytes(), open, b'{', b'}')?;
    let b = code.as_bytes();
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut i = open + 1;
    while i < end - 1 {
        match b[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'#' if depth == 0 => {
                // Skip a variant attribute such as `#[serde(rename = …)]`.
                i += 1;
                if b.get(i) == Some(&b'[') {
                    match match_delim(b, i, b'[', b']') {
                        Some(past) => i = past,
                        None => i += 1,
                    }
                }
            }
            c if depth == 0 && c.is_ascii_uppercase() => {
                let start = i;
                while i < end && is_word_byte(b[i]) {
                    i += 1;
                }
                variants.push((code[start..i].to_string(), line_of(code, start)));
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// The brace-delimited body of the first function whose text contains
/// `sig`, plus the body's byte offset in `code`.
fn fn_body<'a>(code: &'a str, sig: &str) -> Option<(&'a str, usize)> {
    let at = code.find(sig)?;
    let open = at + code[at..].find('{')?;
    let end = match_delim(code.as_bytes(), open, b'{', b'}')?;
    Some((&code[open..end], open))
}

/// Byte offset (within `body`) of a wildcard `_ =>` match arm, if any.
fn wildcard_arm(body: &str) -> Option<usize> {
    let b = body.as_bytes();
    let mut from = 0;
    while let Some(off) = body[from..].find("=>") {
        let pos = from + off;
        let mut k = pos;
        while k > 0 && b[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k > 0 && b[k - 1] == b'_' && (k == 1 || !is_word_byte(b[k - 2])) {
            return Some(k - 1);
        }
        from = pos + 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let code = "let x = 1; // unsafe here\n/* parking_lot */ let y = 2;";
        let s = strip_noncode(code);
        assert!(!s.contains("unsafe"));
        assert!(!s.contains("parking_lot"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.len(), code.len());
    }

    #[test]
    fn strips_literals_but_keeps_lifetimes() {
        let code =
            r##"fn f<'a>(s: &'a str) { let c = '"'; let t = "unsafe"; let r = r#"std::sync"#; }"##;
        let s = strip_noncode(code);
        assert!(!s.contains("unsafe"));
        assert!(!s.contains("std::sync"));
        assert!(s.contains("fn f<'a>(s: &'a str)"));
    }

    #[test]
    fn escaped_char_literals_do_not_derail_the_scanner() {
        let code = "let q = '\\''; let n = '\\n'; unsafe {}";
        let s = strip_noncode(code);
        let hits = word_occurrences(&s, "unsafe");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn blanks_test_modules_only() {
        let code =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { unsafe {} }\n}\nfn after() {}\n";
        let s = strip_test_modules(code);
        assert!(!s.contains("unsafe"));
        assert!(s.contains("fn real()"));
        assert!(s.contains("fn after()"));
        let after = s.find("fn after").expect("kept");
        assert_eq!(line_of(&s, after), 6, "blanking must preserve line numbers");
    }

    #[test]
    fn word_occurrences_respects_identifier_boundaries() {
        let code = "fn pass_unsafe() {} unsafe fn g() {}";
        let hits = word_occurrences(code, "unsafe");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn finds_enum_variants_and_wildcard_arms() {
        let code = "pub enum EventKind { A { x: usize }, B(Option<u8>), LongName }\n\
                    fn from_events() { match k { EventKind::A { .. } => {} _ => {} } }";
        let variants = enum_variants(code, "pub enum EventKind").expect("enum");
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "LongName"]);
        let (body, _) = fn_body(code, "fn from_events").expect("body");
        assert!(wildcard_arm(body).is_some());
        assert!(wildcard_arm("match k { EventKind::A { .. } => {} }").is_none());
    }

    #[test]
    fn fault_divergence_flags_backends_but_not_the_core() {
        let leaky = Source {
            rel: "crates/runtime/src/engine.rs".into(),
            code: "if self.consec_failures >= ft.quarantine_after { gate.try_quarantine(); }"
                .into(),
        };
        let home = Source {
            rel: "crates/runtime/src/core/mod.rs".into(),
            code: leaky.code.clone(),
        };
        let elsewhere = Source {
            rel: "crates/bench/src/harness.rs".into(),
            code: leaky.code.clone(),
        };
        let mut v = Vec::new();
        pass_fault_divergence(&[home, elsewhere], &mut v);
        assert!(v.is_empty(), "core and non-runtime files are exempt");
        pass_fault_divergence(&[leaky], &mut v);
        assert_eq!(
            v.len(),
            3,
            "each leaked fault-response token is its own violation"
        );
        assert!(v.iter().all(|x| x.pass == "fault-divergence"));
    }

    #[test]
    fn fs_confinement_flags_engines_but_not_the_checkpoint_module() {
        let code = "let f = std::fs::File::create(&tmp)?; \
                    let o = OpenOptions::new().append(true);";
        let leaky = Source {
            rel: "crates/runtime/src/engine.rs".into(),
            code: code.into(),
        };
        let home = Source {
            rel: FS_IO_HOME.into(),
            code: code.into(),
        };
        let elsewhere = Source {
            rel: "crates/bench/src/harness.rs".into(),
            code: code.into(),
        };
        let mut v = Vec::new();
        pass_fs_confinement(&[home, elsewhere], &mut v);
        assert!(v.is_empty(), "the checkpoint module and non-runtime crates are exempt");
        pass_fs_confinement(&[leaky], &mut v);
        // `std::fs`, the standalone `File` inside the path, and
        // `OpenOptions` each count.
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.pass == "fs-confinement"));
        // `FileHeader`-style identifiers must not trip the `File` token.
        let fine = Source {
            rel: "crates/runtime/src/events.rs".into(),
            code: "struct FileHeader; let p: PathBuf = base.join(name);".into(),
        };
        v.clear();
        pass_fs_confinement(&[fine], &mut v);
        assert!(v.is_empty());
    }

    const SAMPLE_SNAPSHOT: &str = r#"{
  "schema": 1,
  "entries": [
    {"n_pus": 10, "structured_us": 24.5, "dense_us": 61.3, "cold_iters": 8, "warm_iters": 2},
    {"n_pus": 100, "structured_us": 236.2, "dense_us": 6562.8, "cold_iters": 9, "warm_iters": 2},
    {"n_pus": 1000, "structured_us": 3534.9, "dense_us": 3940227.4, "cold_iters": 16, "warm_iters": 2},
    {"n_pus": 10000, "structured_us": 7158.6, "dense_us": null, "cold_iters": 9, "warm_iters": 3}
  ]
}"#;

    fn sample_entries() -> Vec<BenchEntry> {
        json_entry_objects(SAMPLE_SNAPSHOT)
            .unwrap()
            .iter()
            .map(|obj| BenchEntry {
                n_pus: json_number(obj, "n_pus").unwrap().unwrap() as u64,
                structured_us: json_number(obj, "structured_us").unwrap().unwrap(),
                dense_us: json_number(obj, "dense_us").unwrap(),
                cold_iters: json_number(obj, "cold_iters").unwrap().unwrap() as u64,
                warm_iters: json_number(obj, "warm_iters").unwrap().unwrap() as u64,
            })
            .collect()
    }

    #[test]
    fn snapshot_json_parses_including_null_dense() {
        let entries = sample_entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].n_pus, 10);
        assert_eq!(entries[2].dense_us, Some(3940227.4));
        assert_eq!(entries[3].dense_us, None);
        assert_eq!(entries[3].warm_iters, 3);
    }

    #[test]
    fn solver_invariants_accept_the_committed_shape() {
        let mut errors = Vec::new();
        check_solver_invariants(&sample_entries(), &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn solver_invariants_catch_regressions() {
        // Dense barely faster than structured at n = 1000.
        let mut slow = sample_entries();
        slow[2].dense_us = Some(slow[2].structured_us * 2.0);
        let mut errors = Vec::new();
        check_solver_invariants(&slow, &mut errors);
        assert!(errors.iter().any(|e| e.contains("10x")), "{errors:?}");

        // Warm start slower than cold.
        let mut warm = sample_entries();
        warm[1].warm_iters = warm[1].cold_iters + 5;
        errors.clear();
        check_solver_invariants(&warm, &mut errors);
        assert!(errors.iter().any(|e| e.contains("warm")), "{errors:?}");

        // Super-linear growth.
        let mut growth = sample_entries();
        growth[3].structured_us = growth[2].structured_us * 100.0;
        errors.clear();
        check_solver_invariants(&growth, &mut errors);
        assert!(errors.iter().any(|e| e.contains("grew")), "{errors:?}");

        // A missing size.
        let partial: Vec<BenchEntry> = sample_entries().into_iter().take(2).collect();
        errors.clear();
        check_solver_invariants(&partial, &mut errors);
        assert!(errors.iter().any(|e| e.contains("no entry")), "{errors:?}");
    }

    #[test]
    fn fresh_comparison_tolerates_small_drift_only() {
        let committed = sample_entries();
        let mut fresh = sample_entries();
        fresh[0].cold_iters = 9; // 8 -> 9: within the ±1 slack
        let mut errors = Vec::new();
        compare_iteration_counts(&committed, &fresh, 20.0, &mut errors);
        assert!(errors.is_empty(), "{errors:?}");

        fresh[1].cold_iters = 40; // 9 -> 40: a real divergence
        errors.clear();
        compare_iteration_counts(&committed, &fresh, 20.0, &mut errors);
        assert_eq!(errors.len(), 1, "{errors:?}");
    }

    #[test]
    fn snake_case_matches_event_tags() {
        assert_eq!(snake_case("RunStart"), "run_start");
        assert_eq!(snake_case("IpmIteration"), "ipm_iteration");
        assert_eq!(snake_case("PuQuarantined"), "pu_quarantined");
        assert_eq!(snake_case("DeviceFailed"), "device_failed");
    }

    #[test]
    fn lossy_cast_target_detection() {
        let code = "let lo = pos.floor() as usize; let f = n as f64;";
        let hits = word_occurrences(code, "as");
        assert_eq!(hits.len(), 2);
        // Only the first cast targets a narrowing type.
        let b = code.as_bytes();
        let mut narrow = 0;
        for pos in hits {
            let mut j = pos + 2;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            let start = j;
            while j < b.len() && is_word_byte(b[j]) {
                j += 1;
            }
            if NARROWING.contains(&&code[start..j]) {
                narrow += 1;
            }
        }
        assert_eq!(narrow, 1);
    }
}
