//! Lint reporting: violations, per-pass allowlists, the ratcheting
//! baseline, and the two output formats (human text and SARIF 2.1.0
//! for GitHub code scanning).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding from one pass.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number in the file on disk.
    pub line: usize,
    /// Pass name (stable; doubles as the SARIF rule id).
    pub pass: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

/// Wall-clock cost of one pass, for the timing report.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass name.
    pub name: &'static str,
    /// Elapsed milliseconds.
    pub millis: f64,
}

/// Render the per-pass timing line (slow passes must be visible in CI
/// logs, so this is printed on every run, clean or not).
pub fn timing_line(timings: &[PassTiming]) -> String {
    let cells: Vec<String> = timings
        .iter()
        .map(|t| format!("{} {:.1}ms", t.name, t.millis))
        .collect();
    format!("pass timings: {}", cells.join(" | "))
}

// ---------------------------------------------------------------------------
// Allowlists
// ---------------------------------------------------------------------------

/// A per-pass allowlist loaded from `crates/xtask/allowlists/<pass>.txt`.
///
/// Each entry is a workspace-relative path: an exact file (`a/b.rs`) or
/// a directory prefix (`a/dir/`). Blank lines and `#` comments are
/// ignored. The files are part of the audited surface: adding an entry
/// is a reviewed change, exactly like editing the pass itself.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<String>,
}

impl Allowlist {
    /// Parse allowlist text.
    pub fn parse(text: &str) -> Allowlist {
        Allowlist {
            entries: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect(),
        }
    }

    /// Load the allowlist for `pass`, or an error message naming the
    /// missing file (a pass that declares an allowlist must ship one,
    /// even if empty — silence is not an audit).
    pub fn load(root: &Path, pass: &str) -> Result<Allowlist, String> {
        let path = root
            .join("crates/xtask/allowlists")
            .join(format!("{pass}.txt"));
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) => Err(format!("allowlist {} unreadable: {e}", path.display())),
        }
    }

    /// Is `rel` covered by an entry (exact file or directory prefix)?
    pub fn permits(&self, rel: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e == rel || (e.ends_with('/') && rel.starts_with(e.as_str())))
    }

    /// The raw entries (for violation messages).
    pub fn entries(&self) -> &[String] {
        &self.entries
    }
}

// ---------------------------------------------------------------------------
// Baseline (ratchet)
// ---------------------------------------------------------------------------

/// Accepted legacy-violation counts, keyed by `(pass, file)`.
///
/// The ratchet: a `(pass, file)` group whose current count is at or
/// below its baselined count is suppressed; one finding more and the
/// *whole group* is reported, so the offending diff sees every
/// instance it must choose among. Groups absent from the baseline get
/// zero tolerance. `cargo xtask lint --write-baseline` regenerates the
/// file — shrinking it over time is the point.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// Default on-disk location of the committed baseline.
pub fn default_baseline_path(root: &Path) -> PathBuf {
    root.join("crates/xtask/lint-baseline.txt")
}

impl Baseline {
    /// Parse the tab-separated `pass<TAB>file<TAB>count` format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split('\t');
            let (Some(pass), Some(file), Some(count)) = (cols.next(), cols.next(), cols.next())
            else {
                return Err(format!(
                    "baseline line {}: expected pass<TAB>file<TAB>count",
                    i + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            counts.insert((pass.to_string(), file.to_string()), count);
        }
        Ok(Baseline { counts })
    }

    /// Load from `path`; a missing file is an empty baseline (zero
    /// tolerance everywhere), not an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("baseline {}: {e}", path.display())),
        }
    }

    /// Serialize current violations as a fresh baseline.
    pub fn render(violations: &[Violation]) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *counts
                .entry((v.pass.to_string(), v.file.clone()))
                .or_insert(0) += 1;
        }
        let mut out = String::from(
            "# Accepted legacy lint findings: pass<TAB>file<TAB>count.\n\
             # Regenerate with `cargo xtask lint --write-baseline`; counts may\n\
             # only shrink (the ratchet fails the build when a group grows).\n",
        );
        for ((pass, file), n) in &counts {
            out.push_str(&format!("{pass}\t{file}\t{n}\n"));
        }
        out
    }

    /// Split `violations` into (reported, suppressed-count) under the
    /// ratchet.
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, usize) {
        let mut groups: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
        for v in violations {
            groups
                .entry((v.pass.to_string(), v.file.clone()))
                .or_default()
                .push(v);
        }
        let mut reported = Vec::new();
        let mut suppressed = 0usize;
        for (key, group) in groups {
            let allowed = self.counts.get(&key).copied().unwrap_or(0);
            if group.len() <= allowed {
                suppressed += group.len();
            } else {
                reported.extend(group);
            }
        }
        (reported, suppressed)
    }
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping (the only JSON writer this
/// dependency-free binary needs).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render violations as a SARIF 2.1.0 log suitable for the GitHub
/// code-scanning upload action. `rules` is the full pass registry
/// (id + short description), so every finding's `ruleId` resolves.
pub fn sarif(rules: &[(&'static str, &'static str)], violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"plb-xtask-lint\",\n          \
         \"informationUri\": \"docs/SOUNDNESS.md\",\n          \"rules\": [\n",
    );
    for (i, (id, summary)) in rules.iter().enumerate() {
        let comma = if i + 1 < rules.len() { "," } else { "" };
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{comma}\n",
            esc(id),
            esc(summary)
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let comma = if i + 1 < violations.len() { "," } else { "" };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{comma}\n",
            esc(v.pass),
            esc(&v.msg),
            esc(&v.file),
            v.line.max(1)
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pass: &'static str, file: &str, line: usize) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            pass,
            msg: format!("violation in {file}"),
        }
    }

    #[test]
    fn allowlist_matches_files_and_dir_prefixes() {
        let a = Allowlist::parse(
            "# comment\n\ncrates/runtime/src/host.rs\ncrates/core/src/baselines/\n",
        );
        assert!(a.permits("crates/runtime/src/host.rs"));
        assert!(a.permits("crates/core/src/baselines/hdss.rs"));
        assert!(!a.permits("crates/runtime/src/engine.rs"));
        assert!(!a.permits("crates/core/src/baselines.rs"));
        assert_eq!(a.entries().len(), 2);
    }

    #[test]
    fn baseline_round_trips_and_ratchets() {
        let current = vec![
            v("panic-freedom", "a.rs", 3),
            v("panic-freedom", "a.rs", 9),
            v("panic-freedom", "b.rs", 1),
        ];
        let text = Baseline::render(&current);
        let base = Baseline::parse(&text).expect("parses");

        // Unchanged tree: everything suppressed.
        let (reported, suppressed) = base.apply(current.clone());
        assert!(reported.is_empty(), "{reported:?}");
        assert_eq!(suppressed, 3);

        // One new finding in a.rs: the whole a.rs group resurfaces,
        // b.rs stays suppressed.
        let mut grown = current.clone();
        grown.push(v("panic-freedom", "a.rs", 20));
        let (reported, suppressed) = base.apply(grown);
        assert_eq!(reported.len(), 3);
        assert!(reported.iter().all(|x| x.file == "a.rs"));
        assert_eq!(suppressed, 1);

        // A group absent from the baseline has zero tolerance.
        let (reported, _) = base.apply(vec![v("nondeterminism-confinement", "c.rs", 5)]);
        assert_eq!(reported.len(), 1);
    }

    #[test]
    fn baseline_rejects_malformed_lines() {
        assert!(Baseline::parse("pass only-two-cols\n").is_err());
        assert!(Baseline::parse("p\tf\tnot-a-number\n").is_err());
        assert!(Baseline::parse("# just comments\n\n").is_ok());
    }

    #[test]
    fn sarif_is_well_shaped_and_escaped() {
        let rules = [("unsafe-allowlist", "no `unsafe` outside the audit")];
        let viols = [v("unsafe-allowlist", "crates/x/src/\"odd\".rs", 7)];
        let s = sarif(&rules, &viols);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"unsafe-allowlist\""));
        assert!(s.contains("\\\"odd\\\""), "quotes escaped: {s}");
        assert!(s.contains("\"startLine\": 7"));
        // Zero results must still be a valid (empty) array.
        let empty = sarif(&rules, &[]);
        assert!(empty.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn timing_line_lists_every_pass() {
        let line = timing_line(&[
            PassTiming {
                name: "unsafe-allowlist",
                millis: 0.25,
            },
            PassTiming {
                name: "doc-consistency",
                millis: 12.5,
            },
        ]);
        assert!(line.contains("unsafe-allowlist 0.2ms") || line.contains("unsafe-allowlist 0.3ms"));
        assert!(line.contains("doc-consistency 12.5ms"));
    }
}
