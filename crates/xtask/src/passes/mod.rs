//! The lint-pass framework: one [`Pass`] per enforced policy, all run
//! over the same lexed [`Source`] set (policy rationale in
//! `docs/SOUNDNESS.md`).

use std::path::Path;

use crate::report::Violation;

mod doc_consistency;
mod event_coverage;
mod fault_divergence;
mod fs_confinement;
mod lossy_cast;
mod must_use;
mod nondeterminism;
mod panic_freedom;
mod sync_shim;
mod unsafe_allowlist;

/// One lexed workspace source file.
pub struct Source {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The code view: comments, string/char literals, and
    /// `#[cfg(test)]` modules blanked in place (byte offsets — and
    /// therefore line numbers — match the file on disk).
    pub code: String,
}

/// Everything a pass may look at.
pub struct Context<'a> {
    /// Workspace root (for allowlists and the doc files).
    pub root: &'a Path,
    /// Every lexed `.rs` file under the workspace `src` trees.
    pub sources: &'a [Source],
}

impl Context<'_> {
    /// Find a source by its workspace-relative path.
    pub fn source(&self, rel: &str) -> Option<&Source> {
        self.sources.iter().find(|s| s.rel == rel)
    }
}

/// A lint pass: a name (stable — it is the SARIF rule id and the
/// allowlist/baseline key), a one-line summary, and the check itself.
pub trait Pass {
    /// Stable pass name, e.g. `"unsafe-allowlist"`.
    fn name(&self) -> &'static str;
    /// One-line policy summary (SARIF rule description).
    fn summary(&self) -> &'static str;
    /// Append findings for the whole workspace to `out`.
    fn run(&self, ctx: &Context, out: &mut Vec<Violation>);
}

/// The full registry, in documented order (pass 1 … pass 10).
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(unsafe_allowlist::UnsafeAllowlist),
        Box::new(sync_shim::SyncShim),
        Box::new(event_coverage::EventCoverage),
        Box::new(lossy_cast::LossyCast),
        Box::new(must_use::MustUse),
        Box::new(fault_divergence::FaultDivergence),
        Box::new(fs_confinement::FsConfinement),
        Box::new(doc_consistency::DocConsistency),
        Box::new(nondeterminism::NondeterminismConfinement),
        Box::new(panic_freedom::PanicFreedom),
    ]
}

// ---------------------------------------------------------------------------
// Shared architectural facts, referenced by more than one pass.
// ---------------------------------------------------------------------------

/// The one runtime module allowed to name `std::sync` / `parking_lot`.
pub const SYNC_SHIM: &str = "crates/runtime/src/sync.rs";

/// Where the event schema lives.
pub const EVENTS_MODULE: &str = "crates/runtime/src/events.rs";

/// Report a pass-configuration failure (unreadable allowlist, missing
/// anchor file) as a violation so it fails the build loudly instead of
/// silently weakening the pass.
pub fn config_error(pass: &'static str, msg: String) -> Violation {
    Violation {
        file: "crates/xtask".to_string(),
        line: 1,
        pass,
        msg,
    }
}
