//! Pass 4: no `as` casts to narrower numeric types in
//! `plb-numerics`/`plb-ipm` outside the audited `cast` module.

use super::{Context, Pass};
use crate::lexer::{is_word_byte, line_of, word_occurrences};
use crate::report::Violation;

/// Checked-conversion module exempt from this pass (its whole point is
/// to fence the raw casts behind guarded APIs).
const CAST_MODULE: &str = "crates/numerics/src/cast.rs";

/// Cast targets that can drop bits or change sign coming from the
/// `f64`/`u64` domains the numeric crates work in.
const NARROWING: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32",
];

pub struct LossyCast;

impl Pass for LossyCast {
    fn name(&self) -> &'static str {
        "lossy-cast"
    }

    fn summary(&self) -> &'static str {
        "no narrowing `as` casts in the numeric crates outside cast.rs"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        for s in ctx.sources {
            let scoped =
                s.rel.starts_with("crates/numerics/src/") || s.rel.starts_with("crates/ipm/src/");
            if !scoped || s.rel == CAST_MODULE {
                continue;
            }
            let b = s.code.as_bytes();
            for pos in word_occurrences(&s.code, "as") {
                let mut j = pos + 2;
                while j < b.len() && b[j].is_ascii_whitespace() {
                    j += 1;
                }
                let start = j;
                while j < b.len() && is_word_byte(b[j]) {
                    j += 1;
                }
                let target = &s.code[start..j];
                if NARROWING.contains(&target) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: format!(
                            "`as {target}` can silently truncate, wrap, or change sign; \
                             use the checked `plb_numerics::cast` helpers or `TryFrom`"
                        ),
                    });
                }
            }
        }
    }
}
