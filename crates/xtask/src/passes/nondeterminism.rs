//! Pass 9: nondeterminism confinement — the determinism race-detector.
//!
//! The repo's central correctness claim is that `SimEngine` and
//! `HostEngine` make byte-identical balancing decisions under the same
//! `FaultPlan`, and that a persisted profile re-fits reproducibly.
//! That only holds if the decision-making crates contain no hidden
//! nondeterminism. Two families are banned outside an explicit,
//! audited allowlist (`allowlists/nondeterminism-confinement.txt`):
//!
//! * **wall-clock / entropy sources** — `Instant`, `SystemTime`,
//!   `thread_rng`, `from_entropy`, `OsRng`: time belongs to the
//!   `Backend` clock and randomness to seeded generators, so the same
//!   plan replays to the same decisions;
//! * **hashed collections** — `HashMap`, `HashSet`: their iteration
//!   order is randomized per process (SipHash keys), so any code that
//!   ever iterates one can silently diverge between two identical
//!   runs. The deterministic crates use `BTreeMap`/`BTreeSet` (or
//!   sorted vectors), making iteration order part of the type.
//!
//! The allowlist is intentionally tiny: the wall-clock *backend*
//! (`host.rs`, which is the one place wall time is the semantics) and
//! the solve-latency stopwatch (`crates/core/src/perf.rs`, which
//! reports how long a selection took without influencing what it
//! decided).

use super::{config_error, Context, Pass};
use crate::lexer::{line_of, word_occurrences};
use crate::report::{Allowlist, Violation};

/// The crates whose decisions must replay deterministically. The bench
/// harness (`crates/bench`) and this lint binary are out of scope: one
/// measures wall time for a living, the other reports it.
const DETERMINISTIC_SCOPE: &[&str] = &[
    "crates/runtime/src/",
    "crates/core/src/",
    "crates/hetsim/src/",
    "crates/ipm/src/",
    "crates/numerics/src/",
    "crates/apps/src/",
];

/// Banned wall-clock / entropy tokens, with the fix each suggests.
const CLOCK_ENTROPY_TOKENS: &[(&str, &str)] = &[
    (
        "Instant",
        "route time through the Backend clock or crates/core/src/perf.rs",
    ),
    (
        "SystemTime",
        "route time through the Backend clock or crates/core/src/perf.rs",
    ),
    (
        "thread_rng",
        "use a seeded generator (rand::SeedableRng) so runs replay",
    ),
    (
        "from_entropy",
        "use a seeded generator (rand::SeedableRng) so runs replay",
    ),
    (
        "OsRng",
        "use a seeded generator (rand::SeedableRng) so runs replay",
    ),
];

/// Banned hashed-collection tokens.
const HASH_ORDER_TOKENS: &[&str] = &["HashMap", "HashSet"];

pub struct NondeterminismConfinement;

impl Pass for NondeterminismConfinement {
    fn name(&self) -> &'static str {
        "nondeterminism-confinement"
    }

    fn summary(&self) -> &'static str {
        "no wall clock, entropy, or hash-order dependence in the deterministic crates"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        let allow = match Allowlist::load(ctx.root, self.name()) {
            Ok(a) => a,
            Err(e) => {
                out.push(config_error(self.name(), e));
                return;
            }
        };
        for s in ctx.sources {
            let scoped = DETERMINISTIC_SCOPE.iter().any(|p| s.rel.starts_with(p));
            if !scoped || allow.permits(&s.rel) {
                continue;
            }
            for (token, fix) in CLOCK_ENTROPY_TOKENS {
                for pos in word_occurrences(&s.code, token) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: format!(
                            "`{token}` in a deterministic crate: cross-engine equivalence \
                             and reproducible re-fits forbid ambient nondeterminism; {fix} \
                             (docs/SOUNDNESS.md, allowlist: {})",
                            allow.entries().join(", ")
                        ),
                    });
                }
            }
            for token in HASH_ORDER_TOKENS {
                for pos in word_occurrences(&s.code, token) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: format!(
                            "`{token}` in a deterministic crate: SipHash iteration order \
                             differs between processes, so any future iteration silently \
                             breaks run-to-run determinism; use `BTreeMap`/`BTreeSet` or a \
                             sorted vector instead (docs/SOUNDNESS.md)"
                        ),
                    });
                }
            }
        }
    }
}
