//! Pass 7: filesystem I/O in `plb-runtime` lives only in the
//! checkpoint module, whose atomic-write protocol is what makes
//! snapshots crash-safe; an engine or policy opening files on its own
//! would bypass those guarantees.

use super::{Context, Pass};
use crate::lexer::{line_of, word_occurrences};
use crate::report::Violation;

/// The one runtime module allowed to perform filesystem I/O: the
/// durability layer, whose tmp-write + fsync + rename protocol is
/// audited for crash atomicity (`docs/FAULT_TOLERANCE.md`).
pub const FS_IO_HOME: &str = "crates/runtime/src/checkpoint.rs";

/// Tokens that betray direct filesystem access.
const FS_IO_TOKENS: &[&str] = &["std::fs", "File", "OpenOptions"];

pub struct FsConfinement;

impl Pass for FsConfinement {
    fn name(&self) -> &'static str {
        "fs-confinement"
    }

    fn summary(&self) -> &'static str {
        "runtime filesystem I/O only in the checkpoint module"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        for s in ctx.sources {
            if !s.rel.starts_with("crates/runtime/src/") || s.rel == FS_IO_HOME {
                continue;
            }
            for token in FS_IO_TOKENS {
                for pos in word_occurrences(&s.code, token) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: format!(
                            "filesystem access `{token}` outside `{FS_IO_HOME}`; durability \
                             I/O must go through the checkpoint module's atomic-write \
                             protocol (docs/FAULT_TOLERANCE.md)"
                        ),
                    });
                }
            }
        }
    }
}
