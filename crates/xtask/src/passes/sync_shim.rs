//! Pass 2: inside `crates/runtime/src`, concurrency primitives must
//! come from `crate::sync` (the loom-swappable shim), never directly
//! from `std::sync` or `parking_lot`.

use super::{Context, Pass, SYNC_SHIM};
use crate::lexer::{line_of, word_occurrences};
use crate::report::Violation;

pub struct SyncShim;

impl Pass for SyncShim {
    fn name(&self) -> &'static str {
        "sync-shim"
    }

    fn summary(&self) -> &'static str {
        "runtime concurrency primitives come from crate::sync only"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        for s in ctx.sources {
            if !s.rel.starts_with("crates/runtime/src/") || s.rel == SYNC_SHIM {
                continue;
            }
            for banned in ["std::sync", "parking_lot"] {
                for pos in word_occurrences(&s.code, banned) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: format!(
                            "direct `{banned}` use in plb-runtime; import the primitive \
                             from `crate::sync` so the loom models stay faithful"
                        ),
                    });
                }
            }
        }
    }
}
