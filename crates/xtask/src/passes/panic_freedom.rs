//! Pass 10: panic freedom on the run path.
//!
//! Scheduling and solving must degrade (fallback selection, typed
//! errors, skipped probes) rather than abort a run a fault-tolerant
//! engine could otherwise finish. This pass replaces the old per-crate
//! `#![deny(clippy::unwrap_used, clippy::expect_used)]` patchwork with
//! one audited, machine-checked policy:
//!
//! * **unwrap / expect / panic-family macros** are banned across the
//!   run-path crates (`plb-runtime`, `plb-hec`, `plb-ipm`) outside the
//!   audited allowlist (`allowlists/panic-freedom.txt`, each entry a
//!   file whose panics carry a local proof of unreachability);
//! * **slice-index expressions** (`xs[i]` — the third way safe Rust
//!   panics) are additionally flagged in the `drive()` hot path and
//!   the policy hooks it calls. Existing audited sites live in the
//!   ratchet baseline (`lint-baseline.txt`): the count may only
//!   shrink.
//!
//! Tests are exempt (assertions are their job), as is `assert!` — an
//! invariant check is a *deliberate* abort, not an accidental one.

use super::{config_error, Context, Pass};
use crate::lexer::{is_word_byte, line_of, word_occurrences};
use crate::report::{Allowlist, Violation};

/// Crates whose run path must not panic (the old deny-lint scope).
const PANIC_SCOPE: &[&str] = &["crates/runtime/src/", "crates/core/src/", "crates/ipm/src/"];

/// The `drive()` hot path and the policy hooks it invokes every task
/// completion: here even indexing is a latent abort.
const INDEX_SCOPE: &[&str] = &[
    "crates/runtime/src/core/",
    "crates/core/src/policy.rs",
    "crates/core/src/baselines/",
];

/// Macros that abort by design.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub struct PanicFreedom;

impl Pass for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!/slice-index on the run path"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        let allow = match Allowlist::load(ctx.root, self.name()) {
            Ok(a) => a,
            Err(e) => {
                out.push(config_error(self.name(), e));
                return;
            }
        };
        for s in ctx.sources {
            if !PANIC_SCOPE.iter().any(|p| s.rel.starts_with(p)) || allow.permits(&s.rel) {
                continue;
            }
            let b = s.code.as_bytes();
            for method in ["unwrap", "expect"] {
                for pos in word_occurrences(&s.code, method) {
                    if is_call(b, pos + method.len()) && is_method_recv(b, pos) {
                        out.push(Violation {
                            file: s.rel.clone(),
                            line: line_of(&s.code, pos),
                            pass: self.name(),
                            msg: format!(
                                "`.{method}()` on the run path can abort a run the \
                                 fault-tolerant engines could finish; return a typed error \
                                 or degrade (audited exceptions: allowlists/panic-freedom.txt)"
                            ),
                        });
                    }
                }
            }
            for mac in PANIC_MACROS {
                for pos in word_occurrences(&s.code, mac) {
                    if b.get(pos + mac.len()) == Some(&b'!') {
                        out.push(Violation {
                            file: s.rel.clone(),
                            line: line_of(&s.code, pos),
                            pass: self.name(),
                            msg: format!(
                                "`{mac}!` on the run path; scheduling and solving must \
                                 degrade into typed errors, not abort \
                                 (docs/FAULT_TOLERANCE.md)"
                            ),
                        });
                    }
                }
            }
            if INDEX_SCOPE.iter().any(|p| s.rel.starts_with(p)) {
                for pos in index_expressions(&s.code) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: "slice-index in the drive() hot path can panic on a logic \
                              slip; prefer `.get()`/iterators, or keep the audited count \
                              in lint-baseline.txt from growing"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Does the occurrence at `pos` look like a method call receiver —
/// preceded (after whitespace) by `.`? Filters out `fn unwrap` items
/// and paths like `Option::unwrap` passed as fns (rare; those read as
/// deliberate).
fn is_method_recv(b: &[u8], pos: usize) -> bool {
    let mut k = pos;
    while k > 0 && b[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    k > 0 && b[k - 1] == b'.'
}

/// Is the token ending at `end` followed (after whitespace) by `(` or
/// a turbofish?
fn is_call(b: &[u8], mut end: usize) -> bool {
    while end < b.len() && b[end].is_ascii_whitespace() {
        end += 1;
    }
    b.get(end) == Some(&b'(') || (b.get(end) == Some(&b':') && b.get(end + 1) == Some(&b':'))
}

/// Byte offsets of `[` tokens that open an *index* expression: the
/// previous non-whitespace byte ends a place expression (identifier,
/// `)`, or `]`). Array literals (`[0; n]`), attribute brackets
/// (`#[...]`), macro brackets (`vec![...]`), and type brackets
/// (`: [u8; 4]`) are excluded by that rule. Operates on a code view,
/// so brackets inside strings or comments cannot appear.
fn index_expressions(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut hits = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let mut k = i;
        while k > 0 && b[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let prev = b[k - 1];
        if is_word_byte(prev) || prev == b')' || prev == b']' {
            hits.push(i);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_detection_distinguishes_index_from_literal_and_attr() {
        let code = "#[derive(Debug)] fn f(xs: &[u64], i: usize) -> u64 { \
                    let a = [0u64; 4]; let v = vec![1, 2]; xs[i] + a[0] + m()[1] }";
        let hits = index_expressions(code);
        // xs[i], a[0], m()[1] — not #[derive], not the literal, not vec![.
        assert_eq!(hits.len(), 3, "{hits:?}");
    }

    #[test]
    fn unwrap_detection_needs_dot_and_call() {
        let b = "x.unwrap(); y. unwrap (); unwrap(z); fn unwrap() {} let f = Option::unwrap;";
        let bytes = b.as_bytes();
        let hits: Vec<usize> = word_occurrences(b, "unwrap")
            .into_iter()
            .filter(|&p| is_call(bytes, p + "unwrap".len()) && is_method_recv(bytes, p))
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn unwrap_or_is_a_different_word() {
        let code = "x.unwrap_or(0); x.unwrap_or_else(f); x.unwrap_or_default();";
        assert!(word_occurrences(code, "unwrap").is_empty());
    }
}
