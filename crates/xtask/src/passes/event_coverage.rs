//! Pass 3: every `EventKind` variant is constructed somewhere outside
//! `events.rs`, is matched explicitly in `EventCounters::from_events`,
//! and that match has no `_ =>` wildcard (adding a variant must force
//! a counters decision).

use super::{Context, Pass, EVENTS_MODULE};
use crate::lexer::{enum_variants, fn_body, line_of, wildcard_arm, word_occurrences};
use crate::report::Violation;

pub struct EventCoverage;

impl Pass for EventCoverage {
    fn name(&self) -> &'static str {
        "event-coverage"
    }

    fn summary(&self) -> &'static str {
        "every EventKind variant is emitted and explicitly counted"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        let Some(events) = ctx.source(EVENTS_MODULE) else {
            out.push(Violation {
                file: EVENTS_MODULE.to_string(),
                line: 1,
                pass: self.name(),
                msg: "events module not found".to_string(),
            });
            return;
        };
        let Some(variants) = enum_variants(&events.code, "pub enum EventKind") else {
            out.push(Violation {
                file: events.rel.clone(),
                line: 1,
                pass: self.name(),
                msg: "could not locate `pub enum EventKind`".to_string(),
            });
            return;
        };
        let from_events = fn_body(&events.code, "fn from_events");
        if from_events.is_none() {
            out.push(Violation {
                file: events.rel.clone(),
                line: 1,
                pass: self.name(),
                msg: "could not locate `EventCounters::from_events`".to_string(),
            });
        }
        for (name, line) in &variants {
            let needle = format!("EventKind::{name}");
            let constructed = ctx
                .sources
                .iter()
                .any(|s| s.rel != EVENTS_MODULE && !word_occurrences(&s.code, &needle).is_empty());
            if !constructed {
                out.push(Violation {
                    file: events.rel.clone(),
                    line: *line,
                    pass: self.name(),
                    msg: format!(
                        "variant `{name}` is never constructed outside events.rs — \
                         dead schema entry or missing emission site"
                    ),
                });
            }
            if let Some((body, _)) = from_events {
                if !body.contains(&needle) {
                    out.push(Violation {
                        file: events.rel.clone(),
                        line: *line,
                        pass: self.name(),
                        msg: format!(
                            "`EventCounters::from_events` does not match \
                             `EventKind::{name}` explicitly"
                        ),
                    });
                }
            }
        }
        if let Some((body, body_pos)) = from_events {
            if let Some(off) = wildcard_arm(body) {
                out.push(Violation {
                    file: events.rel.clone(),
                    line: line_of(&events.code, body_pos + off),
                    pass: self.name(),
                    msg: "wildcard `_ =>` arm in `EventCounters::from_events`; every \
                          variant must make an explicit counting decision"
                        .to_string(),
                });
            }
        }
    }
}
