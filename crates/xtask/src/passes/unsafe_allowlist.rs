//! Pass 1: `unsafe` may appear only in the audited files listed in
//! `allowlists/unsafe-allowlist.txt`; everything else, app kernels in
//! particular, must stay safe Rust.

use super::{config_error, Context, Pass};
use crate::lexer::{line_of, word_occurrences};
use crate::report::{Allowlist, Violation};

pub struct UnsafeAllowlist;

impl Pass for UnsafeAllowlist {
    fn name(&self) -> &'static str {
        "unsafe-allowlist"
    }

    fn summary(&self) -> &'static str {
        "`unsafe` only in the audited allowlist (Miri-covered files)"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        let allow = match Allowlist::load(ctx.root, self.name()) {
            Ok(a) => a,
            Err(e) => {
                out.push(config_error(self.name(), e));
                return;
            }
        };
        for s in ctx.sources {
            if allow.permits(&s.rel) {
                continue;
            }
            for pos in word_occurrences(&s.code, "unsafe") {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: line_of(&s.code, pos),
                    pass: self.name(),
                    msg: format!(
                        "`unsafe` outside the audited allowlist ({}); express this \
                         through a safe abstraction such as `plb_runtime::DisjointOutput`",
                        allow.entries().join(", ")
                    ),
                });
            }
        }
    }
}
