//! Pass 6: fault-response decision logic (retry, backoff, quarantine,
//! probation, re-credit) lives only in the scheduling core and the
//! state machines it drives; engine backends must not grow their own
//! copies (`docs/ARCHITECTURE.md`).

use super::{Context, Pass, SYNC_SHIM};
use crate::lexer::{line_of, word_occurrences};
use crate::report::Violation;

/// The vocabulary of fault-response decisions: config knobs, driver
/// state, and state-machine transitions. Any of these appearing in a
/// runtime file outside [`fault_response_home`] means a backend is
/// re-implementing core policy.
const FAULT_RESPONSE_TOKENS: &[&str] = &[
    "max_retries",
    "backoff_for",
    "quarantine_after",
    "consec_failures",
    "recredit",
    "reclaim",
    "take_range",
    "probation_s",
    "quarantined_until",
    "pending_lost",
    "try_quarantine",
    "try_restore",
    "mark_lost",
];

/// Files where fault-response logic legitimately lives: the scheduling
/// core (decisions), the fault config (knobs), the protocol state
/// machines (transitions), and the sync shim they are built on.
fn fault_response_home(rel: &str) -> bool {
    rel.starts_with("crates/runtime/src/core/")
        || rel == "crates/runtime/src/fault.rs"
        || rel == "crates/runtime/src/protocol.rs"
        || rel == SYNC_SHIM
}

pub struct FaultDivergence;

impl Pass for FaultDivergence {
    fn name(&self) -> &'static str {
        "fault-divergence"
    }

    fn summary(&self) -> &'static str {
        "fault-response decisions live in the scheduling core only"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        for s in ctx.sources {
            if !s.rel.starts_with("crates/runtime/src/") || fault_response_home(&s.rel) {
                continue;
            }
            for token in FAULT_RESPONSE_TOKENS {
                for pos in word_occurrences(&s.code, token) {
                    out.push(Violation {
                        file: s.rel.clone(),
                        line: line_of(&s.code, pos),
                        pass: self.name(),
                        msg: format!(
                            "fault-response token `{token}` outside the scheduling core; \
                             retry/backoff/quarantine/re-credit decisions belong to \
                             `crates/runtime/src/core` (docs/ARCHITECTURE.md), not to \
                             engine backends"
                        ),
                    });
                }
            }
        }
    }
}
