//! Pass 5: result-carrying types stay `#[must_use]`.

use super::{Context, Pass};
use crate::lexer::{line_of, word_occurrences};
use crate::report::Violation;

/// Result-carrying types that must stay `#[must_use]`.
const MUST_USE_TYPES: &[(&str, &str)] = &[
    ("crates/runtime/src/metrics.rs", "RunReport"),
    ("crates/runtime/src/metrics.rs", "PuReport"),
    ("crates/core/src/selection.rs", "SelectionResult"),
    ("crates/ipm/src/solver.rs", "Solution"),
    ("crates/numerics/src/curvefit.rs", "FittedCurve"),
];

pub struct MustUse;

impl Pass for MustUse {
    fn name(&self) -> &'static str {
        "must-use"
    }

    fn summary(&self) -> &'static str {
        "result-carrying types stay #[must_use]"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        for (file, ty) in MUST_USE_TYPES {
            let Some(s) = ctx.source(file) else {
                out.push(Violation {
                    file: (*file).to_string(),
                    line: 1,
                    pass: self.name(),
                    msg: format!("expected `{ty}` to be declared here, but the file is missing"),
                });
                continue;
            };
            let decl = format!("pub struct {ty}");
            let Some(pos) = word_occurrences(&s.code, &decl).into_iter().next() else {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: 1,
                    pass: self.name(),
                    msg: format!("declaration `{decl}` not found"),
                });
                continue;
            };
            // The attribute must sit between the end of the previous item
            // and the declaration itself.
            let window_start = s.code[..pos].rfind(['}', ';']).map(|p| p + 1).unwrap_or(0);
            if !s.code[window_start..pos].contains("#[must_use") {
                out.push(Violation {
                    file: s.rel.clone(),
                    line: line_of(&s.code, pos),
                    pass: self.name(),
                    msg: format!(
                        "`{ty}` carries run results; annotate it `#[must_use]` so \
                         silently dropping one is a compile-time warning"
                    ),
                });
            }
        }
    }
}
