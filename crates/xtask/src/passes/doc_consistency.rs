//! Pass 8: the prose tracks the code: every `EventKind` variant's
//! snake_case schema name is documented in `docs/OBSERVABILITY.md`,
//! and `docs/PERFORMANCE.md` exists and is linked from `README.md` and
//! `docs/ARCHITECTURE.md`.

use std::fs;

use super::{Context, Pass, EVENTS_MODULE};
use crate::lexer::enum_variants;
use crate::report::Violation;

/// CamelCase → snake_case (the `EventKind` serde tag convention).
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

pub struct DocConsistency;

impl Pass for DocConsistency {
    fn name(&self) -> &'static str {
        "doc-consistency"
    }

    fn summary(&self) -> &'static str {
        "OBSERVABILITY.md / PERFORMANCE.md stay in step with the code"
    }

    fn run(&self, ctx: &Context, out: &mut Vec<Violation>) {
        // Every EventKind variant's schema name must be documented.
        let observability =
            fs::read_to_string(ctx.root.join("docs/OBSERVABILITY.md")).unwrap_or_default();
        if observability.is_empty() {
            out.push(Violation {
                file: "docs/OBSERVABILITY.md".to_string(),
                line: 1,
                pass: self.name(),
                msg: "missing or unreadable (the event-schema reference)".to_string(),
            });
        } else if let Some(events) = ctx.source(EVENTS_MODULE) {
            if let Some(variants) = enum_variants(&events.code, "pub enum EventKind") {
                for (name, line) in &variants {
                    let tag = snake_case(name);
                    if !observability.contains(&tag) {
                        out.push(Violation {
                            file: events.rel.clone(),
                            line: *line,
                            pass: self.name(),
                            msg: format!(
                                "event kind `{tag}` is not documented in docs/OBSERVABILITY.md \
                                 (the schema reference must cover every variant)"
                            ),
                        });
                    }
                }
            }
        }
        // The performance book must exist and be reachable.
        if !ctx.root.join("docs/PERFORMANCE.md").is_file() {
            out.push(Violation {
                file: "docs/PERFORMANCE.md".to_string(),
                line: 1,
                pass: self.name(),
                msg: "missing (the cost-model and bench-methodology reference)".to_string(),
            });
        } else {
            for linker in ["README.md", "docs/ARCHITECTURE.md"] {
                let text = fs::read_to_string(ctx.root.join(linker)).unwrap_or_default();
                if !text.contains("PERFORMANCE.md") {
                    out.push(Violation {
                        file: linker.to_string(),
                        line: 1,
                        pass: self.name(),
                        msg: "does not link docs/PERFORMANCE.md".to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::snake_case;

    #[test]
    fn snake_case_matches_event_tags() {
        assert_eq!(snake_case("RunStart"), "run_start");
        assert_eq!(snake_case("IpmIteration"), "ipm_iteration");
        assert_eq!(snake_case("PuQuarantined"), "pu_quarantined");
        assert_eq!(snake_case("DeviceFailed"), "device_failed");
    }
}
