//! Codelets: StarPU's unit of application code.
//!
//! A StarPU codelet bundles per-architecture implementations of one
//! computation. On this workspace's host backend there is no physical
//! GPU, so heterogeneity comes from the *resources* a processing unit is
//! granted (its worker-thread count): a "big" unit runs the same kernel
//! over more cores. The kernel receives the item range it must process
//! and the resources of the unit executing it.

use plb_hetsim::PuKind;
use std::ops::Range;

/// Resources of the processing unit executing a codelet.
#[derive(Debug, Clone)]
pub struct PuResources {
    /// CPU threads granted to this unit.
    pub threads: usize,
    /// What the unit models (CPU or GPU).
    pub kind: PuKind,
}

/// A data-parallel computation over a contiguous item range.
///
/// Implementations must be thread-safe: different units execute disjoint
/// ranges concurrently.
pub trait Codelet: Send + Sync {
    /// Codelet name for traces.
    fn name(&self) -> &str;

    /// Process `range` of the application's items using up to
    /// `res.threads` worker threads. Called inside a scoped thread pool
    /// sized to the unit.
    fn execute(&self, range: Range<u64>, res: &PuResources);
}

/// A codelet built from a closure (tests, small examples).
pub struct FnCodelet<F: Fn(Range<u64>, &PuResources) + Send + Sync> {
    name: String,
    f: F,
}

impl<F: Fn(Range<u64>, &PuResources) + Send + Sync> FnCodelet<F> {
    /// Wrap a closure as a codelet.
    pub fn new(name: &str, f: F) -> Self {
        FnCodelet {
            name: name.to_string(),
            f,
        }
    }
}

impl<F: Fn(Range<u64>, &PuResources) + Send + Sync> Codelet for FnCodelet<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, range: Range<u64>, res: &PuResources) {
        (self.f)(range, res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fn_codelet_executes() {
        static COUNT: AtomicU64 = AtomicU64::new(0);
        let c = FnCodelet::new("count", |r, _| {
            COUNT.fetch_add(r.end - r.start, Ordering::Relaxed);
        });
        assert_eq!(c.name(), "count");
        c.execute(
            0..10,
            &PuResources {
                threads: 1,
                kind: PuKind::Cpu,
            },
        );
        c.execute(
            10..15,
            &PuResources {
                threads: 2,
                kind: PuKind::Gpu,
            },
        );
        assert_eq!(COUNT.load(Ordering::Relaxed), 15);
    }
}
