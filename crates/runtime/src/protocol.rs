//! The host engine's concurrency protocols as explicit, loom-checkable
//! state machines.
//!
//! PR 2 made the host path genuinely concurrent: worker threads race
//! the engine's watchdog, quarantined units race in-flight retries, and
//! probation restores race run completion. Each of those decisions is
//! a tiny linearizable state machine; this module gives each one a
//! name, a single atomic word, and an exhaustive loom model
//! (`crates/runtime/tests/loom_models.rs`, built under `--cfg loom` —
//! see `docs/SOUNDNESS.md` for how to run it). [`crate::host`] uses
//! these types directly, so the code the models verify is the code the
//! engine runs.
//!
//! * [`AttemptSlot`] — result-arrival vs. watchdog-deadline: exactly
//!   one of {completed, failed, timed-out} is claimed per dispatched
//!   attempt, no matter how the worker and the watchdog interleave.
//! * [`UnitGate`] — quarantine vs. in-flight retry vs. permanent loss:
//!   the per-unit availability lattice `Active → Quarantined → Active`
//!   with an absorbing `Lost` state a restore can never resurrect.
//! * [`CompletionLatch`] — probation-restore/reclaim vs. run
//!   completion: the undistributed-item pool with a closed bit packed
//!   into the same word, so "the run is over" and "a failed block
//!   re-credits its items" can never both win.

use crate::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Terminal outcome of one dispatched attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The worker finished the kernel and claimed the result.
    Completed,
    /// The worker caught a kernel panic and claimed the failure.
    Failed,
    /// The engine's watchdog claimed the attempt after its deadline.
    TimedOut,
}

const ATTEMPT_INFLIGHT: u8 = 0;
const ATTEMPT_COMPLETED: u8 = 1;
const ATTEMPT_FAILED: u8 = 2;
const ATTEMPT_TIMEDOUT: u8 = 3;

/// One dispatched attempt's claim word: the worker thread (completion
/// or caught panic) and the engine's watchdog (deadline blowout) race
/// to move it out of `InFlight`, and exactly one transition wins.
///
/// The loser drops its side entirely: a worker whose claim fails sends
/// nothing (the block was already re-dispatched elsewhere), a watchdog
/// whose claim fails leaves the unit alone (the result beat the
/// deadline and is already in the channel).
///
/// Ordering: claims use `AcqRel` on success so the winner's claim
/// *happens-before* any engine-side read that observes it, and
/// `Acquire` on failure so the loser sees the winner's transition. The
/// uniqueness of the claim needs only atomicity, but the stronger
/// ordering makes the slot safe to hang payloads off in the future and
/// costs nothing on x86.
#[derive(Debug)]
pub struct AttemptSlot {
    state: AtomicU8,
}

impl Default for AttemptSlot {
    fn default() -> Self {
        AttemptSlot::new()
    }
}

impl AttemptSlot {
    /// A fresh in-flight attempt.
    pub fn new() -> AttemptSlot {
        AttemptSlot {
            state: AtomicU8::new(ATTEMPT_INFLIGHT),
        }
    }

    fn claim(&self, terminal: u8) -> bool {
        self.state
            .compare_exchange(
                ATTEMPT_INFLIGHT,
                terminal,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Worker side: claim successful completion. `false` means the
    /// watchdog (or a caught panic) already claimed the attempt and the
    /// result must be discarded.
    pub fn try_complete(&self) -> bool {
        self.claim(ATTEMPT_COMPLETED)
    }

    /// Worker side: claim a caught kernel panic. `false` means the
    /// watchdog already claimed the attempt.
    pub fn try_fail(&self) -> bool {
        self.claim(ATTEMPT_FAILED)
    }

    /// Watchdog side: claim a blown deadline. `false` means the worker
    /// delivered an outcome first and the unit must not be declared
    /// lost for this attempt.
    pub fn try_timeout(&self) -> bool {
        self.claim(ATTEMPT_TIMEDOUT)
    }

    /// The claimed outcome, if any thread has claimed one yet.
    pub fn outcome(&self) -> Option<AttemptOutcome> {
        match self.state.load(Ordering::Acquire) {
            ATTEMPT_COMPLETED => Some(AttemptOutcome::Completed),
            ATTEMPT_FAILED => Some(AttemptOutcome::Failed),
            ATTEMPT_TIMEDOUT => Some(AttemptOutcome::TimedOut),
            _ => None,
        }
    }
}

const GATE_ACTIVE: u8 = 0;
const GATE_QUARANTINED: u8 = 1;
const GATE_LOST: u8 = 2;

/// Per-unit availability lattice: `Active ⇄ Quarantined`, with `Lost`
/// absorbing. A probation restore (`try_restore`) can only undo a
/// quarantine — once a unit is lost (dead or wedged worker) no
/// interleaving of restores brings it back, which is exactly the
/// invariant the probation-vs-loss loom model checks.
///
/// Ordering: all transitions are `AcqRel`/`Acquire` compare-exchanges;
/// the gate guards dispatch decisions made *after* observing it, so
/// acquire loads keep those decisions from floating above the
/// transition.
#[derive(Debug)]
pub struct UnitGate {
    state: AtomicU8,
}

impl Default for UnitGate {
    fn default() -> Self {
        UnitGate::new()
    }
}

impl UnitGate {
    /// A fresh, active unit.
    pub fn new() -> UnitGate {
        UnitGate {
            state: AtomicU8::new(GATE_ACTIVE),
        }
    }

    /// Quarantine an active unit. `false` when the unit is already
    /// quarantined or permanently lost.
    pub fn try_quarantine(&self) -> bool {
        self.state
            .compare_exchange(
                GATE_ACTIVE,
                GATE_QUARANTINED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// End a probation window: restore a quarantined unit. `false`
    /// when the unit is not quarantined — in particular when it was
    /// lost after the quarantine, which must win over the restore.
    pub fn try_restore(&self) -> bool {
        self.state
            .compare_exchange(
                GATE_QUARANTINED,
                GATE_ACTIVE,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Permanently remove the unit (dead or wedged worker). Returns
    /// `true` exactly once — the caller that wins performs the
    /// teardown (events, policy notification); later calls are no-ops.
    pub fn mark_lost(&self) -> bool {
        self.state.swap(GATE_LOST, Ordering::AcqRel) != GATE_LOST
    }

    /// Is the unit currently dispatchable?
    pub fn is_active(&self) -> bool {
        self.state.load(Ordering::Acquire) == GATE_ACTIVE
    }

    /// Has the unit been permanently lost?
    pub fn is_lost(&self) -> bool {
        self.state.load(Ordering::Acquire) == GATE_LOST
    }
}

/// High bit of the latch word: the run has completed distribution.
const LATCH_CLOSED: u64 = 1 << 63;

/// The undistributed-item pool with run-completion folded into the
/// same atomic word, so `take`, `recredit` (failed-block re-credit)
/// and `try_close` (run completion) are mutually linearizable: either
/// a re-credit lands before the close observes an empty pool (and the
/// close fails), or the close wins (and the re-credit reports `false`
/// so the caller knows the items were not returned).
///
/// The packed representation is the point: a separate `closed` flag
/// plus a counter admits the interleaving where a re-credit slips in
/// between "counter is zero" and "set closed", silently resurrecting a
/// completed run. One compare-exchange word cannot.
///
/// Item counts are bounded by the application's `total_items`, far
/// below 2⁶³, so the closed bit can never be reached by credit
/// arithmetic (debug-asserted in [`CompletionLatch::recredit`]).
#[derive(Debug)]
pub struct CompletionLatch {
    word: AtomicU64,
}

impl CompletionLatch {
    /// A latch holding `total` undistributed items.
    pub fn new(total: u64) -> CompletionLatch {
        debug_assert!(total < LATCH_CLOSED, "item count overflows the latch");
        CompletionLatch {
            word: AtomicU64::new(total),
        }
    }

    /// Items not yet distributed (0 after a close).
    pub fn remaining(&self) -> u64 {
        self.word.load(Ordering::Acquire) & !LATCH_CLOSED
    }

    /// Has the run been closed out?
    pub fn is_closed(&self) -> bool {
        self.word.load(Ordering::Acquire) & LATCH_CLOSED != 0
    }

    /// Debit up to `want` items for a dispatch. Returns the number
    /// actually taken: less when the pool is low, 0 when it is empty
    /// or the run already closed.
    pub fn take(&self, want: u64) -> u64 {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            if cur & LATCH_CLOSED != 0 {
                return 0;
            }
            let got = want.min(cur);
            if got == 0 {
                return 0;
            }
            match self.word.compare_exchange_weak(
                cur,
                cur - got,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return got,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return a failed block's items to the pool. `false` when the run
    /// already closed — the caller must treat the items as
    /// undeliverable instead of assuming they will be re-dispatched.
    pub fn recredit(&self, items: u64) -> bool {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            if cur & LATCH_CLOSED != 0 {
                return false;
            }
            let next = cur + items;
            debug_assert!(next < LATCH_CLOSED, "re-credit overflows the latch");
            match self
                .word
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Close the run. Succeeds only when the pool is empty and no one
    /// closed it before; a concurrent `recredit` that lands first makes
    /// this fail, and a close that lands first makes the re-credit
    /// fail. Exactly one of the two racers wins.
    pub fn try_close(&self) -> bool {
        self.word
            .compare_exchange(0, LATCH_CLOSED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

// The unit tests cover the sequential contract; the interleaving
// guarantees are checked by the loom models in
// `crates/runtime/tests/loom_models.rs`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_slot_first_claim_wins() {
        let s = AttemptSlot::new();
        assert_eq!(s.outcome(), None);
        assert!(s.try_complete());
        assert!(!s.try_timeout());
        assert!(!s.try_fail());
        assert_eq!(s.outcome(), Some(AttemptOutcome::Completed));

        let s = AttemptSlot::new();
        assert!(s.try_timeout());
        assert!(!s.try_complete());
        assert_eq!(s.outcome(), Some(AttemptOutcome::TimedOut));

        let s = AttemptSlot::new();
        assert!(s.try_fail());
        assert!(!s.try_fail());
        assert_eq!(s.outcome(), Some(AttemptOutcome::Failed));
    }

    #[test]
    fn unit_gate_lattice() {
        let g = UnitGate::new();
        assert!(g.is_active());
        assert!(!g.try_restore(), "restore needs a quarantine first");
        assert!(g.try_quarantine());
        assert!(!g.is_active());
        assert!(!g.try_quarantine(), "double quarantine rejected");
        assert!(g.try_restore());
        assert!(g.is_active());
    }

    #[test]
    fn unit_gate_lost_is_absorbing() {
        let g = UnitGate::new();
        assert!(g.try_quarantine());
        assert!(g.mark_lost(), "first loss reports true");
        assert!(!g.mark_lost(), "second loss is a no-op");
        assert!(!g.try_restore(), "a lost unit never restores");
        assert!(!g.try_quarantine());
        assert!(g.is_lost());
        assert!(!g.is_active());
    }

    #[test]
    fn latch_take_and_recredit() {
        let l = CompletionLatch::new(10);
        assert_eq!(l.remaining(), 10);
        assert_eq!(l.take(4), 4);
        assert_eq!(l.take(100), 6, "take clamps to the pool");
        assert_eq!(l.take(1), 0);
        assert!(l.recredit(3));
        assert_eq!(l.remaining(), 3);
        assert!(!l.is_closed());
    }

    #[test]
    fn latch_close_requires_empty_pool() {
        let l = CompletionLatch::new(2);
        assert!(!l.try_close(), "items still undistributed");
        assert_eq!(l.take(2), 2);
        assert!(l.try_close());
        assert!(l.is_closed());
        assert!(!l.try_close(), "single close");
        assert!(!l.recredit(1), "re-credit after close is refused");
        assert_eq!(l.remaining(), 0);
        assert_eq!(l.take(1), 0);
    }
}
