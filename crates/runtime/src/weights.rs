//! Per-item work weights: the cost currency of the range model.
//!
//! Every layer of the stack used to treat "how many items" and "how
//! much work" as the same number, which only holds for regular
//! workloads. [`Weights`] separates the two: a claim against the
//! [`WorkPool`](crate::WorkPool) is budgeted in *cost units*, and the
//! pool answers with a contiguous item range whose total weight
//! approximates the budget. Uniform weights are a fast path in which
//! cost and item count coincide exactly, so regular workloads compile
//! to the pre-weights behavior bit for bit.
//!
//! Irregular workloads (sparse matrices, graphs) provide one cost per
//! item; the weights store the prefix sums, so range cost is two
//! lookups and budget→items conversion is a binary search. Per-item
//! costs are clamped to at least 1 cost unit: a zero-cost item could
//! satisfy no budget and would wedge cost-budgeted claiming.

use crate::sync::Arc;

/// Per-item work costs over the application's item space `0..n`.
///
/// Shared as `Arc<Weights>` between the pool, the driver, and the
/// engines — the prefix table can be millions of entries and is
/// read-only for the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Weights {
    /// Every item costs exactly 1 unit: cost ≡ item count. The default,
    /// and the fast path all pre-weights callers land on.
    Uniform,
    /// Per-item costs, stored as prefix sums: `prefix[i]` is the total
    /// cost of items `0..i`, so `prefix.len()` is `n + 1` and
    /// `prefix[0] == 0`. Strictly increasing (costs are clamped ≥ 1).
    PerItem {
        /// The prefix-sum table.
        prefix: Vec<u64>,
    },
}

impl Default for Weights {
    fn default() -> Self {
        Weights::Uniform
    }
}

impl Weights {
    /// Build per-item weights from one cost per item. Costs are clamped
    /// to at least 1 unit so every range has positive weight and
    /// cost-budgeted claims always make progress.
    pub fn per_item(costs: impl IntoIterator<Item = u64>) -> Weights {
        let iter = costs.into_iter();
        let mut prefix = Vec::with_capacity(iter.size_hint().0 + 1);
        prefix.push(0u64);
        let mut acc = 0u64;
        for c in iter {
            acc = acc.saturating_add(c.max(1));
            prefix.push(acc);
        }
        Weights::PerItem { prefix }
    }

    /// Uniform weights behind the shared handle every consumer takes.
    pub fn uniform() -> Arc<Weights> {
        Arc::new(Weights::Uniform)
    }

    /// Is this the uniform fast path?
    pub fn is_uniform(&self) -> bool {
        matches!(self, Weights::Uniform)
    }

    /// Prefix value at item boundary `i`. Items past the end of the
    /// table cost 1 unit each — a workload larger than the cost vector
    /// degrades to uniform on the tail instead of panicking (the run
    /// path must not index out of bounds).
    fn at(prefix: &[u64], i: u64) -> u64 {
        let n = prefix.len().saturating_sub(1) as u64;
        if i <= n {
            prefix.get(i as usize).copied().unwrap_or(0)
        } else {
            prefix.last().copied().unwrap_or(0).saturating_add(i - n)
        }
    }

    /// Total cost of the contiguous range `offset..offset + items`.
    /// Under uniform weights this is `items`.
    pub fn cost(&self, offset: u64, items: u64) -> u64 {
        match self {
            Weights::Uniform => items,
            Weights::PerItem { prefix } => {
                let end = Self::at(prefix, offset.saturating_add(items));
                end.saturating_sub(Self::at(prefix, offset))
            }
        }
    }

    /// Total cost of the whole `0..total_items` space.
    pub fn total_cost(&self, total_items: u64) -> u64 {
        self.cost(0, total_items)
    }

    /// How many of the `avail` items starting at `offset` a claim of
    /// `budget` cost units buys: the largest `k ≤ avail` with
    /// `cost(offset, k) ≤ budget`, found by binary search on the prefix
    /// sums — except at least 1 when both `avail` and `budget` are
    /// positive, so a budget smaller than the next item's cost still
    /// makes progress (the paper's same-size re-dispatch must never
    /// stall on one expensive row). Under uniform weights this is
    /// `min(budget, avail)`.
    pub fn items_for_budget(&self, offset: u64, avail: u64, budget: u64) -> u64 {
        if avail == 0 || budget == 0 {
            return 0;
        }
        match self {
            Weights::Uniform => budget.min(avail),
            Weights::PerItem { prefix } => {
                let cap = Self::at(prefix, offset).saturating_add(budget);
                if Self::at(prefix, offset.saturating_add(1)) > cap {
                    return 1;
                }
                let (mut lo, mut hi) = (1u64, avail);
                while lo < hi {
                    let mid = lo + (hi - lo).div_ceil(2);
                    if Self::at(prefix, offset.saturating_add(mid)) <= cap {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                lo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cost_is_item_count() {
        let w = Weights::Uniform;
        assert_eq!(w.cost(0, 10), 10);
        assert_eq!(w.cost(99, 7), 7);
        assert_eq!(w.total_cost(1000), 1000);
        assert_eq!(w.items_for_budget(5, 100, 30), 30);
        assert_eq!(w.items_for_budget(5, 20, 30), 20, "clamped to avail");
        assert_eq!(w.items_for_budget(5, 20, 0), 0);
        assert_eq!(w.items_for_budget(5, 0, 30), 0);
    }

    #[test]
    fn per_item_prefix_sums_and_range_cost() {
        let w = Weights::per_item([3, 1, 4, 1, 5]);
        assert_eq!(w.total_cost(5), 14);
        assert_eq!(w.cost(0, 1), 3);
        assert_eq!(w.cost(0, 3), 8);
        assert_eq!(w.cost(2, 2), 5);
        assert_eq!(w.cost(4, 1), 5);
        assert_eq!(w.cost(5, 0), 0);
    }

    #[test]
    fn zero_costs_are_clamped_to_one() {
        let w = Weights::per_item([0, 0, 2]);
        assert_eq!(w.cost(0, 1), 1);
        assert_eq!(w.cost(1, 1), 1);
        assert_eq!(w.total_cost(3), 4);
    }

    #[test]
    fn budget_buys_the_largest_affordable_range() {
        let w = Weights::per_item([3, 1, 4, 1, 5]);
        // cost(0,1)=3, cost(0,2)=4, cost(0,3)=8.
        assert_eq!(w.items_for_budget(0, 5, 4), 2);
        assert_eq!(w.items_for_budget(0, 5, 7), 2);
        assert_eq!(w.items_for_budget(0, 5, 8), 3);
        assert_eq!(w.items_for_budget(0, 5, 1000), 5, "clamped to avail");
        // A budget below the first item's cost still buys that item.
        assert_eq!(w.items_for_budget(4, 1, 2), 1);
        assert_eq!(w.items_for_budget(0, 5, 1), 1);
    }

    #[test]
    fn budget_respects_the_offset() {
        let w = Weights::per_item([10, 1, 1, 1, 10]);
        assert_eq!(w.items_for_budget(1, 4, 3), 3);
        assert_eq!(w.items_for_budget(1, 4, 13), 4);
        assert_eq!(w.items_for_budget(1, 4, 12), 3);
    }

    #[test]
    fn tail_past_the_table_costs_one_per_item() {
        let w = Weights::per_item([2, 2]);
        // Items 2.. are uncosted: they degrade to 1 unit each.
        assert_eq!(w.cost(0, 4), 6);
        assert_eq!(w.cost(2, 3), 3);
        assert_eq!(w.items_for_budget(2, 10, 4), 4);
    }

    #[test]
    fn cover_of_fragments_sums_to_total_cost() {
        let w = Weights::per_item((0..97).map(|i| (i * 7) % 13 + 1));
        let total = w.total_cost(97);
        let mut sum = 0;
        let mut off = 0;
        while off < 97 {
            let n = w.items_for_budget(off, 97 - off, 11);
            assert!(n >= 1);
            sum += w.cost(off, n);
            off += n;
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn default_is_uniform() {
        assert!(Weights::default().is_uniform());
        assert!(Weights::uniform().is_uniform());
        assert!(!Weights::per_item([1]).is_uniform());
    }
}
