//! Synchronization-primitive shim: the single place `plb-runtime` is
//! allowed to name `std::sync` or `parking_lot` (enforced by
//! `cargo xtask lint`, pass `sync-shim`).
//!
//! Normally the module re-exports the production primitives; under
//! `--cfg loom` it re-exports [loom](https://docs.rs/loom)'s modeled
//! twins so the concurrency protocols in [`crate::protocol`] can be
//! exhaustively model-checked. The loom crate is *not* a manifest
//! dependency — the loom CI job (and a local run, see
//! `docs/SOUNDNESS.md`) adds it with `cargo add loom --dev` before
//! building with `RUSTFLAGS="--cfg loom"`, which keeps the default
//! build graph identical to the seed.
//!
//! API notes:
//!
//! * [`Mutex`] exposes the `parking_lot` calling convention
//!   (`lock()` returns the guard directly). Under loom the wrapper
//!   below adapts loom's poisoning `lock()` to the same shape, so call
//!   sites are identical under both configurations.
//! * `Arc` is re-exported from `std` in **both** configurations: the
//!   modeled protocols never rely on `Arc`'s reference counting for
//!   ordering (loom's `Arc` exists to catch leaks and count-based
//!   races, which none of the models exercise), and `std::sync::Arc`
//!   supports unsized coercion (`Arc<dyn Codelet>`) which loom's
//!   wrapper cannot provide on stable Rust.

#[cfg(not(loom))]
mod imp {
    pub use parking_lot::{Mutex, MutexGuard};
    pub use std::sync::atomic;
    pub use std::sync::Arc;
    pub use std::thread;
}

#[cfg(loom)]
mod imp {
    pub use loom::sync::atomic;
    pub use std::sync::Arc;

    /// `loom::thread`, plus a `sleep` that yields to the model (loom
    /// explores interleavings, not wall-clock time).
    pub mod thread {
        pub use loom::thread::*;

        /// In a loom model, sleeping is just another scheduling point.
        pub fn sleep(_dur: std::time::Duration) {
            loom::thread::yield_now();
        }
    }

    /// A `parking_lot`-shaped adapter over `loom::sync::Mutex`.
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    /// Guard type matching the adapter.
    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Create the mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex(loom::sync::Mutex::new(value))
        }

        /// Lock, returning the guard directly (loom models have no
        /// panicking threads, so poisoning is unreachable; a poisoned
        /// lock falls through to the inner guard).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            match self.0.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }
}

pub use imp::{atomic, thread, Arc, Mutex, MutexGuard};
