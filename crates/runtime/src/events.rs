//! Structured decision-level event tracing.
//!
//! The [`trace`](crate::trace) module records what each unit was *doing*
//! (busy Compute/Transfer segments); this module records what the stack
//! *decided* and *observed* — when a probe block was issued, when a curve
//! was refit and with what quality, when the interior-point solver ran
//! and how it converged, when a rebalance fired and why, when a device
//! failed or slowed down. Together the two streams make every run a
//! replayable, diagnosable artifact (the data behind the paper's Figs.
//! 3, 6 and 7 at decision granularity).
//!
//! The full schema — every variant, field meanings, units — is
//! documented in `docs/OBSERVABILITY.md`, together with the JSONL file
//! format produced by [`write_jsonl`] and read back by
//! [`TraceData::parse_jsonl`], and worked diagnosis examples.
//!
//! Design notes:
//!
//! * Events are recorded into an [`EventSink`], a bounded ring buffer:
//!   recording never allocates past the configured capacity and never
//!   blocks, so emission is safe on the scheduling hot path. When the
//!   buffer wraps, the *oldest* events are overwritten and counted in
//!   [`EventSink::dropped`] — recent history is what debugging needs.
//! * All emission happens on the scheduler thread (both engines route
//!   policy callbacks and assignments through a single thread), so the
//!   sink needs no lock.
//! * Timestamps are clamped non-decreasing per processing unit, so
//!   per-PU event order in the buffer is always chronological even when
//!   an event carries a scheduled future time (e.g. a task start behind
//!   a scheduler-overhead window) and a perturbation lands inside that
//!   window.

use crate::trace::{Segment, SegmentKind, Trace};
use serde::{Deserialize, Serialize};

/// Schema version stamped into every exported trace header.
/// Version history: 1 = PR 1 baseline; 2 adds the fault-tolerance kinds
/// (`task_failed`, `task_retry`, `pu_quarantined`); 3 adds the run-level
/// durability kinds (`checkpoint_written`, `run_resumed`); 4 adds the
/// elastic-capacity kinds (`pu_joined`, `drift_applied`, `restabilized`,
/// `device_restored_ignored`); 5 adds the weighted-work `cost` field to
/// `task_submit` and `task_finish` (cost units of the block; equals
/// `items` under uniform weights); 6 adds the cluster-tier kinds
/// (`node_joined`, `node_quarantined`, `migration_sent`,
/// `migration_retried`, `cover_recredited`).
pub const TRACE_FORMAT_VERSION: u32 = 6;

/// Default ring-buffer capacity (events).
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 16;

/// What happened. Field units: times in seconds (`*_s` suffix), sizes in
/// work items. See `docs/OBSERVABILITY.md` for the 1:1 schema reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EventKind {
    /// A run began (`pu` is `None`).
    RunStart {
        /// Policy name driving the run.
        policy: String,
        /// Items the application will process.
        total_items: u64,
        /// Processing units in the cluster.
        n_pus: usize,
    },
    /// The engine accepted an assignment for `pu`.
    TaskSubmit {
        /// Engine-assigned task id.
        task: u64,
        /// Items in the task's block.
        items: u64,
        /// Weight of the block in cost units ([`crate::Weights`]);
        /// equals `items` under uniform weights. Trace v5; absent in
        /// older traces and deserialized as 0.
        #[serde(default)]
        cost: u64,
    },
    /// The task began occupying its unit (may trail the submit when a
    /// scheduler-overhead window delays it).
    TaskStart {
        /// Engine-assigned task id.
        task: u64,
        /// Items in the task's block.
        items: u64,
    },
    /// The task completed.
    TaskFinish {
        /// Engine-assigned task id.
        task: u64,
        /// Items in the task's block.
        items: u64,
        /// Weight of the block in cost units; equals `items` under
        /// uniform weights. Trace v5; absent in older traces and
        /// deserialized as 0.
        #[serde(default)]
        cost: u64,
        /// Measured input-transfer time, seconds.
        xfer_s: f64,
        /// Measured kernel time, seconds.
        proc_s: f64,
    },
    /// A task attempt failed on its unit: the kernel panicked, the task
    /// blew its deadline, or the worker infrastructure died. The items
    /// are either retried in place or re-credited to the pool.
    TaskFailed {
        /// Engine-assigned task id.
        task: u64,
        /// Items in the task's block.
        items: u64,
        /// 0-based attempt number that failed (0 = first dispatch).
        attempt: u32,
        /// `"panic"`, `"deadline"` or `"worker-lost"`.
        reason: String,
    },
    /// A failed block is being retried on the same unit after an
    /// exponential backoff.
    TaskRetry {
        /// Engine-assigned task id (unchanged across retries).
        task: u64,
        /// Items in the task's block.
        items: u64,
        /// 0-based attempt number being dispatched (≥ 1).
        attempt: u32,
        /// Backoff applied before this retry, seconds.
        backoff_s: f64,
    },
    /// `pu` hit the consecutive-failure threshold and left the active
    /// set; its block's items were re-credited and the policy notified
    /// so it redistributes over the survivors.
    PuQuarantined {
        /// Consecutive failures that tripped the threshold.
        failures: u32,
    },
    /// A slowdown perturbation was applied to `pu`.
    SlowdownSet {
        /// Kernel-time multiplier from now on (1.0 = nominal).
        factor: f64,
    },
    /// `pu` failed; its in-flight task (if any) was lost.
    DeviceFailed,
    /// `pu` came back after a failure.
    DeviceRestored,
    /// The run deadlocked: no work in flight, items left, policy silent.
    Stalled {
        /// Items never assigned.
        remaining: u64,
    },
    /// The run completed (`pu` is `None`).
    RunEnd {
        /// Final makespan, seconds.
        makespan_s: f64,
        /// Items processed.
        total_items: u64,
    },
    /// A durability snapshot of the driver state was atomically written
    /// to disk (`pu` is `None`). See `docs/FAULT_TOLERANCE.md`.
    CheckpointWritten {
        /// 0-based snapshot sequence number within the checkpoint file's
        /// lifetime (monotone across a resume).
        seq: u64,
        /// Completed tasks at snapshot time (lifetime total, including
        /// tasks finished before a resume).
        tasks_done: u64,
        /// Items covered by the snapshot's completed ranges.
        completed_items: u64,
    },
    /// The run was restored from a checkpoint instead of starting fresh
    /// (`pu` is `None`): the work pool resumes on the uncovered items
    /// and the policy is re-seeded with the persisted measurements.
    RunResumed {
        /// Sequence number of the snapshot the run resumed from.
        seq: u64,
        /// Items already covered when the run resumed.
        completed_items: u64,
    },
    /// A never-before-seen unit (`pu`) joined the run mid-flight: it was
    /// latent until the global completed-task count reached its
    /// `Join` trigger, and is now eligible for work. Emitted before the
    /// policy is asked whether admitting it pays off
    /// (`docs/FAULT_TOLERANCE.md`, "Elastic capacity").
    PuJoined {
        /// Global completed-task threshold that admitted the unit.
        after_tasks: u64,
    },
    /// The deterministic drift schedule changed `pu`'s kernel-speed
    /// multiplier. Emitted only when the factor differs from the unit's
    /// previous dispatch, so a trace records the drift *trajectory*
    /// rather than one event per task.
    DriftApplied {
        /// Kernel-time multiplier applied from this dispatch on
        /// (1.0 = nominal, 2.0 = twice as slow).
        factor: f64,
    },
    /// A joined unit's measured block times came back inside the
    /// divergence envelope of its fitted curve (or the bounded
    /// post-join observation window elapsed): the split absorbed the
    /// newcomer. `pu` is the joined unit.
    Restabilized {
        /// Rebalances between the join and this event (the cost of
        /// absorbing the unit).
        rebalances: u32,
    },
    /// A `device_restored` (or join) notification reached a policy that
    /// did not override the handler: the restore was silently ignored
    /// and the unit will only receive work if the policy's normal
    /// dispatch path covers it. Debug breadcrumb for traces.
    DeviceRestoredIgnored,

    /// A cluster node (`pu` = node index in the cluster driver) was
    /// admitted — either re-admitted through the acquisition gate after
    /// a partition healed, or accepted into the active set at cluster
    /// start. Trace v6 (`docs/FAULT_TOLERANCE.md`, "Node fault
    /// domains").
    NodeJoined {
        /// Work-pool cost still unclaimed when the node was admitted.
        remaining_cost: u64,
    },
    /// A cluster node (`pu` = node index) left the active set: it
    /// crashed, fell behind a partition, or exhausted its migration
    /// retries. Its unfinished ranges are re-credited to the surviving
    /// nodes' pool. Trace v6.
    NodeQuarantined {
        /// `"crash"`, `"partition"` or `"migration-failures"`.
        reason: String,
    },
    /// A work chunk was migrated from its home shard to another node
    /// over the inter-node link model (`pu` = destination node).
    /// Trace v6.
    MigrationSent {
        /// Engine-assigned task id of the migrated chunk.
        task: u64,
        /// Source node: the home shard owner the chunk migrated away
        /// from.
        from: usize,
        /// Items in the chunk.
        items: u64,
        /// Weight of the chunk in cost units.
        cost: u64,
        /// Payload size charged to the link, bytes.
        bytes: u64,
        /// Modeled transfer time over the (possibly degraded) link,
        /// seconds.
        xfer_s: f64,
    },
    /// A migration missed its delivery deadline (partition or degraded
    /// link) and is being re-sent after an exponential backoff
    /// (`pu` = destination node). Trace v6.
    MigrationRetried {
        /// Engine-assigned task id (unchanged across resends).
        task: u64,
        /// 0-based delivery attempt being dispatched (≥ 1).
        attempt: u32,
        /// Backoff applied before this resend, seconds.
        backoff_s: f64,
    },
    /// Unfinished ranges from a quarantined node (or an undeliverable
    /// migration) were folded back into the shared pool, preserving the
    /// cluster-wide disjoint cover (`pu` = the node whose work was
    /// re-credited). Trace v6.
    CoverRecredited {
        /// Items returned to the pool.
        items: u64,
        /// Weight of the returned range in cost units.
        cost: u64,
    },

    /// PLB-HeC issued a modeling-phase probe block to `pu`.
    ProbeIssued {
        /// Probe block size in items.
        items: u64,
        /// 1-based probe number on this unit.
        round: u32,
    },
    /// A per-unit curve fit was attempted (modeling gate or rebalancing
    /// refit).
    CurveFit {
        /// Gate quality of the processing-time fit `F_p` (R², or the
        /// relative-residual quality for near-constant data).
        r2_f: f64,
        /// Gate quality of the transfer-time fit `G_p`.
        r2_g: f64,
        /// Chosen basis of `F_p`, e.g. `"a + b·x"`.
        basis_f: String,
        /// Samples the fit consumed.
        samples: usize,
        /// Whether the fit cleared its acceptance test: the R² gate when
        /// modeling ends (budget-forced models report `false`), or fit
        /// success on a rebalancing refit (a failed refit keeps the
        /// previous model and reports `false`).
        accepted: bool,
    },
    /// The modeling phase finished (`pu` is `None`).
    ModelingDone {
        /// Items consumed by probing.
        items_used: u64,
    },
    /// A block-size selection (interior-point solve or fallback) ran
    /// (`pu` is `None`).
    BlockSolve {
        /// Items distributed by this round.
        window: u64,
        /// `"interior-point"`, `"fixed-point"` or `"rate-proportional"`.
        method: String,
        /// Interior-point iterations (0 for fallbacks).
        iterations: usize,
        /// Wall-clock cost of the selection, seconds.
        solve_s: f64,
        /// Predicted common finish time of the round, seconds.
        predicted_s: f64,
    },
    /// The rebalance threshold fired (`pu` = the unit whose block
    /// diverged, or the lost device).
    RebalanceTriggered {
        /// `"divergence"` (QoS drift / model error) or `"device-lost"`.
        trigger: String,
        /// Model-predicted block time, seconds (0 for `device-lost`).
        expected_s: f64,
        /// Measured block time, seconds (0 for `device-lost`).
        observed_s: f64,
        /// `|observed − expected| / expected` (0 for `device-lost`).
        divergence: f64,
    },

    /// One interior-point iteration (`pu` is `None`).
    IpmIteration {
        /// 0-based iteration index within its solve.
        iter: usize,
        /// Barrier parameter μ at this iteration.
        mu: f64,
        /// Unperturbed KKT error at the iterate.
        kkt_error: f64,
        /// Constraint violation θ = ‖c(x)‖₁.
        theta: f64,
        /// Filter line-search rejections before acceptance.
        backtracks: usize,
        /// Whether the filter accepted a step this iteration.
        accepted: bool,
    },
    /// An interior-point solve terminated (`pu` is `None`).
    IpmDone {
        /// `"optimal"`, `"max_iterations"` or `"line_search_failure"`.
        status: String,
        /// Iterations used.
        iterations: usize,
    },
}

impl EventKind {
    /// Short machine name of the variant (the JSONL `kind` tag).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run_start",
            EventKind::TaskSubmit { .. } => "task_submit",
            EventKind::TaskStart { .. } => "task_start",
            EventKind::TaskFinish { .. } => "task_finish",
            EventKind::TaskFailed { .. } => "task_failed",
            EventKind::TaskRetry { .. } => "task_retry",
            EventKind::PuQuarantined { .. } => "pu_quarantined",
            EventKind::SlowdownSet { .. } => "slowdown_set",
            EventKind::DeviceFailed => "device_failed",
            EventKind::DeviceRestored => "device_restored",
            EventKind::Stalled { .. } => "stalled",
            EventKind::RunEnd { .. } => "run_end",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::RunResumed { .. } => "run_resumed",
            EventKind::PuJoined { .. } => "pu_joined",
            EventKind::DriftApplied { .. } => "drift_applied",
            EventKind::Restabilized { .. } => "restabilized",
            EventKind::DeviceRestoredIgnored => "device_restored_ignored",
            EventKind::NodeJoined { .. } => "node_joined",
            EventKind::NodeQuarantined { .. } => "node_quarantined",
            EventKind::MigrationSent { .. } => "migration_sent",
            EventKind::MigrationRetried { .. } => "migration_retried",
            EventKind::CoverRecredited { .. } => "cover_recredited",
            EventKind::ProbeIssued { .. } => "probe_issued",
            EventKind::CurveFit { .. } => "curve_fit",
            EventKind::ModelingDone { .. } => "modeling_done",
            EventKind::BlockSolve { .. } => "block_solve",
            EventKind::RebalanceTriggered { .. } => "rebalance_triggered",
            EventKind::IpmIteration { .. } => "ipm_iteration",
            EventKind::IpmDone { .. } => "ipm_done",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global sequence number (gaps reveal ring-buffer overwrites).
    pub seq: u64,
    /// Timestamp, seconds (virtual for the simulator, wall-clock for the
    /// host engine). Non-decreasing per `pu`.
    pub t: f64,
    /// The processing unit the event concerns, when there is one.
    pub pu: Option<usize>,
    /// The event payload.
    #[serde(flatten)]
    pub kind: EventKind,
}

/// Bounded, overwrite-oldest event buffer. See the module docs for the
/// concurrency and clamping contract.
#[derive(Debug, Clone)]
pub struct EventSink {
    buf: Vec<Event>,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    /// Per-PU monotonicity clamp; index = pu, last slot unused for
    /// global events (those clamp against `last_global`).
    last_t: Vec<f64>,
    last_global: f64,
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::new(DEFAULT_SINK_CAPACITY)
    }
}

impl EventSink {
    /// Create a sink holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventSink {
        EventSink {
            buf: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            last_t: Vec::new(),
            last_global: 0.0,
        }
    }

    /// Record one event at time `t` (clamped non-decreasing per unit).
    pub fn record(&mut self, t: f64, pu: Option<usize>, kind: EventKind) {
        let t = if t.is_finite() { t } else { self.last_global };
        let t = match pu {
            Some(p) => {
                if self.last_t.len() <= p {
                    self.last_t.resize(p + 1, 0.0);
                }
                let clamped = t.max(self.last_t[p]);
                self.last_t[p] = clamped;
                clamped
            }
            None => t.max(self.last_global),
        };
        self.last_global = self.last_global.max(t);
        let ev = Event {
            seq: self.next_seq,
            t,
            pu,
            kind,
        };
        self.next_seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Iterate the held events oldest first without copying the buffer
    /// (what [`counters`](EventSink::counters) uses — a periodic
    /// checkpoint must not clone the whole ring to count it).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Aggregate counters over the held events (plus the drop count).
    pub fn counters(&self) -> EventCounters {
        let mut c = EventCounters::from_events(self.iter());
        c.dropped = self.dropped;
        c
    }
}

/// Aggregate event counts of one run — carried on
/// [`RunReport`](crate::metrics::RunReport) so every figure harness sees
/// the decision-level totals without touching the event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounters {
    /// Task submissions accepted by the engine.
    pub tasks_submitted: u64,
    /// Task completions.
    pub tasks_finished: u64,
    /// Modeling-phase probe blocks issued.
    pub probes: u64,
    /// Curve-fit attempts (modeling gate + rebalancing refits).
    pub curve_fits: u64,
    /// Fit attempts that were rejected (previous model kept).
    pub fit_rejections: u64,
    /// Block-size selections (interior-point solve or fallback).
    pub solves: u64,
    /// Rebalance triggers (divergence threshold or device loss).
    pub rebalances: u64,
    /// Interior-point iterations across all solves.
    pub ipm_iterations: u64,
    /// Filter line-search rejections across all solves.
    pub ipm_backtracks: u64,
    /// Perturbations applied (slowdowns, failures, restorations).
    pub perturbations: u64,
    /// Device failures among the perturbations.
    pub device_failures: u64,
    /// Failed task attempts (kernel panics, blown deadlines, worker
    /// infrastructure loss).
    #[serde(default)]
    pub task_failures: u64,
    /// In-place retries of failed blocks.
    #[serde(default)]
    pub task_retries: u64,
    /// Units quarantined after hitting the consecutive-failure
    /// threshold.
    #[serde(default)]
    pub quarantines: u64,
    /// Durability snapshots written (`checkpoint_written`).
    #[serde(default)]
    pub checkpoints: u64,
    /// Resumes from a checkpoint (`run_resumed`; 0 or 1 per process).
    #[serde(default)]
    pub resumes: u64,
    /// Units admitted mid-run (`pu_joined`).
    #[serde(default)]
    pub joins: u64,
    /// Drift-factor changes applied at dispatch (`drift_applied`).
    #[serde(default)]
    pub drift_changes: u64,
    /// Joined units absorbed back into a stable split (`restabilized`).
    #[serde(default)]
    pub restabilizations: u64,
    /// Restore/join notifications a policy left unhandled
    /// (`device_restored_ignored`).
    #[serde(default)]
    pub restores_ignored: u64,
    /// Cluster nodes admitted or re-admitted (`node_joined`).
    #[serde(default)]
    pub node_joins: u64,
    /// Cluster nodes quarantined (`node_quarantined`).
    #[serde(default)]
    pub node_quarantines: u64,
    /// Cross-node work migrations dispatched (`migration_sent`).
    #[serde(default)]
    pub migrations_sent: u64,
    /// Migration delivery retries (`migration_retried`).
    #[serde(default)]
    pub migration_retries: u64,
    /// Cross-node re-credits of unfinished ranges (`cover_recredited`).
    #[serde(default)]
    pub cover_recredits: u64,
    /// Stall errors.
    pub stalls: u64,
    /// Events lost to ring-buffer overwrite (counts may undercount when
    /// nonzero).
    pub dropped: u64,
}

impl EventCounters {
    /// Tally counters from an event stream.
    pub fn from_events<'a>(events: impl Iterator<Item = &'a Event>) -> EventCounters {
        let mut c = EventCounters::default();
        for e in events {
            match &e.kind {
                EventKind::TaskSubmit { .. } => c.tasks_submitted += 1,
                EventKind::TaskFinish { .. } => c.tasks_finished += 1,
                EventKind::ProbeIssued { .. } => c.probes += 1,
                EventKind::CurveFit { accepted, .. } => {
                    c.curve_fits += 1;
                    if !accepted {
                        c.fit_rejections += 1;
                    }
                }
                EventKind::BlockSolve { .. } => c.solves += 1,
                EventKind::RebalanceTriggered { .. } => c.rebalances += 1,
                EventKind::IpmIteration { backtracks, .. } => {
                    c.ipm_iterations += 1;
                    c.ipm_backtracks += *backtracks as u64;
                }
                EventKind::SlowdownSet { .. } | EventKind::DeviceRestored => {
                    c.perturbations += 1;
                }
                EventKind::DeviceFailed => {
                    c.perturbations += 1;
                    c.device_failures += 1;
                }
                EventKind::TaskFailed { .. } => c.task_failures += 1,
                EventKind::TaskRetry { .. } => c.task_retries += 1,
                EventKind::PuQuarantined { .. } => c.quarantines += 1,
                EventKind::CheckpointWritten { .. } => c.checkpoints += 1,
                EventKind::RunResumed { .. } => c.resumes += 1,
                EventKind::PuJoined { .. } => c.joins += 1,
                EventKind::DriftApplied { .. } => c.drift_changes += 1,
                EventKind::Restabilized { .. } => c.restabilizations += 1,
                EventKind::DeviceRestoredIgnored => c.restores_ignored += 1,
                EventKind::NodeJoined { .. } => c.node_joins += 1,
                EventKind::NodeQuarantined { .. } => c.node_quarantines += 1,
                EventKind::MigrationSent { .. } => c.migrations_sent += 1,
                EventKind::MigrationRetried { .. } => c.migration_retries += 1,
                EventKind::CoverRecredited { .. } => c.cover_recredits += 1,
                EventKind::Stalled { .. } => c.stalls += 1,
                EventKind::RunStart { .. }
                | EventKind::TaskStart { .. }
                | EventKind::RunEnd { .. }
                | EventKind::ModelingDone { .. }
                | EventKind::IpmDone { .. } => {}
            }
        }
        c
    }

    /// Accumulate another set of counters into this one, field by field.
    /// A resumed run carries the pre-crash totals from its checkpoint
    /// and merges them into the final report, so lifetime counts survive
    /// the process boundary.
    pub fn merge(&mut self, other: &EventCounters) {
        self.tasks_submitted += other.tasks_submitted;
        self.tasks_finished += other.tasks_finished;
        self.probes += other.probes;
        self.curve_fits += other.curve_fits;
        self.fit_rejections += other.fit_rejections;
        self.solves += other.solves;
        self.rebalances += other.rebalances;
        self.ipm_iterations += other.ipm_iterations;
        self.ipm_backtracks += other.ipm_backtracks;
        self.perturbations += other.perturbations;
        self.device_failures += other.device_failures;
        self.task_failures += other.task_failures;
        self.task_retries += other.task_retries;
        self.quarantines += other.quarantines;
        self.checkpoints += other.checkpoints;
        self.resumes += other.resumes;
        self.joins += other.joins;
        self.drift_changes += other.drift_changes;
        self.restabilizations += other.restabilizations;
        self.restores_ignored += other.restores_ignored;
        self.node_joins += other.node_joins;
        self.node_quarantines += other.node_quarantines;
        self.migrations_sent += other.migrations_sent;
        self.migration_retries += other.migration_retries;
        self.cover_recredits += other.cover_recredits;
        self.stalls += other.stalls;
        self.dropped += other.dropped;
    }
}

/// First line of an exported trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Trace format version ([`TRACE_FORMAT_VERSION`]).
    pub version: u32,
    /// Policy that produced the run.
    pub policy: String,
    /// Unit display names, indexed by unit id.
    pub pu_names: Vec<String>,
}

/// Serialize a run (header, busy segments, decision events) to JSONL:
/// one JSON object per line, each tagged with a `"rec"` field of
/// `"header"`, `"segment"` or `"event"`. The format is documented in
/// `docs/OBSERVABILITY.md`.
// Serializing plain data structs (no maps with non-string keys, no
// custom Serialize impls) cannot fail; the expects below are
// unreachable rather than error paths (audited in
// crates/xtask/allowlists/panic-freedom.txt).
pub fn write_jsonl(header: &TraceHeader, segments: &[Segment], events: &[Event]) -> String {
    fn tagged(rec: &str, value: serde_json::Value) -> String {
        let mut obj = value;
        if let Some(map) = obj.as_object_mut() {
            map.insert("rec".into(), serde_json::Value::String(rec.into()));
        }
        serde_json::to_string(&obj).expect("trace records serialize")
    }
    let mut out = String::new();
    out.push_str(&tagged(
        "header",
        serde_json::to_value(header).expect("header serializes"),
    ));
    out.push('\n');
    for s in segments {
        out.push_str(&tagged(
            "segment",
            serde_json::to_value(s).expect("segment serializes"),
        ));
        out.push('\n');
    }
    for e in events {
        out.push_str(&tagged(
            "event",
            serde_json::to_value(e).expect("event serializes"),
        ));
        out.push('\n');
    }
    out
}

/// A parsed trace file: everything needed to re-derive Gantt charts,
/// idle accounting, fit timelines and rebalance history offline.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// The file header.
    pub header: TraceHeader,
    /// Busy segments, in recorded order.
    pub segments: Vec<Segment>,
    /// Decision events, oldest first.
    pub events: Vec<Event>,
}

impl TraceData {
    /// Parse a JSONL trace produced by [`write_jsonl`].
    pub fn parse_jsonl(text: &str) -> Result<TraceData, String> {
        let mut header: Option<TraceHeader> = None;
        let mut segments = Vec::new();
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut v: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
            let rec = v
                .get("rec")
                .and_then(|r| r.as_str())
                .ok_or_else(|| format!("line {}: missing \"rec\" tag", lineno + 1))?
                .to_string();
            if let Some(map) = v.as_object_mut() {
                map.remove("rec");
            }
            match rec.as_str() {
                "header" => {
                    let h: TraceHeader = serde_json::from_value(v)
                        .map_err(|e| format!("line {}: bad header: {e}", lineno + 1))?;
                    if h.version > TRACE_FORMAT_VERSION {
                        return Err(format!(
                            "trace format version {} is newer than supported {}",
                            h.version, TRACE_FORMAT_VERSION
                        ));
                    }
                    header = Some(h);
                }
                "segment" => segments.push(
                    serde_json::from_value(v)
                        .map_err(|e| format!("line {}: bad segment: {e}", lineno + 1))?,
                ),
                "event" => events.push(
                    serde_json::from_value(v)
                        .map_err(|e| format!("line {}: bad event: {e}", lineno + 1))?,
                ),
                other => return Err(format!("line {}: unknown record \"{other}\"", lineno + 1)),
            }
        }
        let header = header.ok_or("trace file has no header line")?;
        Ok(TraceData {
            header,
            segments,
            events,
        })
    }

    /// Number of processing units the trace covers.
    pub fn n_pus(&self) -> usize {
        self.header.pu_names.len().max(
            self.segments
                .iter()
                .map(|s| s.pu + 1)
                .chain(self.events.iter().filter_map(|e| e.pu.map(|p| p + 1)))
                .max()
                .unwrap_or(0),
        )
    }

    /// Rebuild a [`Trace`] from the stored segments (for Gantt rendering
    /// and idle accounting).
    pub fn to_trace(&self) -> Trace {
        Trace::from_segments(self.n_pus(), self.segments.clone())
    }

    /// Aggregate event counters of the stored stream.
    pub fn counters(&self) -> EventCounters {
        EventCounters::from_events(self.events.iter())
    }

    /// Human-readable run summary: per-PU Gantt totals, idle-time
    /// breakdown, fit-quality timeline, solver activity, and rebalance
    /// history. This is what `plb trace` prints.
    pub fn summarize(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let n = self.n_pus();
        let trace = self.to_trace();
        let ms = trace.makespan();
        let name_of = |p: usize| -> String {
            self.header
                .pu_names
                .get(p)
                .cloned()
                .unwrap_or_else(|| format!("PU{p}"))
        };
        let name_w = (0..n).map(|p| name_of(p).len()).max().unwrap_or(4).max(4);

        let _ = writeln!(out, "policy    : {}", self.header.policy);
        let _ = writeln!(out, "makespan  : {ms:.6} s");
        let _ = writeln!(
            out,
            "records   : {} segments, {} events",
            self.segments.len(),
            self.events.len()
        );

        // Per-PU Gantt summary and idle breakdown.
        let _ = writeln!(out, "\nper-unit time accounting:");
        let _ = writeln!(
            out,
            "  {:<name_w$} {:>7} {:>11} {:>11} {:>11} {:>7}",
            "unit", "tasks", "compute", "transfer", "idle", "idle%"
        );
        for p in 0..n {
            let (mut compute, mut transfer, mut tasks) = (0.0f64, 0.0f64, 0usize);
            for s in self.segments.iter().filter(|s| s.pu == p) {
                match s.kind {
                    SegmentKind::Compute => {
                        compute += s.duration();
                        tasks += 1;
                    }
                    SegmentKind::Transfer => transfer += s.duration(),
                }
            }
            let idle = (ms - compute - transfer).max(0.0);
            let idle_pct = if ms > 0.0 { idle / ms * 100.0 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<name_w$} {:>7} {:>10.4}s {:>10.4}s {:>10.4}s {:>6.1}%",
                name_of(p),
                tasks,
                compute,
                transfer,
                idle,
                idle_pct
            );
        }

        // Fit-quality timeline.
        let fits: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CurveFit { .. }))
            .collect();
        if !fits.is_empty() {
            let _ = writeln!(out, "\nfit-quality timeline:");
            for e in &fits {
                if let EventKind::CurveFit {
                    r2_f,
                    r2_g,
                    basis_f,
                    samples,
                    accepted,
                } = &e.kind
                {
                    let pu = e.pu.map(name_of).unwrap_or_else(|| "-".into());
                    let _ = writeln!(
                        out,
                        "  t={:>10.6}s {:<name_w$} R²(F)={:.3} R²(G)={:.3} n={:<3} {} {}",
                        e.t,
                        pu,
                        r2_f,
                        r2_g,
                        samples,
                        if *accepted { "accepted" } else { "REJECTED" },
                        basis_f
                    );
                }
            }
        }

        // Solver activity.
        let solves: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BlockSolve { .. }))
            .collect();
        if !solves.is_empty() {
            let _ = writeln!(out, "\nblock-size selections:");
            for e in &solves {
                if let EventKind::BlockSolve {
                    window,
                    method,
                    iterations,
                    solve_s,
                    predicted_s,
                } = &e.kind
                {
                    let _ = writeln!(
                        out,
                        "  t={:>10.6}s window={:<9} {:<16} iters={:<3} solve={:.6}s predicted={:.6}s",
                        e.t, window, method, iterations, solve_s, predicted_s
                    );
                }
            }
        }

        // Rebalance history.
        let rebalances: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RebalanceTriggered { .. }))
            .collect();
        let _ = writeln!(out, "\nrebalances: {}", rebalances.len());
        for e in &rebalances {
            if let EventKind::RebalanceTriggered {
                trigger,
                expected_s,
                observed_s,
                divergence,
            } = &e.kind
            {
                let pu = e.pu.map(name_of).unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "  t={:>10.6}s {:<name_w$} {} expected={:.6}s observed={:.6}s divergence={:.1}%",
                    e.t,
                    pu,
                    trigger,
                    expected_s,
                    observed_s,
                    divergence * 100.0
                );
            }
        }

        // Elastic-capacity history: one line per mid-run join, with the
        // time the split took to absorb the newcomer and how many
        // rebalances that cost (docs/FAULT_TOLERANCE.md).
        let joins: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PuJoined { .. }))
            .collect();
        if !joins.is_empty() {
            let _ = writeln!(out, "\nelastic capacity:");
            for j in &joins {
                let pu = j.pu.map(name_of).unwrap_or_else(|| "-".into());
                let after = match j.kind {
                    EventKind::PuJoined { after_tasks } => after_tasks,
                    _ => 0,
                };
                // The matching restabilized event, if the run got there.
                let settled = self.events.iter().find(|e| {
                    e.pu == j.pu && e.t >= j.t && matches!(e.kind, EventKind::Restabilized { .. })
                });
                match settled {
                    Some(s) => {
                        let cost = match s.kind {
                            EventKind::Restabilized { rebalances } => rebalances,
                            _ => 0,
                        };
                        let _ = writeln!(
                            out,
                            "  t={:>10.6}s {:<name_w$} joined after {} tasks; restabilized in {:.6}s ({} rebalances)",
                            j.t,
                            pu,
                            after,
                            s.t - j.t,
                            cost
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  t={:>10.6}s {:<name_w$} joined after {} tasks; never restabilized",
                            j.t, pu, after
                        );
                    }
                }
            }
        }

        // Cluster tier: per-node migration and fault-domain accounting
        // (trace v6; `pu` is the node index in a cluster trace).
        let cluster_active = self.events.iter().any(|e| {
            matches!(
                e.kind,
                EventKind::NodeJoined { .. }
                    | EventKind::NodeQuarantined { .. }
                    | EventKind::MigrationSent { .. }
                    | EventKind::MigrationRetried { .. }
                    | EventKind::CoverRecredited { .. }
            )
        });
        if cluster_active {
            #[derive(Default)]
            struct NodeAgg {
                mig_in: u64,
                mig_out: u64,
                retries: u64,
                recredits: u64,
                recredited_cost: u64,
                quarantines: Vec<String>,
            }
            let mut nodes: std::collections::BTreeMap<usize, NodeAgg> = Default::default();
            for e in &self.events {
                match &e.kind {
                    EventKind::MigrationSent { from, .. } => {
                        if let Some(to) = e.pu {
                            nodes.entry(to).or_default().mig_in += 1;
                        }
                        nodes.entry(*from).or_default().mig_out += 1;
                    }
                    EventKind::MigrationRetried { .. } => {
                        if let Some(to) = e.pu {
                            nodes.entry(to).or_default().retries += 1;
                        }
                    }
                    EventKind::CoverRecredited { cost, .. } => {
                        if let Some(n) = e.pu {
                            let agg = nodes.entry(n).or_default();
                            agg.recredits += 1;
                            agg.recredited_cost += cost;
                        }
                    }
                    EventKind::NodeQuarantined { reason } => {
                        if let Some(n) = e.pu {
                            nodes.entry(n).or_default().quarantines.push(reason.clone());
                        }
                    }
                    EventKind::NodeJoined { .. } => {
                        if let Some(n) = e.pu {
                            nodes.entry(n).or_default();
                        }
                    }
                    _ => {}
                }
            }
            let _ = writeln!(out, "\ncluster nodes:");
            for (node, agg) in &nodes {
                let q = if agg.quarantines.is_empty() {
                    String::new()
                } else {
                    format!(" quarantined: {}", agg.quarantines.join(", "))
                };
                let _ = writeln!(
                    out,
                    "  node{node}: migrations in={} out={} retries={} \
                     re-credited cost={} ({} ranges){q}",
                    agg.mig_in, agg.mig_out, agg.retries, agg.recredited_cost, agg.recredits
                );
            }
            // Time-to-restabilize after a partition heal: each
            // partition quarantine paired with the node's next
            // re-admission through the acquisition gate.
            for e in &self.events {
                if let EventKind::NodeQuarantined { reason } = &e.kind {
                    if reason != "partition" {
                        continue;
                    }
                    let rejoin = self.events.iter().find(|r| {
                        r.pu == e.pu && r.t >= e.t && matches!(r.kind, EventKind::NodeJoined { .. })
                    });
                    let node = e.pu.map(|n| n.to_string()).unwrap_or_else(|| "-".into());
                    match rejoin {
                        Some(r) => {
                            let _ = writeln!(
                                out,
                                "  node{node} partitioned at t={:.6}s; re-admitted at \
                                 t={:.6}s (restabilized in {:.6}s)",
                                e.t,
                                r.t,
                                r.t - e.t
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "  node{node} partitioned at t={:.6}s; never re-admitted",
                                e.t
                            );
                        }
                    }
                }
            }
        }

        // Aggregate counters.
        let c = self.counters();
        let _ = writeln!(out, "\nevent counters:");
        let _ = writeln!(
            out,
            "  tasks={}/{} probes={} fits={} (rejected {}) solves={} rebalances={}",
            c.tasks_finished,
            c.tasks_submitted,
            c.probes,
            c.curve_fits,
            c.fit_rejections,
            c.solves,
            c.rebalances
        );
        let _ = writeln!(
            out,
            "  ipm: {} iterations, {} backtracks; perturbations={} stalls={} dropped={}",
            c.ipm_iterations, c.ipm_backtracks, c.perturbations, c.stalls, c.dropped
        );
        let _ = writeln!(
            out,
            "  faults: {} task failures, {} retries, {} quarantines, {} device failures",
            c.task_failures, c.task_retries, c.quarantines, c.device_failures
        );
        let _ = writeln!(
            out,
            "  durability: {} checkpoints written, {} resumes",
            c.checkpoints, c.resumes
        );
        let _ = writeln!(
            out,
            "  elastic: {} joins, {} drift changes, {} restabilizations, {} ignored restores",
            c.joins, c.drift_changes, c.restabilizations, c.restores_ignored
        );
        let _ = writeln!(
            out,
            "  cluster: {} migrations ({} retries), {} node joins, {} node quarantines, \
             {} re-credits",
            c.migrations_sent,
            c.migration_retries,
            c.node_joins,
            c.node_quarantines,
            c.cover_recredits
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use plb_hetsim::PuId;

    fn fill(sink: &mut EventSink, n: usize) {
        for i in 0..n {
            sink.record(
                i as f64,
                Some(0),
                EventKind::TaskSubmit {
                    task: i as u64,
                    items: 1,
                    cost: 1,
                },
            );
        }
    }

    #[test]
    fn ring_buffer_overwrites_oldest() {
        let mut sink = EventSink::new(4);
        fill(&mut sink, 6);
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.recorded(), 6);
        let evs = sink.events();
        // Oldest two (seq 0, 1) were overwritten.
        assert_eq!(evs.first().unwrap().seq, 2);
        assert_eq!(evs.last().unwrap().seq, 5);
        // Still chronological.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn iter_matches_events_after_wrap() {
        let mut sink = EventSink::new(4);
        fill(&mut sink, 7);
        let copied = sink.events();
        let viewed: Vec<Event> = sink.iter().cloned().collect();
        assert_eq!(copied, viewed);
        // Counters built from the borrowed view agree too.
        let c = sink.counters();
        assert_eq!(c.tasks_submitted, 4);
        assert_eq!(c.dropped, 3);
    }

    #[test]
    fn timestamps_clamped_monotone_per_pu() {
        let mut sink = EventSink::new(16);
        sink.record(5.0, Some(1), EventKind::TaskStart { task: 0, items: 1 });
        // An earlier-stamped event on the same unit is clamped forward.
        sink.record(3.0, Some(1), EventKind::DeviceFailed);
        // Other units are unaffected.
        sink.record(3.0, Some(0), EventKind::DeviceFailed);
        let evs = sink.events();
        assert_eq!(evs[1].t, 5.0);
        assert_eq!(evs[2].t, 3.0);
    }

    #[test]
    fn counters_tally_kinds() {
        let mut sink = EventSink::new(64);
        sink.record(
            0.0,
            Some(0),
            EventKind::ProbeIssued {
                items: 10,
                round: 1,
            },
        );
        sink.record(
            0.1,
            Some(0),
            EventKind::CurveFit {
                r2_f: 0.99,
                r2_g: 1.0,
                basis_f: "a + b·x".into(),
                samples: 4,
                accepted: true,
            },
        );
        sink.record(
            0.2,
            Some(1),
            EventKind::CurveFit {
                r2_f: 0.1,
                r2_g: 0.0,
                basis_f: "?".into(),
                samples: 2,
                accepted: false,
            },
        );
        sink.record(
            0.3,
            None,
            EventKind::IpmIteration {
                iter: 0,
                mu: 0.1,
                kkt_error: 1.0,
                theta: 0.5,
                backtracks: 3,
                accepted: true,
            },
        );
        sink.record(
            0.4,
            None,
            EventKind::BlockSolve {
                window: 100,
                method: "interior-point".into(),
                iterations: 9,
                solve_s: 1e-4,
                predicted_s: 0.5,
            },
        );
        sink.record(
            0.5,
            Some(0),
            EventKind::RebalanceTriggered {
                trigger: "divergence".into(),
                expected_s: 1.0,
                observed_s: 2.0,
                divergence: 1.0,
            },
        );
        sink.record(0.6, Some(1), EventKind::DeviceFailed);
        let c = sink.counters();
        assert_eq!(c.probes, 1);
        assert_eq!(c.curve_fits, 2);
        assert_eq!(c.fit_rejections, 1);
        assert_eq!(c.ipm_iterations, 1);
        assert_eq!(c.ipm_backtracks, 3);
        assert_eq!(c.solves, 1);
        assert_eq!(c.rebalances, 1);
        assert_eq!(c.perturbations, 1);
        assert_eq!(c.device_failures, 1);
        assert_eq!(c.dropped, 0);
    }

    fn sample_trace_data() -> TraceData {
        let mut trace = Trace::new(2);
        trace.record_task(PuId(0), TaskId(0), 100, 0.0, 0.5, 1.5);
        trace.record_task(PuId(1), TaskId(1), 50, 0.0, 0.0, 1.0);
        let mut sink = EventSink::new(64);
        sink.record(
            0.0,
            None,
            EventKind::RunStart {
                policy: "test".into(),
                total_items: 150,
                n_pus: 2,
            },
        );
        sink.record(
            0.0,
            Some(0),
            EventKind::TaskSubmit {
                task: 0,
                items: 100,
                cost: 100,
            },
        );
        sink.record(
            2.0,
            Some(0),
            EventKind::TaskFinish {
                task: 0,
                items: 100,
                cost: 100,
                xfer_s: 0.5,
                proc_s: 1.5,
            },
        );
        sink.record(
            2.0,
            None,
            EventKind::RunEnd {
                makespan_s: 2.0,
                total_items: 150,
            },
        );
        TraceData {
            header: TraceHeader {
                version: TRACE_FORMAT_VERSION,
                policy: "test".into(),
                pu_names: vec!["cpu".into(), "gpu".into()],
            },
            segments: trace.segments().to_vec(),
            events: sink.events(),
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let data = sample_trace_data();
        let text = write_jsonl(&data.header, &data.segments, &data.events);
        let parsed = TraceData::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.header, data.header);
        assert_eq!(parsed.segments.len(), data.segments.len());
        assert_eq!(parsed.events, data.events);
        // The reconstructed trace matches the original accounting.
        let t = parsed.to_trace();
        assert_eq!(t.n_pus(), 2);
        assert_eq!(t.makespan(), 2.0);
        assert_eq!(t.items_per_pu(), vec![100, 50]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceData::parse_jsonl("not json\n").is_err());
        assert!(TraceData::parse_jsonl("{\"rec\":\"mystery\"}\n").is_err());
        // No header at all.
        assert!(TraceData::parse_jsonl("").is_err());
        // A newer version is refused rather than misread.
        let newer = format!(
            "{{\"rec\":\"header\",\"version\":{},\"policy\":\"x\",\"pu_names\":[]}}",
            TRACE_FORMAT_VERSION + 1
        );
        assert!(TraceData::parse_jsonl(&newer).is_err());
    }

    #[test]
    fn summary_mentions_units_and_counters() {
        let data = sample_trace_data();
        let s = data.summarize();
        assert!(s.contains("cpu"));
        assert!(s.contains("gpu"));
        assert!(s.contains("rebalances: 0"));
        assert!(s.contains("makespan"));
        assert!(s.contains("event counters"));
    }

    #[test]
    fn durability_events_counted_and_merged() {
        let mut sink = EventSink::new(16);
        sink.record(
            0.5,
            None,
            EventKind::CheckpointWritten {
                seq: 0,
                tasks_done: 3,
                completed_items: 300,
            },
        );
        sink.record(
            0.0,
            None,
            EventKind::RunResumed {
                seq: 0,
                completed_items: 300,
            },
        );
        let mut c = sink.counters();
        assert_eq!(c.checkpoints, 1);
        assert_eq!(c.resumes, 1);
        let carried = EventCounters {
            checkpoints: 4,
            tasks_finished: 10,
            probes: 8,
            ..EventCounters::default()
        };
        c.merge(&carried);
        assert_eq!(c.checkpoints, 5);
        assert_eq!(c.tasks_finished, 10);
        assert_eq!(c.probes, 8);
        assert_eq!(c.resumes, 1);
        // The summary surfaces the durability line.
        let mut data = sample_trace_data();
        data.events.extend(sink.events());
        assert!(data.summarize().contains("durability: 1 checkpoints"));
    }

    #[test]
    fn elastic_events_counted_merged_and_summarized() {
        let mut sink = EventSink::new(16);
        sink.record(1.0, Some(1), EventKind::PuJoined { after_tasks: 40 });
        sink.record(1.1, Some(1), EventKind::DriftApplied { factor: 1.5 });
        sink.record(1.2, Some(1), EventKind::DriftApplied { factor: 2.0 });
        sink.record(1.5, Some(1), EventKind::Restabilized { rebalances: 2 });
        sink.record(1.6, Some(0), EventKind::DeviceRestoredIgnored);
        let mut c = sink.counters();
        assert_eq!(c.joins, 1);
        assert_eq!(c.drift_changes, 2);
        assert_eq!(c.restabilizations, 1);
        assert_eq!(c.restores_ignored, 1);
        let carried = EventCounters {
            joins: 2,
            drift_changes: 5,
            ..EventCounters::default()
        };
        c.merge(&carried);
        assert_eq!(c.joins, 3);
        assert_eq!(c.drift_changes, 7);
        // The summary surfaces the per-join restabilization line and the
        // aggregate elastic counters.
        let mut data = sample_trace_data();
        data.events.extend(sink.events());
        let s = data.summarize();
        assert!(s.contains("elastic capacity:"));
        assert!(s.contains("joined after 40 tasks"));
        assert!(s.contains("(2 rebalances)"));
        assert!(s.contains("elastic: 1 joins, 2 drift changes"));
    }

    #[test]
    fn join_without_restabilization_is_reported() {
        let mut data = sample_trace_data();
        let mut sink = EventSink::new(4);
        sink.record(1.0, Some(1), EventKind::PuJoined { after_tasks: 3 });
        data.events.extend(sink.events());
        assert!(data.summarize().contains("never restabilized"));
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(EventKind::DeviceFailed.name(), "device_failed");
        assert_eq!(EventKind::Stalled { remaining: 1 }.name(), "stalled");
        assert_eq!(EventKind::PuJoined { after_tasks: 1 }.name(), "pu_joined");
        assert_eq!(
            EventKind::DriftApplied { factor: 1.5 }.name(),
            "drift_applied"
        );
        assert_eq!(
            EventKind::Restabilized { rebalances: 0 }.name(),
            "restabilized"
        );
        assert_eq!(
            EventKind::DeviceRestoredIgnored.name(),
            "device_restored_ignored"
        );
        // The serde tag matches `name()` (the schema contract the docs
        // rely on).
        let e = Event {
            seq: 0,
            t: 0.0,
            pu: None,
            kind: EventKind::ModelingDone { items_used: 7 },
        };
        let v = serde_json::to_value(&e).unwrap();
        assert_eq!(v["kind"], "modeling_done");
        assert_eq!(v["items_used"], 7);
    }
}
