//! The real-thread host backend.
//!
//! Runs the same [`Policy`] implementations as the simulator, but on
//! actual host threads executing actual [`Codelet`] kernels with
//! wall-clock timing. Heterogeneity is realized by granting each
//! processing unit a different number of worker threads: a "GPU" unit is
//! simply a wide pool, a weak CPU a narrow one — honest, measurable
//! speed differences on one machine, which is what the examples
//! demonstrate.
//!
//! All scheduling decisions — assignment bookkeeping, retry, quarantine,
//! re-credit, deadlines, stall detection, event emission — live in the
//! shared scheduling core ([`crate::core`]); this module is only the
//! wall-clock [`Backend`]: per-unit worker threads fed by channels, a
//! completion channel back, and the loom-checked attempt claim words
//! that arbitrate worker results against the core's watchdog.
//!
//! # Fault tolerance
//!
//! The host path realizes the core's failure semantics on real threads
//! (see `docs/FAULT_TOLERANCE.md` for the full model):
//!
//! * **Panic isolation** — each kernel invocation runs under
//!   [`std::panic::catch_unwind`], so a panicking codelet marks its task
//!   failed instead of poisoning the worker; the unit stays usable.
//! * **Deadlines** — every dispatched task gets a watchdog deadline of
//!   `deadline_factor × E_p(x)`, where `E_p(x)` is the policy's
//!   model-predicted block time (via
//!   [`crate::policy::SchedulerCtx::set_deadline_hint`]) or, absent a
//!   hint, the core's
//!   running per-item rate estimate. A blown deadline declares the unit
//!   lost: its worker may be wedged inside the kernel, so the thread is
//!   detached rather than joined and the unit never returns.
//! * **Retry / re-dispatch** — a failed block is retried in place with
//!   exponential backoff up to `max_retries` times; past that its items
//!   are re-credited to the shared pool and flow to the surviving units
//!   through the normal assignment path (the ranges are recycled so the
//!   disjoint-cover guarantee over `0..total_items` still holds).
//! * **Quarantine** — `quarantine_after` consecutive failures remove the
//!   unit from the active set and notify the policy via
//!   `on_device_lost`, which for PLB-HeC re-solves the block-size split
//!   over the survivors. With a probation window configured, a
//!   quarantined (but not deadline-lost) unit is restored after
//!   `probation_s` and the policy told via `on_device_restored`.
//!
//! Deterministic faults are injected with a [`FaultPlan`] shared with
//! the simulator; re-dispatch after a lost unit assumes idempotent
//! codelets, exactly like [`HostPerturbation`] re-execution does.
//!
//! The racy decisions above — result-arrival vs. watchdog-deadline,
//! quarantine/restore vs. permanent loss, failed-block re-credit vs.
//! run completion — are implemented on the explicit state machines in
//! [`crate::protocol`] and model-checked under loom (see
//! `docs/SOUNDNESS.md`).

use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointWriter};
use crate::codelet::{Codelet, PuResources};
use crate::core::{self, Backend, ClockKind, Durability, Launch, LaunchSpec, Polled};
use crate::engine::RunError;
use crate::events::EventSink;
use crate::fault::{FaultAction, FaultPlan, FaultToleranceConfig};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle};
use crate::protocol::AttemptSlot;
use crate::sync::Arc;
use crate::task::{FailureReason, TaskId};
use crate::trace::Trace;
use crate::weights::Weights;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use plb_hetsim::{PuId, PuKind};
use std::time::{Duration, Instant};

/// Configuration of one host processing unit.
#[derive(Debug, Clone)]
pub struct HostPu {
    /// Display name.
    pub name: String,
    /// Kind the unit models.
    pub kind: PuKind,
    /// Worker threads granted to the unit.
    pub threads: usize,
}

/// A QoS-drift injection for the host engine: once unit `pu` has
/// completed `after_tasks` tasks, its kernel is executed `repeat` times
/// per task, making it effectively `repeat`x slower *in real wall-clock
/// time*. Requires idempotent codelets (every shipped application kernel
/// writes pure functions of its inputs, so re-execution is safe).
///
/// Task-count triggering (rather than wall-clock) keeps tests and demos
/// deterministic under arbitrary machine load.
#[derive(Debug, Clone, Copy)]
pub struct HostPerturbation {
    /// Unit index the slowdown applies to.
    pub pu: usize,
    /// Number of completed tasks on that unit before the drift starts.
    pub after_tasks: u64,
    /// Kernel repetitions per task once active (1 = nominal).
    pub repeat: u32,
}

/// One dispatch of a block to a worker. The core resolves the fault
/// plan at launch time (it owns the per-unit attempt counters), so the
/// worker just obeys `inject`.
struct Assignment {
    task: TaskId,
    offset: u64,
    items: u64,
    /// 0-based attempt number of this block (0 = first dispatch).
    attempt: u32,
    /// Sleep this long before executing (retry backoff).
    backoff_s: f64,
    /// Injected fault for this attempt, if any.
    inject: Option<FaultAction>,
    /// Kernel-speed drift multiplier from the fault plan (≥ 1.0 here:
    /// a wall clock cannot speed real hardware up, so the core's factor
    /// is clamped at launch). Realized by sleeping the surplus of the
    /// measured kernel time inside the timed section, so the drift is
    /// visible to the policy's measurements exactly like background
    /// load would be.
    drift: f64,
    /// The attempt's claim word, shared with the core's watchdog: the
    /// worker must win it (`try_complete` / `try_fail`) before
    /// reporting, so a deadline-claimed attempt reports nothing. See
    /// [`crate::protocol::AttemptSlot`].
    slot: Arc<AttemptSlot>,
}

struct Completion {
    pu: PuId,
    task: TaskId,
    proc_time: f64,
    started_at: f64,
}

/// What a worker reports back: a completed attempt or a caught panic.
enum WorkerMsg {
    Done(Completion),
    Failed { pu: PuId, task: TaskId },
}

/// The wall-clock backend: worker channels out, a completion channel
/// back, and the current attempt's claim word per unit. Mechanics only —
/// every decision is the scheduling core's.
struct HostBackend {
    senders: Vec<Option<Sender<Assignment>>>,
    /// The in-flight attempt's claim word per unit, shared with its
    /// worker; the core's watchdog arbitrates through it.
    slots: Vec<Option<Arc<AttemptSlot>>>,
    done_rx: Receiver<WorkerMsg>,
    epoch: Instant,
}

impl Backend for HostBackend {
    fn clock_kind(&self) -> ClockKind {
        ClockKind::Wall
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn unit_ready(&self, pu: usize) -> bool {
        self.senders[pu].is_some()
    }

    fn launch(&mut self, spec: &LaunchSpec) -> Launch {
        let slot = Arc::new(AttemptSlot::new());
        let sent = match self.senders[spec.pu].as_ref() {
            Some(tx) => tx
                .send(Assignment {
                    task: spec.task,
                    offset: spec.offset,
                    items: spec.items,
                    attempt: spec.attempt,
                    backoff_s: spec.backoff_s,
                    inject: spec.inject,
                    drift: if spec.drift.is_finite() {
                        spec.drift.max(1.0)
                    } else {
                        1.0
                    },
                    slot: Arc::clone(&slot),
                })
                .is_ok(),
            None => false,
        };
        if !sent {
            return Launch::UnitGone;
        }
        self.slots[spec.pu] = Some(slot);
        // Real start time is only known when the completion reports it.
        Launch::Started { start: None }
    }

    fn poll(&mut self, wake: Option<f64>, _events: &mut EventSink) -> Polled {
        let timeout = match wake {
            Some(w) => (w - self.now()).max(0.0).min(60.0),
            None => 60.0,
        };
        match self.done_rx.recv_timeout(Duration::from_secs_f64(timeout)) {
            Ok(WorkerMsg::Done(c)) => Polled::Completed {
                pu: c.pu.0,
                task: c.task,
                start: c.started_at,
                xfer_s: 0.0,
                proc_s: c.proc_time,
                finish: c.started_at + c.proc_time,
            },
            Ok(WorkerMsg::Failed { pu, task }) => Polled::AttemptFailed {
                pu: pu.0,
                task,
                reason: FailureReason::Panicked,
            },
            Err(RecvTimeoutError::Timeout) => Polled::Timeout,
            Err(RecvTimeoutError::Disconnected) => Polled::Infrastructure {
                detail: "all worker threads exited while tasks were in flight".into(),
            },
        }
    }

    fn try_claim_timeout(&mut self, pu: usize) -> bool {
        self.slots[pu].as_ref().is_some_and(|s| s.try_timeout())
    }

    fn forget_unit(&mut self, pu: usize) {
        self.senders[pu] = None;
        self.slots[pu] = None;
    }
}

/// Effective kernel repetitions for this unit's next task.
fn repeat_for(perturbations: &[HostPerturbation], pu: usize, done: u64) -> u32 {
    perturbations
        .iter()
        .filter(|p| p.pu == pu && done >= p.after_tasks)
        .map(|p| p.repeat.max(1))
        .max()
        .unwrap_or(1)
}

/// The host engine: a set of unit configurations.
///
/// ```
/// use plb_hetsim::PuKind;
/// use plb_runtime::{FixedBlockPolicy, FnCodelet, HostEngine, HostPu};
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Relaxed is sufficient for this counter: it publishes no other
/// // memory, fetch_add is atomic under any ordering, and the final
/// // load below happens-after every increment because `run` joins its
/// // worker threads before returning.
/// let counter = Arc::new(AtomicU64::new(0));
/// let c2 = Arc::clone(&counter);
/// let codelet = Arc::new(FnCodelet::new("count", move |range, _res| {
///     c2.fetch_add(range.end - range.start, Ordering::Relaxed);
/// }));
///
/// let mut engine = HostEngine::new(vec![
///     HostPu { name: "wide".into(), kind: PuKind::Gpu, threads: 2 },
///     HostPu { name: "narrow".into(), kind: PuKind::Cpu, threads: 1 },
/// ]);
/// let mut policy = FixedBlockPolicy { block: 100 };
/// let report = engine.run(&mut policy, codelet, 1_000).unwrap();
/// assert_eq!(report.total_items, 1_000);
/// assert_eq!(counter.load(Ordering::Relaxed), 1_000);
/// ```
pub struct HostEngine {
    pus: Vec<HostPu>,
    perturbations: Vec<HostPerturbation>,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<Checkpoint>,
    weights: Arc<Weights>,
    last_trace: Option<Trace>,
    last_events: Option<EventSink>,
}

impl HostEngine {
    /// Create an engine with the given processing units.
    pub fn new(pus: Vec<HostPu>) -> HostEngine {
        assert!(!pus.is_empty(), "host engine needs at least one unit");
        assert!(pus.iter().all(|p| p.threads > 0), "each unit needs threads");
        HostEngine {
            pus,
            perturbations: Vec::new(),
            faults: FaultPlan::none(),
            ft: FaultToleranceConfig::default(),
            checkpoint: None,
            resume: None,
            weights: Weights::uniform(),
            last_trace: None,
            last_events: None,
        }
    }

    /// Schedule QoS-drift injections (idempotent codelets required; see
    /// [`HostPerturbation`]).
    pub fn with_perturbations(mut self, p: Vec<HostPerturbation>) -> HostEngine {
        self.perturbations = p;
        self
    }

    /// Inject deterministic faults (panics, delays) by per-unit attempt
    /// index. See [`FaultPlan`]. Re-dispatch after a loss assumes
    /// idempotent codelets.
    pub fn with_faults(mut self, plan: FaultPlan) -> HostEngine {
        self.faults = plan;
        self
    }

    /// Override the fault-response tunables: retry bound, backoff,
    /// quarantine threshold, deadline factor, probation window.
    pub fn with_fault_tolerance(mut self, ft: FaultToleranceConfig) -> HostEngine {
        self.ft = ft;
        self
    }

    /// Write periodic, atomically-replaced durability snapshots of the
    /// driver state during `run` (plus one on clean shutdown), so a
    /// SIGKILLed run can be resumed. See [`crate::checkpoint`].
    pub fn with_checkpoint(mut self, cfg: CheckpointConfig) -> HostEngine {
        self.checkpoint = Some(cfg);
        self
    }

    /// Resume the next `run` from `ckpt` instead of starting fresh.
    /// Consumed by that run: a second `run` on the same engine starts
    /// fresh again. The snapshot must match the run's workload (policy
    /// name, item count, unit count) or `run` fails with
    /// [`RunError::Checkpoint`]. Codelets must be idempotent over a
    /// possibly re-executed tail block (the same contract re-dispatch
    /// after a loss already requires).
    pub fn resume_from(mut self, ckpt: Checkpoint) -> HostEngine {
        self.resume = Some(ckpt);
        self
    }

    /// Use per-item work weights for the run: pool claims become
    /// cost-budgeted and profiling/selection see cost, not count. The
    /// default is [`Weights::Uniform`], under which everything behaves
    /// exactly as the pre-weights engine did. See [`crate::weights`].
    pub fn with_weights(mut self, weights: Arc<Weights>) -> HostEngine {
        self.weights = weights;
        self
    }

    /// Run `total_items` of `codelet` under `policy`, with real
    /// execution and wall-clock timing. Delegates to the shared
    /// scheduling core ([`crate::core`]) over a wall-clock backend.
    pub fn run(
        &mut self,
        policy: &mut dyn Policy,
        codelet: Arc<dyn Codelet>,
        total_items: u64,
    ) -> Result<RunReport, RunError> {
        let n = self.pus.len();
        let epoch = Instant::now();
        let (done_tx, done_rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();

        // One worker thread (owning a sized rayon pool) per unit. A
        // spawn or pool-construction failure tears down what exists and
        // reports infrastructure loss instead of panicking.
        let mut senders: Vec<Sender<Assignment>> = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        let mut infra_error: Option<String> = None;
        for (i, pu) in self.pus.iter().enumerate() {
            let (tx, rx): (Sender<Assignment>, Receiver<Assignment>) = unbounded();
            let done = done_tx.clone();
            let codelet = Arc::clone(&codelet);
            let res = PuResources {
                threads: pu.threads,
                kind: pu.kind,
            };
            let perturbations = self.perturbations.clone();
            let pool = match rayon::ThreadPoolBuilder::new()
                .num_threads(pu.threads)
                .thread_name(move |t| format!("hostpu{i}-w{t}"))
                .build()
            {
                Ok(p) => p,
                Err(e) => {
                    infra_error = Some(format!("thread pool construction for unit {i}: {e}"));
                    break;
                }
            };
            let spawned = std::thread::Builder::new()
                .name(format!("hostpu{i}"))
                .spawn(move || {
                    let mut attempts_run = 0u64;
                    while let Ok(a) = rx.recv() {
                        if a.backoff_s > 0.0 && a.backoff_s.is_finite() {
                            std::thread::sleep(Duration::from_secs_f64(a.backoff_s));
                        }
                        let started_at = epoch.elapsed().as_secs_f64();
                        let repeat = repeat_for(&perturbations, i, attempts_run);
                        let t0 = Instant::now();
                        // Catch codelet panics so one bad kernel marks
                        // its task failed instead of killing the worker.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                pool.install(|| {
                                    match a.inject {
                                        Some(FaultAction::Delay(s)) => {
                                            if s.is_finite() && s > 0.0 {
                                                std::thread::sleep(Duration::from_secs_f64(s));
                                            }
                                        }
                                        Some(FaultAction::Panic) => {
                                            panic!(
                                                "injected fault: panic on attempt {}",
                                                a.attempt
                                            );
                                        }
                                        None => {}
                                    }
                                    for _ in 0..repeat {
                                        codelet.execute(a.offset..a.offset + a.items, &res);
                                    }
                                });
                            }));
                        // Realize drift: stretch the attempt by the
                        // surplus fraction of its own measured kernel
                        // time, inside the timed section, so measured
                        // `proc_time` reflects the drifted speed.
                        if outcome.is_ok() && a.drift > 1.0 {
                            let busy = t0.elapsed().as_secs_f64();
                            let extra = (a.drift - 1.0) * busy;
                            if extra.is_finite() && extra > 0.0 {
                                std::thread::sleep(Duration::from_secs_f64(extra));
                            }
                        }
                        let proc_time = t0.elapsed().as_secs_f64();
                        attempts_run += 1;
                        // Win the attempt's claim word before reporting:
                        // if the watchdog claimed the deadline first,
                        // the block was already re-dispatched and this
                        // outcome is stale — report nothing. Exactly
                        // one side of the race acts (see
                        // `protocol::AttemptSlot` and its loom model).
                        let msg = match outcome {
                            Ok(()) => {
                                if !a.slot.try_complete() {
                                    continue;
                                }
                                WorkerMsg::Done(Completion {
                                    pu: PuId(i),
                                    task: a.task,
                                    proc_time,
                                    started_at,
                                })
                            }
                            Err(_) => {
                                if !a.slot.try_fail() {
                                    continue;
                                }
                                WorkerMsg::Failed {
                                    pu: PuId(i),
                                    task: a.task,
                                }
                            }
                        };
                        if done.send(msg).is_err() {
                            break;
                        }
                    }
                });
            match spawned {
                Ok(h) => {
                    senders.push(tx);
                    joins.push(h);
                }
                Err(e) => {
                    infra_error = Some(format!("worker thread spawn for unit {i}: {e}"));
                    break;
                }
            }
        }
        drop(done_tx);
        if let Some(detail) = infra_error {
            drop(senders);
            for j in joins {
                let _ = j.join();
            }
            return Err(RunError::Infrastructure { detail });
        }

        let handles: Vec<PuHandle> = self
            .pus
            .iter()
            .enumerate()
            .map(|(i, p)| PuHandle {
                id: PuId(i),
                name: p.name.clone(),
                kind: p.kind,
                machine: 0,
                available: true,
            })
            .collect();
        let mut backend = HostBackend {
            senders: senders.into_iter().map(Some).collect(),
            slots: vec![None; n],
            done_rx,
            epoch,
        };
        let durability = Durability {
            checkpoint: self.checkpoint.clone().map(CheckpointWriter::new),
            resume: self.resume.take(),
            ..Default::default()
        };
        let outcome = core::drive(
            &mut backend,
            handles,
            policy,
            total_items,
            Arc::clone(&self.weights),
            self.faults.clone(),
            self.ft.clone(),
            durability,
        );

        // Shut healthy workers down; threads of lost units may be wedged
        // inside a kernel and are detached instead of joined.
        drop(backend);
        let mut join_failed = false;
        for (i, j) in joins.into_iter().enumerate() {
            if outcome.lost[i] {
                continue;
            }
            if j.join().is_err() {
                join_failed = true;
            }
        }
        self.last_events = Some(outcome.events);
        self.last_trace = Some(outcome.trace);
        let report = outcome.result?;
        if join_failed {
            // The codelet guard catches kernel panics, so a panicking
            // worker thread means engine infrastructure broke.
            return Err(RunError::Infrastructure {
                detail: "a worker thread panicked outside the codelet guard".into(),
            });
        }
        Ok(report)
    }

    /// The trace of the most recent successful run.
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// The structured event stream of the most recent run (also kept on
    /// a stalled run for post-mortems). See [`crate::events`].
    pub fn last_events(&self) -> Option<&EventSink> {
        self.last_events.as_ref()
    }
}

/// A codelet view shifted into a node's chunk: the nested engine works
/// in local coordinates `0..items`, while the application's kernel
/// sees the global range starting at `base`.
struct ShiftedCodelet {
    inner: Arc<dyn Codelet>,
    base: u64,
}

impl Codelet for ShiftedCodelet {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&self, range: std::ops::Range<u64>, res: &PuResources) {
        self.inner.execute(
            self.base.saturating_add(range.start)..self.base.saturating_add(range.end),
            res,
        );
    }
}

/// The real-thread node runner for the cluster tier
/// ([`crate::ClusterEngine`]): each node is a set of host units, and
/// every chunk runs a nested [`HostEngine`] over them with the node's
/// own persistent intra-node policy. Worker threads live for one chunk
/// (spawned per `run_chunk`), which keeps node executions isolated —
/// a wedged kernel in one chunk cannot leak threads into the next.
pub struct HostNodeRunner {
    names: Vec<String>,
    pus: Vec<Vec<HostPu>>,
    policies: Vec<Box<dyn Policy>>,
    codelet: Arc<dyn Codelet>,
    weights: Arc<Weights>,
}

impl HostNodeRunner {
    /// Build a runner from per-node unit rosters and per-node intra-node
    /// policies (equal lengths), the application codelet, and the
    /// *global* per-item cost table (chunk runs see the matching
    /// sub-table). Codelets must be idempotent — the same contract
    /// single-node re-dispatch already requires.
    pub fn new(
        names: Vec<String>,
        pus: Vec<Vec<HostPu>>,
        policies: Vec<Box<dyn Policy>>,
        codelet: Arc<dyn Codelet>,
        weights: Arc<Weights>,
    ) -> HostNodeRunner {
        HostNodeRunner {
            names,
            pus,
            policies,
            codelet,
            weights,
        }
    }
}

impl crate::core::cluster::NodeRunner for HostNodeRunner {
    fn node_count(&self) -> usize {
        self.pus.len().min(self.policies.len())
    }

    fn node_name(&self, node: usize) -> String {
        self.names
            .get(node)
            .cloned()
            .unwrap_or_else(|| format!("node{node}"))
    }

    fn run_chunk(
        &mut self,
        node: usize,
        offset: u64,
        items: u64,
    ) -> Result<crate::core::cluster::ChunkOutcome, String> {
        let Some(pus) = self.pus.get(node) else {
            return Err(format!("unknown node {node}"));
        };
        let Some(policy) = self.policies.get_mut(node) else {
            return Err(format!("no policy for node {node}"));
        };
        if pus.is_empty() {
            return Err(format!("node {node} has no units"));
        }
        let sub_weights = if self.weights.is_uniform() {
            Weights::uniform()
        } else {
            let w = &self.weights;
            Arc::new(Weights::per_item(
                (offset..offset.saturating_add(items)).map(|i| w.cost(i, 1)),
            ))
        };
        let shifted: Arc<dyn Codelet> = Arc::new(ShiftedCodelet {
            inner: Arc::clone(&self.codelet),
            base: offset,
        });
        let report = HostEngine::new(pus.clone())
            .with_weights(sub_weights)
            .run(policy.as_mut(), shifted, items)
            .map_err(|e| e.to_string())?;
        Ok(crate::core::cluster::ChunkOutcome {
            makespan_s: report.makespan,
            bytes_in: report.pus.iter().map(|p| p.bytes_in).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::FnCodelet;
    use crate::events::EventKind;
    use crate::policy::{FixedBlockPolicy, SchedulerCtx};
    use crate::task::TaskInfo;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn two_unequal_pus() -> Vec<HostPu> {
        vec![
            HostPu {
                name: "wide".into(),
                kind: PuKind::Gpu,
                threads: 4,
            },
            HostPu {
                name: "narrow".into(),
                kind: PuKind::Cpu,
                threads: 1,
            },
        ]
    }

    #[test]
    fn processes_every_item_exactly_once() {
        let touched = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&touched);
        let codelet = Arc::new(FnCodelet::new("sum", move |r, _| {
            t2.fetch_add(r.end - r.start, Ordering::Relaxed);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 137 }, codelet, 10_000)
            .unwrap();
        assert_eq!(report.total_items, 10_000);
        assert_eq!(touched.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn ranges_are_disjoint_and_cover() {
        use parking_lot::Mutex;
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&ranges);
        let codelet = Arc::new(FnCodelet::new("collect", move |r, _| {
            r2.lock().push(r);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        engine
            .run(&mut FixedBlockPolicy { block: 97 }, codelet, 1000)
            .unwrap();
        let mut got = ranges.lock().clone();
        got.sort_by_key(|r| r.start);
        let mut expect = 0;
        for r in got {
            assert_eq!(r.start, expect, "gap or overlap in ranges");
            expect = r.end;
        }
        assert_eq!(expect, 1000);
    }

    #[test]
    fn stalled_policy_reported() {
        struct Never;
        impl Policy for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn on_start(&mut self, _: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _: &mut dyn SchedulerCtx, _: &TaskInfo) {}
        }
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let err = engine.run(&mut Never, codelet, 10).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 10, .. }));
    }

    #[test]
    fn stalled_run_preserves_events() {
        // Host-engine twin of the simulator test of the same name: a
        // stalled run still exposes its partial event stream.
        struct Never;
        impl Policy for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn on_start(&mut self, _: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _: &mut dyn SchedulerCtx, _: &TaskInfo) {}
        }
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let err = engine.run(&mut Never, codelet, 42).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 42, .. }));
        let events = engine.last_events().expect("post-mortem events").events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Stalled { remaining: 42 })));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_units_panic() {
        HostEngine::new(vec![]);
    }

    #[test]
    fn qos_drift_slows_the_unit_measurably() {
        // A deterministic busy-work codelet; repeat=4 after 2 tasks
        // roughly quadruples later task times on the drifted unit.
        let codelet = Arc::new(FnCodelet::new("spin", |r, _| {
            let mut acc = 0u64;
            for i in r {
                for k in 0..2_000u64 {
                    acc = acc.wrapping_add(i ^ k).rotate_left(5);
                }
            }
            std::hint::black_box(acc);
        }));
        let mut engine = HostEngine::new(vec![HostPu {
            name: "solo".into(),
            kind: PuKind::Cpu,
            threads: 1,
        }])
        .with_perturbations(vec![HostPerturbation {
            pu: 0,
            after_tasks: 2,
            repeat: 4,
        }]);
        let mut policy = FixedBlockPolicy { block: 20_000 };
        let _ = engine.run(&mut policy, codelet, 80_000).unwrap();
        let trace = engine.last_trace().unwrap();
        let durations: Vec<f64> = trace.segments().iter().map(|s| s.end - s.start).collect();
        assert_eq!(durations.len(), 4);
        let before = (durations[0] + durations[1]) / 2.0;
        let after = (durations[2] + durations[3]) / 2.0;
        assert!(
            after > 2.0 * before,
            "drifted tasks should run >=2x longer: {before:.4}s -> {after:.4}s"
        );
    }

    #[test]
    fn repeat_for_picks_strongest_active_drift() {
        let p = vec![
            HostPerturbation {
                pu: 0,
                after_tasks: 2,
                repeat: 3,
            },
            HostPerturbation {
                pu: 0,
                after_tasks: 5,
                repeat: 7,
            },
            HostPerturbation {
                pu: 1,
                after_tasks: 0,
                repeat: 2,
            },
        ];
        assert_eq!(repeat_for(&p, 0, 0), 1);
        assert_eq!(repeat_for(&p, 0, 2), 3);
        assert_eq!(repeat_for(&p, 0, 9), 7);
        assert_eq!(repeat_for(&p, 1, 0), 2);
        assert_eq!(repeat_for(&p, 2, 100), 1);
    }

    #[test]
    fn events_recorded_on_host_runs() {
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 250 }, codelet, 1_000)
            .unwrap();
        let events = engine.last_events().expect("events recorded").events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::RunEnd { .. }
        ));
        assert_eq!(report.events.tasks_finished, report.tasks as u64);
        assert_eq!(report.events.tasks_submitted, report.tasks as u64);
    }

    #[test]
    fn trace_recorded_with_wall_times() {
        let codelet = Arc::new(FnCodelet::new("spin", |r, _| {
            // A tiny busy loop so proc times are nonzero.
            let mut acc = 0u64;
            for i in r {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            std::hint::black_box(acc);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 50_000 }, codelet, 200_000)
            .unwrap();
        assert!(report.makespan > 0.0);
        let trace = engine.last_trace().unwrap();
        assert!(!trace.segments().is_empty());
        assert!(trace.segments().iter().all(|s| s.end >= s.start));
    }
}
