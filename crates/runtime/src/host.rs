//! The real-thread host backend.
//!
//! Runs the same [`Policy`] implementations as the simulator, but on
//! actual host threads executing actual [`Codelet`] kernels with
//! wall-clock timing. Heterogeneity is realized by granting each
//! processing unit a different number of worker threads: a "GPU" unit is
//! simply a wide pool, a weak CPU a narrow one — honest, measurable
//! speed differences on one machine, which is what the examples
//! demonstrate.
//!
//! # Fault tolerance
//!
//! The host path mirrors the simulator's failure semantics on real
//! threads (see `docs/FAULT_TOLERANCE.md` for the full model):
//!
//! * **Panic isolation** — each kernel invocation runs under
//!   [`std::panic::catch_unwind`], so a panicking codelet marks its task
//!   failed instead of poisoning the worker; the unit stays usable.
//! * **Deadlines** — every dispatched task gets a watchdog deadline of
//!   `deadline_factor × E_p(x)`, where `E_p(x)` is the policy's
//!   model-predicted block time (via
//!   [`SchedulerCtx::set_deadline_hint`]) or, absent a hint, the
//!   engine's running per-item rate estimate. A blown deadline declares
//!   the unit lost: its worker may be wedged inside the kernel, so the
//!   thread is detached rather than joined and the unit never returns.
//! * **Retry / re-dispatch** — a failed block is retried in place with
//!   exponential backoff up to `max_retries` times; past that its items
//!   are re-credited to the shared pool and flow to the surviving units
//!   through the normal assignment path (the ranges are recycled so the
//!   disjoint-cover guarantee over `0..total_items` still holds).
//! * **Quarantine** — `quarantine_after` consecutive failures remove the
//!   unit from the active set and notify the policy via
//!   `on_device_lost`, which for PLB-HeC re-solves the block-size split
//!   over the survivors. With a probation window configured, a
//!   quarantined (but not deadline-lost) unit is restored after
//!   `probation_s` and the policy told via `on_device_restored`.
//!
//! Deterministic faults are injected with a [`FaultPlan`] shared with
//! the simulator; re-dispatch after a lost unit assumes idempotent
//! codelets, exactly like [`HostPerturbation`] re-execution does.
//!
//! The racy decisions above — result-arrival vs. watchdog-deadline,
//! quarantine/restore vs. permanent loss, failed-block re-credit vs.
//! run completion — are implemented on the explicit state machines in
//! [`crate::protocol`] and model-checked under loom (see
//! `docs/SOUNDNESS.md`).

use crate::codelet::{Codelet, PuResources};
use crate::engine::RunError;
use crate::events::{EventKind, EventSink};
use crate::fault::{FaultAction, FaultPlan, FaultToleranceConfig};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle, SchedulerCtx};
use crate::protocol::{AttemptSlot, CompletionLatch, UnitGate};
use crate::sync::Arc;
use crate::task::{FailureReason, TaskFailure, TaskId, TaskInfo};
use crate::trace::Trace;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use plb_hetsim::{PuId, PuKind};
use std::time::{Duration, Instant};

/// Configuration of one host processing unit.
#[derive(Debug, Clone)]
pub struct HostPu {
    /// Display name.
    pub name: String,
    /// Kind the unit models.
    pub kind: PuKind,
    /// Worker threads granted to the unit.
    pub threads: usize,
}

/// A QoS-drift injection for the host engine: once unit `pu` has
/// completed `after_tasks` tasks, its kernel is executed `repeat` times
/// per task, making it effectively `repeat`x slower *in real wall-clock
/// time*. Requires idempotent codelets (every shipped application kernel
/// writes pure functions of its inputs, so re-execution is safe).
///
/// Task-count triggering (rather than wall-clock) keeps tests and demos
/// deterministic under arbitrary machine load.
#[derive(Debug, Clone, Copy)]
pub struct HostPerturbation {
    /// Unit index the slowdown applies to.
    pub pu: usize,
    /// Number of completed tasks on that unit before the drift starts.
    pub after_tasks: u64,
    /// Kernel repetitions per task once active (1 = nominal).
    pub repeat: u32,
}

/// One dispatch of a block to a worker. The engine resolves the fault
/// plan at dispatch time (it owns the per-unit attempt counters), so the
/// worker just obeys `inject`.
struct Assignment {
    task: TaskId,
    offset: u64,
    items: u64,
    /// 0-based attempt number of this block (0 = first dispatch).
    attempt: u32,
    /// Sleep this long before executing (retry backoff).
    backoff_s: f64,
    /// Injected fault for this attempt, if any.
    inject: Option<FaultAction>,
    /// The attempt's claim word, shared with the engine's watchdog: the
    /// worker must win it (`try_complete` / `try_fail`) before
    /// reporting, so a deadline-claimed attempt reports nothing. See
    /// [`crate::protocol::AttemptSlot`].
    slot: Arc<AttemptSlot>,
}

struct Completion {
    pu: PuId,
    task: TaskId,
    items: u64,
    proc_time: f64,
    started_at: f64,
}

/// What a worker reports back: a completed attempt or a caught panic.
enum WorkerMsg {
    Done(Completion),
    Failed {
        pu: PuId,
        task: TaskId,
        attempt: u32,
    },
}

/// Engine-side record of an in-flight attempt.
#[derive(Debug, Clone)]
struct HostPending {
    task: TaskId,
    offset: u64,
    items: u64,
    attempt: u32,
    /// Absolute watchdog deadline (engine clock), when one applies.
    deadline_at: Option<f64>,
    /// The attempt's claim word (shared with the worker); the watchdog
    /// must win `try_timeout` on it before declaring the attempt dead.
    slot: Arc<AttemptSlot>,
}

struct HostState {
    handles: Vec<PuHandle>,
    senders: Vec<Option<Sender<Assignment>>>,
    inflight: Vec<Option<HostPending>>,
    /// Undistributed-item pool + run-completion latch: `take` on
    /// dispatch, `recredit` on reclaim, closed exactly once when the
    /// run drains. See [`crate::protocol::CompletionLatch`].
    latch: CompletionLatch,
    total: u64,
    cursor: u64,
    /// Ranges of failed blocks returned to the pool; served before fresh
    /// cursor ranges so the disjoint-cover invariant holds under
    /// re-dispatch.
    reclaimed: Vec<(u64, u64)>,
    next_task: u64,
    epoch: Instant,
    events: EventSink,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    /// Per-unit dispatch counter (including retries) — the fault plan's
    /// attempt index.
    attempts: Vec<u64>,
    /// Per-unit consecutive-failure counter; reset by any success.
    consec_failures: Vec<u32>,
    /// Policy-provided seconds-per-item prediction (deadline hint).
    deadline_hint: Vec<Option<f64>>,
    /// Observed seconds-per-item EWMA (deadline fallback).
    rate_ewma: Vec<Option<f64>>,
    /// Probation expiry for quarantined units (engine clock).
    quarantined_until: Vec<Option<f64>>,
    /// Per-unit availability lattice (`Active ⇄ Quarantined`, `Lost`
    /// absorbing): a probation restore can never resurrect a unit whose
    /// worker is wedged. See [`crate::protocol::UnitGate`].
    gates: Vec<UnitGate>,
    /// Units whose loss was detected inside `assign` (policy callback
    /// re-entrancy guard): the engine loop delivers `on_device_lost`.
    pending_lost: Vec<PuId>,
}

impl HostState {
    /// Take a contiguous range of up to `want` items: reclaimed ranges
    /// first (splitting when larger than the request), then fresh items
    /// from the cursor. Returns `(offset, items)`.
    fn take_range(&mut self, want: u64) -> (u64, u64) {
        if let Some((off, len)) = self.reclaimed.pop() {
            if len > want {
                self.reclaimed.push((off + want, len - want));
                (off, want)
            } else {
                (off, len)
            }
        } else {
            let off = self.cursor;
            self.cursor += want;
            (off, want)
        }
    }

    /// Return a failed block's range to the pool.
    fn reclaim(&mut self, offset: u64, items: u64) {
        // The engine only reclaims while work is in flight, and the
        // latch closes only when nothing is — so the re-credit cannot
        // race a close (the interleaving the loom model rules out).
        let credited = self.latch.recredit(items);
        debug_assert!(credited, "re-credit refused: run already closed");
        self.reclaimed.push((offset, items));
    }

    /// Send one attempt of a block to its unit's worker. Resolves the
    /// fault plan, computes the watchdog deadline, and records the
    /// in-flight entry. Returns `false` when the worker is gone (the
    /// caller handles the loss).
    fn dispatch(
        &mut self,
        pu: usize,
        task: TaskId,
        offset: u64,
        items: u64,
        attempt: u32,
        backoff_s: f64,
    ) -> bool {
        let fault_attempt = self.attempts[pu];
        self.attempts[pu] += 1;
        let inject = self.faults.action(pu, fault_attempt);
        let rate = self.deadline_hint[pu].or(self.rate_ewma[pu]);
        let now = self.now();
        let deadline_at = self
            .ft
            .deadline_for(rate, items)
            .map(|d| now + backoff_s + d);
        let slot = Arc::new(AttemptSlot::new());
        self.inflight[pu] = Some(HostPending {
            task,
            offset,
            items,
            attempt,
            deadline_at,
            slot: Arc::clone(&slot),
        });
        let sent = match self.senders[pu].as_ref() {
            Some(tx) => tx
                .send(Assignment {
                    task,
                    offset,
                    items,
                    attempt,
                    backoff_s,
                    inject,
                    slot,
                })
                .is_ok(),
            None => false,
        };
        if !sent {
            self.inflight[pu] = None;
        }
        sent
    }

    /// Permanently remove a unit whose worker is gone or wedged. Emits
    /// `device_failed` and queues the `on_device_lost` notification for
    /// the engine loop (never calls the policy directly — this can run
    /// inside a policy's own `assign` call).
    fn mark_lost(&mut self, pu: usize) {
        // The gate's swap makes loss idempotent and absorbing: exactly
        // one caller performs the teardown, and a pending probation
        // restore can no longer succeed.
        if !self.gates[pu].mark_lost() {
            return;
        }
        self.handles[pu].available = false;
        self.senders[pu] = None;
        self.quarantined_until[pu] = None;
        let now = self.now();
        self.events.record(now, Some(pu), EventKind::DeviceFailed);
        self.pending_lost.push(PuId(pu));
    }

    /// Fold an observed per-item rate into the unit's EWMA estimate.
    fn observe_rate(&mut self, pu: usize, proc_time: f64, items: u64) {
        if items == 0 || !(proc_time.is_finite() && proc_time >= 0.0) {
            return;
        }
        let rate = proc_time / items as f64;
        self.rate_ewma[pu] = Some(match self.rate_ewma[pu] {
            Some(prev) => 0.5 * prev + 0.5 * rate,
            None => rate,
        });
    }
}

impl SchedulerCtx for HostState {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn pus(&self) -> &[PuHandle] {
        &self.handles
    }

    fn remaining_items(&self) -> u64 {
        self.latch.remaining()
    }

    fn total_items(&self) -> u64 {
        self.total
    }

    fn assign(&mut self, pu: PuId, items: u64) -> u64 {
        if items == 0 || self.latch.remaining() == 0 {
            return 0;
        }
        if !self.handles[pu.0].available
            || self.inflight[pu.0].is_some()
            || self.senders[pu.0].is_none()
        {
            return 0;
        }
        let want = items.min(self.latch.remaining());
        // Re-credited ranges are served first so failed blocks re-run;
        // a reclaimed fragment may be smaller than the request, in which
        // case fewer items are assigned (policies must tolerate any
        // return value).
        let (offset, got) = self.take_range(want);
        let debited = self.latch.take(got);
        debug_assert_eq!(debited, got, "latch and range pool out of sync");
        let task = TaskId(self.next_task);
        self.next_task += 1;
        let now = self.now();
        self.events.record(
            now,
            Some(pu.0),
            EventKind::TaskSubmit {
                task: task.0,
                items: got,
            },
        );
        if !self.dispatch(pu.0, task, offset, got, 0, 0.0) {
            // The worker died out from under us: the block returns to
            // the pool and the unit is lost; the engine loop delivers
            // the policy notification.
            self.reclaim(offset, got);
            self.mark_lost(pu.0);
            return 0;
        }
        got
    }

    fn is_busy(&self, pu: PuId) -> bool {
        self.inflight[pu.0].is_some()
    }

    fn any_busy(&self) -> bool {
        self.inflight.iter().any(Option::is_some)
    }

    fn charge_overhead(&mut self, _seconds: f64) {
        // Wall-clock already elapsed while the scheduler computed.
    }

    fn emit_event(&mut self, pu: Option<usize>, kind: EventKind) {
        let now = self.epoch.elapsed().as_secs_f64();
        self.events.record(now, pu, kind);
    }

    fn set_deadline_hint(&mut self, pu: PuId, seconds_per_item: f64) {
        self.deadline_hint[pu.0] = if seconds_per_item.is_finite() && seconds_per_item > 0.0 {
            Some(seconds_per_item)
        } else {
            None
        };
    }
}

/// Effective kernel repetitions for this unit's next task.
fn repeat_for(perturbations: &[HostPerturbation], pu: usize, done: u64) -> u32 {
    perturbations
        .iter()
        .filter(|p| p.pu == pu && done >= p.after_tasks)
        .map(|p| p.repeat.max(1))
        .max()
        .unwrap_or(1)
}

/// Deliver queued `on_device_lost` notifications (losses detected inside
/// `assign`, where calling back into the policy would re-enter it).
fn notify_lost(st: &mut HostState, policy: &mut dyn Policy) {
    while let Some(pu) = st.pending_lost.pop() {
        policy.on_device_lost(st, pu);
    }
}

/// The host engine: a set of unit configurations.
///
/// ```
/// use plb_hetsim::PuKind;
/// use plb_runtime::{FixedBlockPolicy, FnCodelet, HostEngine, HostPu};
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Relaxed is sufficient for this counter: it publishes no other
/// // memory, fetch_add is atomic under any ordering, and the final
/// // load below happens-after every increment because `run` joins its
/// // worker threads before returning.
/// let counter = Arc::new(AtomicU64::new(0));
/// let c2 = Arc::clone(&counter);
/// let codelet = Arc::new(FnCodelet::new("count", move |range, _res| {
///     c2.fetch_add(range.end - range.start, Ordering::Relaxed);
/// }));
///
/// let mut engine = HostEngine::new(vec![
///     HostPu { name: "wide".into(), kind: PuKind::Gpu, threads: 2 },
///     HostPu { name: "narrow".into(), kind: PuKind::Cpu, threads: 1 },
/// ]);
/// let mut policy = FixedBlockPolicy { block: 100 };
/// let report = engine.run(&mut policy, codelet, 1_000).unwrap();
/// assert_eq!(report.total_items, 1_000);
/// assert_eq!(counter.load(Ordering::Relaxed), 1_000);
/// ```
pub struct HostEngine {
    pus: Vec<HostPu>,
    perturbations: Vec<HostPerturbation>,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    last_trace: Option<Trace>,
    last_events: Option<EventSink>,
}

impl HostEngine {
    /// Create an engine with the given processing units.
    pub fn new(pus: Vec<HostPu>) -> HostEngine {
        assert!(!pus.is_empty(), "host engine needs at least one unit");
        assert!(pus.iter().all(|p| p.threads > 0), "each unit needs threads");
        HostEngine {
            pus,
            perturbations: Vec::new(),
            faults: FaultPlan::none(),
            ft: FaultToleranceConfig::default(),
            last_trace: None,
            last_events: None,
        }
    }

    /// Schedule QoS-drift injections (idempotent codelets required; see
    /// [`HostPerturbation`]).
    pub fn with_perturbations(mut self, p: Vec<HostPerturbation>) -> HostEngine {
        self.perturbations = p;
        self
    }

    /// Inject deterministic faults (panics, delays) by per-unit attempt
    /// index. See [`FaultPlan`]. Re-dispatch after a loss assumes
    /// idempotent codelets.
    pub fn with_faults(mut self, plan: FaultPlan) -> HostEngine {
        self.faults = plan;
        self
    }

    /// Override the fault-response tunables: retry bound, backoff,
    /// quarantine threshold, deadline factor, probation window.
    pub fn with_fault_tolerance(mut self, ft: FaultToleranceConfig) -> HostEngine {
        self.ft = ft;
        self
    }

    /// Run `total_items` of `codelet` under `policy`, with real
    /// execution and wall-clock timing.
    pub fn run(
        &mut self,
        policy: &mut dyn Policy,
        codelet: Arc<dyn Codelet>,
        total_items: u64,
    ) -> Result<RunReport, RunError> {
        let n = self.pus.len();
        let epoch = Instant::now();
        let (done_tx, done_rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = unbounded();

        // One worker thread (owning a sized rayon pool) per unit. A
        // spawn or pool-construction failure tears down what exists and
        // reports infrastructure loss instead of panicking.
        let mut senders: Vec<Sender<Assignment>> = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        let mut infra_error: Option<String> = None;
        for (i, pu) in self.pus.iter().enumerate() {
            let (tx, rx): (Sender<Assignment>, Receiver<Assignment>) = unbounded();
            let done = done_tx.clone();
            let codelet = Arc::clone(&codelet);
            let res = PuResources {
                threads: pu.threads,
                kind: pu.kind,
            };
            let perturbations = self.perturbations.clone();
            let pool = match rayon::ThreadPoolBuilder::new()
                .num_threads(pu.threads)
                .thread_name(move |t| format!("hostpu{i}-w{t}"))
                .build()
            {
                Ok(p) => p,
                Err(e) => {
                    infra_error = Some(format!("thread pool construction for unit {i}: {e}"));
                    break;
                }
            };
            let spawned = std::thread::Builder::new()
                .name(format!("hostpu{i}"))
                .spawn(move || {
                    let mut attempts_run = 0u64;
                    while let Ok(a) = rx.recv() {
                        if a.backoff_s > 0.0 && a.backoff_s.is_finite() {
                            std::thread::sleep(Duration::from_secs_f64(a.backoff_s));
                        }
                        let started_at = epoch.elapsed().as_secs_f64();
                        let repeat = repeat_for(&perturbations, i, attempts_run);
                        let t0 = Instant::now();
                        // Catch codelet panics so one bad kernel marks
                        // its task failed instead of killing the worker.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                pool.install(|| {
                                    match a.inject {
                                        Some(FaultAction::Delay(s)) => {
                                            if s.is_finite() && s > 0.0 {
                                                std::thread::sleep(Duration::from_secs_f64(s));
                                            }
                                        }
                                        Some(FaultAction::Panic) => {
                                            panic!(
                                                "injected fault: panic on attempt {}",
                                                a.attempt
                                            );
                                        }
                                        None => {}
                                    }
                                    for _ in 0..repeat {
                                        codelet.execute(a.offset..a.offset + a.items, &res);
                                    }
                                });
                            }));
                        let proc_time = t0.elapsed().as_secs_f64();
                        attempts_run += 1;
                        // Win the attempt's claim word before reporting:
                        // if the watchdog claimed the deadline first,
                        // the block was already re-dispatched and this
                        // outcome is stale — report nothing. Exactly
                        // one side of the race acts (see
                        // `protocol::AttemptSlot` and its loom model).
                        let msg = match outcome {
                            Ok(()) => {
                                if !a.slot.try_complete() {
                                    continue;
                                }
                                WorkerMsg::Done(Completion {
                                    pu: PuId(i),
                                    task: a.task,
                                    items: a.items,
                                    proc_time,
                                    started_at,
                                })
                            }
                            Err(_) => {
                                if !a.slot.try_fail() {
                                    continue;
                                }
                                WorkerMsg::Failed {
                                    pu: PuId(i),
                                    task: a.task,
                                    attempt: a.attempt,
                                }
                            }
                        };
                        if done.send(msg).is_err() {
                            break;
                        }
                    }
                });
            match spawned {
                Ok(h) => {
                    senders.push(tx);
                    joins.push(h);
                }
                Err(e) => {
                    infra_error = Some(format!("worker thread spawn for unit {i}: {e}"));
                    break;
                }
            }
        }
        drop(done_tx);
        if let Some(detail) = infra_error {
            drop(senders);
            for j in joins {
                let _ = j.join();
            }
            return Err(RunError::Infrastructure { detail });
        }

        let handles: Vec<PuHandle> = self
            .pus
            .iter()
            .enumerate()
            .map(|(i, p)| PuHandle {
                id: PuId(i),
                name: p.name.clone(),
                kind: p.kind,
                machine: 0,
                available: true,
            })
            .collect();
        let mut st = HostState {
            handles,
            senders: senders.into_iter().map(Some).collect(),
            inflight: vec![None; n],
            latch: CompletionLatch::new(total_items),
            total: total_items,
            cursor: 0,
            reclaimed: Vec::new(),
            next_task: 0,
            epoch,
            events: EventSink::default(),
            faults: self.faults.clone(),
            ft: self.ft.clone(),
            attempts: vec![0; n],
            consec_failures: vec![0; n],
            deadline_hint: vec![None; n],
            rate_ewma: vec![None; n],
            quarantined_until: vec![None; n],
            gates: (0..n).map(|_| UnitGate::new()).collect(),
            pending_lost: Vec::new(),
        };
        let mut trace = Trace::new(n);
        st.events.record(
            0.0,
            None,
            EventKind::RunStart {
                policy: policy.name().to_string(),
                total_items,
                n_pus: n,
            },
        );

        policy.on_start(&mut st);
        notify_lost(&mut st, policy);

        let result = loop {
            if st.latch.remaining() == 0 && !st.any_busy() {
                let closed = st.latch.try_close();
                debug_assert!(closed, "run closed twice");
                break Ok(());
            }

            // End probation windows that have elapsed: the unit rejoins
            // the active set and the policy can fold it back in. The
            // gate arbitrates against loss: a unit marked lost after
            // its quarantine fails `try_restore` and stays gone.
            for i in 0..n {
                let due = st.quarantined_until[i].is_some_and(|t| st.now() >= t);
                if due {
                    st.quarantined_until[i] = None;
                    if !st.gates[i].try_restore() {
                        continue;
                    }
                    st.consec_failures[i] = 0;
                    st.handles[i].available = true;
                    let now = st.now();
                    st.events.record(now, Some(i), EventKind::DeviceRestored);
                    policy.on_device_restored(&mut st, PuId(i));
                    notify_lost(&mut st, policy);
                }
            }
            if st.latch.remaining() == 0 && !st.any_busy() {
                let closed = st.latch.try_close();
                debug_assert!(closed, "run closed twice");
                break Ok(());
            }

            if !st.any_busy() {
                // Idle with work left: wait out a pending probation, or
                // report the stall (policy silent / every unit gone).
                let next_probation = st
                    .quarantined_until
                    .iter()
                    .flatten()
                    .fold(f64::INFINITY, |a, &t| a.min(t));
                if next_probation.is_finite() {
                    let wait = (next_probation - st.now()).max(0.0);
                    std::thread::sleep(Duration::from_secs_f64(wait.min(0.05) + 1e-4));
                    continue;
                }
                let at = st.now();
                let remaining = st.latch.remaining();
                st.events
                    .record(at, None, EventKind::Stalled { remaining });
                break Err(RunError::Stalled { remaining, at });
            }

            // Watchdog-aware wait: wake at the earliest task deadline or
            // probation expiry, whichever comes first.
            let mut wake = f64::INFINITY;
            for p in st.inflight.iter().flatten() {
                if let Some(d) = p.deadline_at {
                    wake = wake.min(d);
                }
            }
            for t in st.quarantined_until.iter().flatten() {
                wake = wake.min(*t);
            }
            let timeout = if wake.is_finite() {
                (wake - st.now()).max(0.0).min(60.0)
            } else {
                60.0
            };
            let msg = match done_rx.recv_timeout(Duration::from_secs_f64(timeout)) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    break Err(RunError::Infrastructure {
                        detail: "all worker threads exited while tasks were in flight".into(),
                    });
                }
            };

            let Some(msg) = msg else {
                // Timed out: declare units with blown deadlines lost.
                // Their threads may be wedged mid-kernel, so they are
                // detached, never joined, and never restored; the lost
                // block re-runs on a survivor (idempotent codelets).
                // The watchdog must *win the attempt's claim word*
                // first: if the worker's result beat the deadline and
                // is already in the channel, `try_timeout` fails and
                // the unit is left alone — the completion is handled
                // on the next loop iteration instead of being thrown
                // away with the unit.
                let now = st.now();
                for i in 0..n {
                    let blown = st.inflight[i].as_ref().is_some_and(|p| {
                        p.deadline_at.is_some_and(|d| now >= d) && p.slot.try_timeout()
                    });
                    if !blown {
                        continue;
                    }
                    let Some(pend) = st.inflight[i].take() else {
                        continue;
                    };
                    st.events.record(
                        now,
                        Some(i),
                        EventKind::TaskFailed {
                            task: pend.task.0,
                            items: pend.items,
                            attempt: pend.attempt,
                            reason: FailureReason::DeadlineExceeded.name().to_string(),
                        },
                    );
                    st.reclaim(pend.offset, pend.items);
                    st.mark_lost(i);
                    notify_lost(&mut st, policy);
                    let failure = TaskFailure {
                        task_id: pend.task,
                        pu: PuId(i),
                        items: pend.items,
                        attempt: pend.attempt,
                        at: now,
                        reason: FailureReason::DeadlineExceeded,
                    };
                    policy.on_task_failed(&mut st, &failure);
                    notify_lost(&mut st, policy);
                }
                continue;
            };

            match msg {
                WorkerMsg::Done(c) => {
                    // Stale completions (from units already declared
                    // lost, whose wedged worker eventually finished) are
                    // ignored: the block was re-dispatched elsewhere.
                    let current = st.inflight[c.pu.0]
                        .as_ref()
                        .is_some_and(|p| p.task == c.task);
                    if !current {
                        continue;
                    }
                    st.inflight[c.pu.0] = None;
                    st.consec_failures[c.pu.0] = 0;
                    st.observe_rate(c.pu.0, c.proc_time, c.items);
                    trace.record_task(c.pu, c.task, c.items, c.started_at, 0.0, c.proc_time);
                    st.events.record(
                        c.started_at,
                        Some(c.pu.0),
                        EventKind::TaskStart {
                            task: c.task.0,
                            items: c.items,
                        },
                    );
                    st.events.record(
                        c.started_at + c.proc_time,
                        Some(c.pu.0),
                        EventKind::TaskFinish {
                            task: c.task.0,
                            items: c.items,
                            xfer_s: 0.0,
                            proc_s: c.proc_time,
                        },
                    );
                    let info = TaskInfo {
                        task_id: c.task,
                        pu: c.pu,
                        items: c.items,
                        xfer_time: 0.0,
                        proc_time: c.proc_time,
                        start: c.started_at,
                        finish: c.started_at + c.proc_time,
                    };
                    policy.on_task_finished(&mut st, &info);
                    notify_lost(&mut st, policy);
                }
                WorkerMsg::Failed { pu, task, .. } => {
                    let current = st.inflight[pu.0].as_ref().is_some_and(|p| p.task == task);
                    if !current {
                        continue;
                    }
                    let Some(pend) = st.inflight[pu.0].take() else {
                        continue;
                    };
                    st.consec_failures[pu.0] += 1;
                    let failures = st.consec_failures[pu.0];
                    let now = st.now();
                    st.events.record(
                        now,
                        Some(pu.0),
                        EventKind::TaskFailed {
                            task: pend.task.0,
                            items: pend.items,
                            attempt: pend.attempt,
                            reason: FailureReason::Panicked.name().to_string(),
                        },
                    );
                    if failures >= st.ft.quarantine_after {
                        // Quarantine: the unit leaves the active set,
                        // its block returns to the pool, and the policy
                        // re-solves the split over the survivors. The
                        // worker itself is healthy (the panic was
                        // caught), so with a probation window it can
                        // come back.
                        let gated = st.gates[pu.0].try_quarantine();
                        debug_assert!(gated, "quarantining a non-active unit");
                        st.handles[pu.0].available = false;
                        st.quarantined_until[pu.0] = st.ft.probation_s.map(|p| now + p);
                        st.reclaim(pend.offset, pend.items);
                        st.events
                            .record(now, Some(pu.0), EventKind::PuQuarantined { failures });
                        st.events.record(now, Some(pu.0), EventKind::DeviceFailed);
                        policy.on_device_lost(&mut st, pu);
                        notify_lost(&mut st, policy);
                        let failure = TaskFailure {
                            task_id: pend.task,
                            pu,
                            items: pend.items,
                            attempt: pend.attempt,
                            at: now,
                            reason: FailureReason::Panicked,
                        };
                        policy.on_task_failed(&mut st, &failure);
                        notify_lost(&mut st, policy);
                    } else if pend.attempt < st.ft.max_retries {
                        // Bounded in-place retry with exponential
                        // backoff.
                        let retry_attempt = pend.attempt + 1;
                        let backoff = st.ft.backoff_for(retry_attempt);
                        st.events.record(
                            now,
                            Some(pu.0),
                            EventKind::TaskRetry {
                                task: pend.task.0,
                                items: pend.items,
                                attempt: retry_attempt,
                                backoff_s: backoff,
                            },
                        );
                        if !st.dispatch(
                            pu.0,
                            pend.task,
                            pend.offset,
                            pend.items,
                            retry_attempt,
                            backoff,
                        ) {
                            st.reclaim(pend.offset, pend.items);
                            st.mark_lost(pu.0);
                            notify_lost(&mut st, policy);
                        }
                    } else {
                        // Retries exhausted without hitting the
                        // quarantine bar: the block's items return to
                        // the pool for the other units.
                        st.reclaim(pend.offset, pend.items);
                        let failure = TaskFailure {
                            task_id: pend.task,
                            pu,
                            items: pend.items,
                            attempt: pend.attempt,
                            at: now,
                            reason: FailureReason::Panicked,
                        };
                        policy.on_task_failed(&mut st, &failure);
                        notify_lost(&mut st, policy);
                    }
                }
            }
        };

        // Shut healthy workers down; threads of lost units may be wedged
        // inside a kernel and are detached instead of joined.
        st.senders.clear();
        let mut join_failed = false;
        for (i, j) in joins.into_iter().enumerate() {
            if st.gates[i].is_lost() {
                continue;
            }
            if j.join().is_err() {
                join_failed = true;
            }
        }
        if result.is_ok() {
            st.events.record(
                st.epoch.elapsed().as_secs_f64(),
                None,
                EventKind::RunEnd {
                    makespan_s: trace.makespan(),
                    total_items,
                },
            );
        }
        let counters = st.events.counters();
        self.last_events = Some(std::mem::take(&mut st.events));
        self.last_trace = Some(trace);
        result?;
        if join_failed {
            // The codelet guard catches kernel panics, so a panicking
            // worker thread means engine infrastructure broke.
            return Err(RunError::Infrastructure {
                detail: "a worker thread panicked outside the codelet guard".into(),
            });
        }

        let names: Vec<String> = self.pus.iter().map(|p| p.name.clone()).collect();
        let Some(trace) = self.last_trace.as_ref() else {
            return Err(RunError::Infrastructure {
                detail: "run trace missing after a successful run".into(),
            });
        };
        let mut report =
            RunReport::from_trace(policy.name(), trace, &names, policy.block_distribution());
        report.rebalances = counters.rebalances as usize;
        report.events = counters;
        Ok(report)
    }

    /// The trace of the most recent successful run.
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// The structured event stream of the most recent run (also kept on
    /// a stalled run for post-mortems). See [`crate::events`].
    pub fn last_events(&self) -> Option<&EventSink> {
        self.last_events.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::FnCodelet;
    use crate::policy::FixedBlockPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn two_unequal_pus() -> Vec<HostPu> {
        vec![
            HostPu {
                name: "wide".into(),
                kind: PuKind::Gpu,
                threads: 4,
            },
            HostPu {
                name: "narrow".into(),
                kind: PuKind::Cpu,
                threads: 1,
            },
        ]
    }

    #[test]
    fn processes_every_item_exactly_once() {
        let touched = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&touched);
        let codelet = Arc::new(FnCodelet::new("sum", move |r, _| {
            t2.fetch_add(r.end - r.start, Ordering::Relaxed);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 137 }, codelet, 10_000)
            .unwrap();
        assert_eq!(report.total_items, 10_000);
        assert_eq!(touched.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn ranges_are_disjoint_and_cover() {
        use parking_lot::Mutex;
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&ranges);
        let codelet = Arc::new(FnCodelet::new("collect", move |r, _| {
            r2.lock().push(r);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        engine
            .run(&mut FixedBlockPolicy { block: 97 }, codelet, 1000)
            .unwrap();
        let mut got = ranges.lock().clone();
        got.sort_by_key(|r| r.start);
        let mut expect = 0;
        for r in got {
            assert_eq!(r.start, expect, "gap or overlap in ranges");
            expect = r.end;
        }
        assert_eq!(expect, 1000);
    }

    #[test]
    fn stalled_policy_reported() {
        struct Never;
        impl Policy for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn on_start(&mut self, _: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _: &mut dyn SchedulerCtx, _: &TaskInfo) {}
        }
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let err = engine.run(&mut Never, codelet, 10).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 10, .. }));
    }

    #[test]
    fn stalled_run_preserves_events() {
        // Host-engine twin of the simulator test of the same name: a
        // stalled run still exposes its partial event stream.
        struct Never;
        impl Policy for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn on_start(&mut self, _: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _: &mut dyn SchedulerCtx, _: &TaskInfo) {}
        }
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let err = engine.run(&mut Never, codelet, 42).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 42, .. }));
        let events = engine.last_events().expect("post-mortem events").events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Stalled { remaining: 42 })));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_units_panic() {
        HostEngine::new(vec![]);
    }

    #[test]
    fn qos_drift_slows_the_unit_measurably() {
        // A deterministic busy-work codelet; repeat=4 after 2 tasks
        // roughly quadruples later task times on the drifted unit.
        let codelet = Arc::new(FnCodelet::new("spin", |r, _| {
            let mut acc = 0u64;
            for i in r {
                for k in 0..2_000u64 {
                    acc = acc.wrapping_add(i ^ k).rotate_left(5);
                }
            }
            std::hint::black_box(acc);
        }));
        let mut engine = HostEngine::new(vec![HostPu {
            name: "solo".into(),
            kind: PuKind::Cpu,
            threads: 1,
        }])
        .with_perturbations(vec![HostPerturbation {
            pu: 0,
            after_tasks: 2,
            repeat: 4,
        }]);
        let mut policy = FixedBlockPolicy { block: 20_000 };
        let _ = engine.run(&mut policy, codelet, 80_000).unwrap();
        let trace = engine.last_trace().unwrap();
        let durations: Vec<f64> = trace.segments().iter().map(|s| s.end - s.start).collect();
        assert_eq!(durations.len(), 4);
        let before = (durations[0] + durations[1]) / 2.0;
        let after = (durations[2] + durations[3]) / 2.0;
        assert!(
            after > 2.0 * before,
            "drifted tasks should run >=2x longer: {before:.4}s -> {after:.4}s"
        );
    }

    #[test]
    fn repeat_for_picks_strongest_active_drift() {
        let p = vec![
            HostPerturbation {
                pu: 0,
                after_tasks: 2,
                repeat: 3,
            },
            HostPerturbation {
                pu: 0,
                after_tasks: 5,
                repeat: 7,
            },
            HostPerturbation {
                pu: 1,
                after_tasks: 0,
                repeat: 2,
            },
        ];
        assert_eq!(repeat_for(&p, 0, 0), 1);
        assert_eq!(repeat_for(&p, 0, 2), 3);
        assert_eq!(repeat_for(&p, 0, 9), 7);
        assert_eq!(repeat_for(&p, 1, 0), 2);
        assert_eq!(repeat_for(&p, 2, 100), 1);
    }

    #[test]
    fn events_recorded_on_host_runs() {
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 250 }, codelet, 1_000)
            .unwrap();
        let events = engine.last_events().expect("events recorded").events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::RunEnd { .. }
        ));
        assert_eq!(report.events.tasks_finished, report.tasks as u64);
        assert_eq!(report.events.tasks_submitted, report.tasks as u64);
    }

    #[test]
    fn trace_recorded_with_wall_times() {
        let codelet = Arc::new(FnCodelet::new("spin", |r, _| {
            // A tiny busy loop so proc times are nonzero.
            let mut acc = 0u64;
            for i in r {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            std::hint::black_box(acc);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 50_000 }, codelet, 200_000)
            .unwrap();
        assert!(report.makespan > 0.0);
        let trace = engine.last_trace().unwrap();
        assert!(!trace.segments().is_empty());
        assert!(trace.segments().iter().all(|s| s.end >= s.start));
    }
}
