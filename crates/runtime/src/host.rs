//! The real-thread host backend.
//!
//! Runs the same [`Policy`] implementations as the simulator, but on
//! actual host threads executing actual [`Codelet`] kernels with
//! wall-clock timing. Heterogeneity is realized by granting each
//! processing unit a different number of worker threads: a "GPU" unit is
//! simply a wide pool, a weak CPU a narrow one — honest, measurable
//! speed differences on one machine, which is what the examples
//! demonstrate.

use crate::codelet::{Codelet, PuResources};
use crate::engine::RunError;
use crate::events::{EventKind, EventSink};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle, SchedulerCtx};
use crate::task::{TaskId, TaskInfo};
use crate::trace::Trace;
use crossbeam::channel::{unbounded, Receiver, Sender};
use plb_hetsim::{PuId, PuKind};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one host processing unit.
#[derive(Debug, Clone)]
pub struct HostPu {
    /// Display name.
    pub name: String,
    /// Kind the unit models.
    pub kind: PuKind,
    /// Worker threads granted to the unit.
    pub threads: usize,
}

/// A QoS-drift injection for the host engine: once unit `pu` has
/// completed `after_tasks` tasks, its kernel is executed `repeat` times
/// per task, making it effectively `repeat`x slower *in real wall-clock
/// time*. Requires idempotent codelets (every shipped application kernel
/// writes pure functions of its inputs, so re-execution is safe).
///
/// Task-count triggering (rather than wall-clock) keeps tests and demos
/// deterministic under arbitrary machine load.
#[derive(Debug, Clone, Copy)]
pub struct HostPerturbation {
    /// Unit index the slowdown applies to.
    pub pu: usize,
    /// Number of completed tasks on that unit before the drift starts.
    pub after_tasks: u64,
    /// Kernel repetitions per task once active (1 = nominal).
    pub repeat: u32,
}

struct Assignment {
    task: TaskId,
    offset: u64,
    items: u64,
}

struct Completion {
    pu: PuId,
    task: TaskId,
    offset: u64,
    items: u64,
    proc_time: f64,
    started_at: f64,
}

struct HostState {
    handles: Vec<PuHandle>,
    senders: Vec<Sender<Assignment>>,
    inflight: Vec<Option<TaskId>>,
    remaining: u64,
    total: u64,
    cursor: u64,
    next_task: u64,
    epoch: Instant,
    events: EventSink,
}

impl SchedulerCtx for HostState {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn pus(&self) -> &[PuHandle] {
        &self.handles
    }

    fn remaining_items(&self) -> u64 {
        self.remaining
    }

    fn total_items(&self) -> u64 {
        self.total
    }

    fn assign(&mut self, pu: PuId, items: u64) -> u64 {
        if items == 0 || self.remaining == 0 {
            return 0;
        }
        if !self.handles[pu.0].available || self.inflight[pu.0].is_some() {
            return 0;
        }
        let items = items.min(self.remaining);
        self.remaining -= items;
        let task = TaskId(self.next_task);
        self.next_task += 1;
        let offset = self.cursor;
        self.cursor += items;
        self.inflight[pu.0] = Some(task);
        let now = self.epoch.elapsed().as_secs_f64();
        self.events.record(
            now,
            Some(pu.0),
            EventKind::TaskSubmit {
                task: task.0,
                items,
            },
        );
        self.senders[pu.0]
            .send(Assignment {
                task,
                offset,
                items,
            })
            .expect("worker thread alive while engine runs");
        items
    }

    fn is_busy(&self, pu: PuId) -> bool {
        self.inflight[pu.0].is_some()
    }

    fn any_busy(&self) -> bool {
        self.inflight.iter().any(Option::is_some)
    }

    fn charge_overhead(&mut self, _seconds: f64) {
        // Wall-clock already elapsed while the scheduler computed.
    }

    fn emit_event(&mut self, pu: Option<usize>, kind: EventKind) {
        let now = self.epoch.elapsed().as_secs_f64();
        self.events.record(now, pu, kind);
    }
}

/// Effective kernel repetitions for this unit's next task.
fn repeat_for(perturbations: &[HostPerturbation], pu: usize, done: u64) -> u32 {
    perturbations
        .iter()
        .filter(|p| p.pu == pu && done >= p.after_tasks)
        .map(|p| p.repeat.max(1))
        .max()
        .unwrap_or(1)
}

/// The host engine: a set of unit configurations.
///
/// ```
/// use plb_hetsim::PuKind;
/// use plb_runtime::{FixedBlockPolicy, FnCodelet, HostEngine, HostPu};
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let counter = Arc::new(AtomicU64::new(0));
/// let c2 = Arc::clone(&counter);
/// let codelet = Arc::new(FnCodelet::new("count", move |range, _res| {
///     c2.fetch_add(range.end - range.start, Ordering::Relaxed);
/// }));
///
/// let mut engine = HostEngine::new(vec![
///     HostPu { name: "wide".into(), kind: PuKind::Gpu, threads: 2 },
///     HostPu { name: "narrow".into(), kind: PuKind::Cpu, threads: 1 },
/// ]);
/// let mut policy = FixedBlockPolicy { block: 100 };
/// let report = engine.run(&mut policy, codelet, 1_000).unwrap();
/// assert_eq!(report.total_items, 1_000);
/// assert_eq!(counter.load(Ordering::Relaxed), 1_000);
/// ```
pub struct HostEngine {
    pus: Vec<HostPu>,
    perturbations: Vec<HostPerturbation>,
    last_trace: Option<Trace>,
    last_events: Option<EventSink>,
}

impl HostEngine {
    /// Create an engine with the given processing units.
    pub fn new(pus: Vec<HostPu>) -> HostEngine {
        assert!(!pus.is_empty(), "host engine needs at least one unit");
        assert!(pus.iter().all(|p| p.threads > 0), "each unit needs threads");
        HostEngine {
            pus,
            perturbations: Vec::new(),
            last_trace: None,
            last_events: None,
        }
    }

    /// Schedule QoS-drift injections (idempotent codelets required; see
    /// [`HostPerturbation`]).
    pub fn with_perturbations(mut self, p: Vec<HostPerturbation>) -> HostEngine {
        self.perturbations = p;
        self
    }

    /// Run `total_items` of `codelet` under `policy`, with real
    /// execution and wall-clock timing.
    pub fn run(
        &mut self,
        policy: &mut dyn Policy,
        codelet: Arc<dyn Codelet>,
        total_items: u64,
    ) -> Result<RunReport, RunError> {
        let n = self.pus.len();
        let epoch = Instant::now();
        let (done_tx, done_rx): (Sender<Completion>, Receiver<Completion>) = unbounded();

        // One worker thread (owning a sized rayon pool) per unit.
        let mut senders = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for (i, pu) in self.pus.iter().enumerate() {
            let (tx, rx): (Sender<Assignment>, Receiver<Assignment>) = unbounded();
            senders.push(tx);
            let done = done_tx.clone();
            let codelet = Arc::clone(&codelet);
            let res = PuResources {
                threads: pu.threads,
                kind: pu.kind,
            };
            let perturbations = self.perturbations.clone();
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(pu.threads)
                .thread_name(move |t| format!("hostpu{i}-w{t}"))
                .build()
                .expect("thread pool construction");
            joins.push(std::thread::spawn(move || {
                let mut done_tasks = 0u64;
                while let Ok(a) = rx.recv() {
                    let started_at = epoch.elapsed().as_secs_f64();
                    let repeat = repeat_for(&perturbations, i, done_tasks);
                    let t0 = Instant::now();
                    pool.install(|| {
                        for _ in 0..repeat {
                            codelet.execute(a.offset..a.offset + a.items, &res);
                        }
                    });
                    let proc_time = t0.elapsed().as_secs_f64();
                    done_tasks += 1;
                    if done
                        .send(Completion {
                            pu: PuId(i),
                            task: a.task,
                            offset: a.offset,
                            items: a.items,
                            proc_time,
                            started_at,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }
        drop(done_tx);

        let handles: Vec<PuHandle> = self
            .pus
            .iter()
            .enumerate()
            .map(|(i, p)| PuHandle {
                id: PuId(i),
                name: p.name.clone(),
                kind: p.kind,
                machine: 0,
                available: true,
            })
            .collect();
        let mut st = HostState {
            handles,
            senders,
            inflight: vec![None; n],
            remaining: total_items,
            total: total_items,
            cursor: 0,
            next_task: 0,
            epoch,
            events: EventSink::default(),
        };
        let mut trace = Trace::new(n);
        st.events.record(
            0.0,
            None,
            EventKind::RunStart {
                policy: policy.name().to_string(),
                total_items,
                n_pus: n,
            },
        );

        policy.on_start(&mut st);

        let result = loop {
            if st.remaining == 0 && !st.any_busy() {
                break Ok(());
            }
            if !st.any_busy() {
                let at = st.now();
                st.events.record(
                    at,
                    None,
                    EventKind::Stalled {
                        remaining: st.remaining,
                    },
                );
                break Err(RunError::Stalled {
                    remaining: st.remaining,
                    at,
                });
            }
            let c = done_rx.recv().expect("workers alive while tasks in flight");
            debug_assert_eq!(st.inflight[c.pu.0], Some(c.task));
            st.inflight[c.pu.0] = None;
            trace.record_task(c.pu, c.task, c.items, c.started_at, 0.0, c.proc_time);
            st.events.record(
                c.started_at,
                Some(c.pu.0),
                EventKind::TaskStart {
                    task: c.task.0,
                    items: c.items,
                },
            );
            st.events.record(
                c.started_at + c.proc_time,
                Some(c.pu.0),
                EventKind::TaskFinish {
                    task: c.task.0,
                    items: c.items,
                    xfer_s: 0.0,
                    proc_s: c.proc_time,
                },
            );
            let info = TaskInfo {
                task_id: c.task,
                pu: c.pu,
                items: c.items,
                xfer_time: 0.0,
                proc_time: c.proc_time,
                start: c.started_at,
                finish: c.started_at + c.proc_time,
            };
            let _ = c.offset;
            policy.on_task_finished(&mut st, &info);
        };

        // Shut workers down.
        st.senders.clear();
        for j in joins {
            j.join().expect("worker thread exits cleanly");
        }
        if result.is_ok() {
            st.events.record(
                st.epoch.elapsed().as_secs_f64(),
                None,
                EventKind::RunEnd {
                    makespan_s: trace.makespan(),
                    total_items,
                },
            );
        }
        let counters = st.events.counters();
        self.last_events = Some(std::mem::take(&mut st.events));
        self.last_trace = Some(trace);
        result?;

        let names: Vec<String> = self.pus.iter().map(|p| p.name.clone()).collect();
        let trace = self.last_trace.as_ref().expect("stored above");
        let mut report =
            RunReport::from_trace(policy.name(), trace, &names, policy.block_distribution());
        report.rebalances = counters.rebalances as usize;
        report.events = counters;
        Ok(report)
    }

    /// The trace of the most recent successful run.
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// The structured event stream of the most recent run (also kept on
    /// a stalled run for post-mortems). See [`crate::events`].
    pub fn last_events(&self) -> Option<&EventSink> {
        self.last_events.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::FnCodelet;
    use crate::policy::FixedBlockPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn two_unequal_pus() -> Vec<HostPu> {
        vec![
            HostPu {
                name: "wide".into(),
                kind: PuKind::Gpu,
                threads: 4,
            },
            HostPu {
                name: "narrow".into(),
                kind: PuKind::Cpu,
                threads: 1,
            },
        ]
    }

    #[test]
    fn processes_every_item_exactly_once() {
        let touched = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&touched);
        let codelet = Arc::new(FnCodelet::new("sum", move |r, _| {
            t2.fetch_add(r.end - r.start, Ordering::Relaxed);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 137 }, codelet, 10_000)
            .unwrap();
        assert_eq!(report.total_items, 10_000);
        assert_eq!(touched.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn ranges_are_disjoint_and_cover() {
        use parking_lot::Mutex;
        let ranges = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&ranges);
        let codelet = Arc::new(FnCodelet::new("collect", move |r, _| {
            r2.lock().push(r);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        engine
            .run(&mut FixedBlockPolicy { block: 97 }, codelet, 1000)
            .unwrap();
        let mut got = ranges.lock().clone();
        got.sort_by_key(|r| r.start);
        let mut expect = 0;
        for r in got {
            assert_eq!(r.start, expect, "gap or overlap in ranges");
            expect = r.end;
        }
        assert_eq!(expect, 1000);
    }

    #[test]
    fn stalled_policy_reported() {
        struct Never;
        impl Policy for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn on_start(&mut self, _: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _: &mut dyn SchedulerCtx, _: &TaskInfo) {}
        }
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let err = engine.run(&mut Never, codelet, 10).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 10, .. }));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_units_panic() {
        HostEngine::new(vec![]);
    }

    #[test]
    fn qos_drift_slows_the_unit_measurably() {
        // A deterministic busy-work codelet; repeat=4 after 2 tasks
        // roughly quadruples later task times on the drifted unit.
        let codelet = Arc::new(FnCodelet::new("spin", |r, _| {
            let mut acc = 0u64;
            for i in r {
                for k in 0..2_000u64 {
                    acc = acc.wrapping_add(i ^ k).rotate_left(5);
                }
            }
            std::hint::black_box(acc);
        }));
        let mut engine = HostEngine::new(vec![HostPu {
            name: "solo".into(),
            kind: PuKind::Cpu,
            threads: 1,
        }])
        .with_perturbations(vec![HostPerturbation {
            pu: 0,
            after_tasks: 2,
            repeat: 4,
        }]);
        let mut policy = FixedBlockPolicy { block: 20_000 };
        engine.run(&mut policy, codelet, 80_000).unwrap();
        let trace = engine.last_trace().unwrap();
        let durations: Vec<f64> = trace.segments().iter().map(|s| s.end - s.start).collect();
        assert_eq!(durations.len(), 4);
        let before = (durations[0] + durations[1]) / 2.0;
        let after = (durations[2] + durations[3]) / 2.0;
        assert!(
            after > 2.0 * before,
            "drifted tasks should run >=2x longer: {before:.4}s -> {after:.4}s"
        );
    }

    #[test]
    fn repeat_for_picks_strongest_active_drift() {
        let p = vec![
            HostPerturbation {
                pu: 0,
                after_tasks: 2,
                repeat: 3,
            },
            HostPerturbation {
                pu: 0,
                after_tasks: 5,
                repeat: 7,
            },
            HostPerturbation {
                pu: 1,
                after_tasks: 0,
                repeat: 2,
            },
        ];
        assert_eq!(repeat_for(&p, 0, 0), 1);
        assert_eq!(repeat_for(&p, 0, 2), 3);
        assert_eq!(repeat_for(&p, 0, 9), 7);
        assert_eq!(repeat_for(&p, 1, 0), 2);
        assert_eq!(repeat_for(&p, 2, 100), 1);
    }

    #[test]
    fn events_recorded_on_host_runs() {
        let codelet = Arc::new(FnCodelet::new("noop", |_, _| {}));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 250 }, codelet, 1_000)
            .unwrap();
        let events = engine.last_events().expect("events recorded").events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::RunEnd { .. }
        ));
        assert_eq!(report.events.tasks_finished, report.tasks as u64);
        assert_eq!(report.events.tasks_submitted, report.tasks as u64);
    }

    #[test]
    fn trace_recorded_with_wall_times() {
        let codelet = Arc::new(FnCodelet::new("spin", |r, _| {
            // A tiny busy loop so proc times are nonzero.
            let mut acc = 0u64;
            for i in r {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            std::hint::black_box(acc);
        }));
        let mut engine = HostEngine::new(two_unequal_pus());
        let report = engine
            .run(&mut FixedBlockPolicy { block: 50_000 }, codelet, 200_000)
            .unwrap();
        assert!(report.makespan > 0.0);
        let trace = engine.last_trace().unwrap();
        assert!(!trace.segments().is_empty());
        assert!(trace.segments().iter().all(|s| s.end >= s.start));
    }
}
