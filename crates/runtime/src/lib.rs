#![warn(missing_docs)]
// Panic policy (the run path must degrade into typed errors, not
// panics; see docs/FAULT_TOLERANCE.md) is enforced workspace-wide by
// `cargo xtask lint` pass 10 (`panic-freedom`, docs/SOUNDNESS.md).
// Audited exceptions live in crates/xtask/allowlists/panic-freedom.txt
// and carry a local proof of unreachability.

//! A StarPU-like task runtime for heterogeneous processing units.
//!
//! The paper implements PLB-HeC "inside the StarPU framework", which
//! exposes codelets (tasks with one implementation per architecture),
//! data handles managed across memory nodes, and pluggable scheduling
//! policies. This crate reproduces that runtime surface:
//!
//! * [`Policy`] — the scheduling-policy plug-in point. A policy receives
//!   `on_start` / `on_task_finished` callbacks and assigns blocks of a
//!   data-parallel workload to processing units, exactly the level at
//!   which StarPU schedulers (and the paper's four algorithms) operate.
//! * [`SimEngine`] — a discrete-event executor over a
//!   [`plb_hetsim::ClusterSim`]: virtual time, deterministic, fast enough
//!   to run 65536×65536-element experiments in milliseconds. It supports
//!   scheduled perturbations (slowdowns, device failures) for the
//!   paper's future-work scenarios.
//! * [`HostEngine`] — a real-thread executor that runs actual
//!   [`Codelet`] kernels on pools of host cores, so the same policies
//!   drive genuinely measured wall-clock times in the examples.
//! * [`DataRegistry`] — StarPU-flavored data management: handles,
//!   per-unit memory nodes, and a transfer ledger.
//! * [`trace`] — Gantt segments, per-unit busy/idle accounting, and the
//!   run reports from which every figure of the paper is regenerated.
//! * [`events`] — structured decision-level event tracing (probes, curve
//!   fits, solves, rebalances, perturbations) with JSONL export; see
//!   `docs/OBSERVABILITY.md` for the schema.
//! * [`fault`] — fault injection ([`FaultPlan`], shared with the
//!   simulator crate) and the fault-tolerance response knobs
//!   ([`FaultToleranceConfig`]: retries, backoff, quarantine, host
//!   watchdog deadlines); see `docs/FAULT_TOLERANCE.md`.
//! * [`checkpoint`] — run-level durability: periodic, atomically
//!   written (tmp + rename + checksum) snapshots of the driver state
//!   ([`Checkpoint`]) and the resume path that restores them, so a
//!   crashed run continues on the uncovered items with its profiles
//!   and fitted models intact; see `docs/FAULT_TOLERANCE.md`.
//! * [`core`] — the backend-agnostic scheduling core: one driver loop
//!   (assignment bookkeeping, disjoint-range cover, retry/backoff,
//!   quarantine/probation, re-credit, deadlines, stall detection, event
//!   emission, report accounting) parameterized over a [`core::Backend`]
//!   that supplies execution mechanics. Both engines above are thin
//!   backends of this core; see `docs/ARCHITECTURE.md`.
//! * [`protocol`] — the racy decisions (result vs. deadline, quarantine
//!   vs. loss, re-credit vs. completion) as explicit state machines,
//!   model-checked under loom; [`sync`] is the primitive shim that
//!   swaps in loom's twins under `--cfg loom`. See `docs/SOUNDNESS.md`.

pub mod checkpoint;
pub mod codelet;
pub mod core;
pub mod data;
pub mod engine;
pub mod events;
pub mod fault;
pub mod host;
pub mod metrics;
pub mod policy;
pub mod protocol;
pub mod sync;
pub mod task;
pub mod trace;
pub mod weights;

pub use crate::core::cluster::{
    equal_cost_shards, ChunkOutcome, ClusterEngine, MigrationConfig, NodeRunner, SimNodeRunner,
};
pub use crate::core::{
    Backend, ClockKind, CoreOutcome, Durability, Launch, LaunchSpec, Polled, WorkPool,
};
pub use checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointError, CheckpointWriter, PuState, WorkloadId,
    CHECKPOINT_FORMAT_VERSION,
};
pub use codelet::{Codelet, FnCodelet, PuResources};
pub use data::{
    DataHandle, DataRegistry, DisjointError, DisjointOutput, DisjointWriter, MemNode,
    TransferRecord,
};
pub use engine::{Perturbation, PerturbationKind, RunError, SimEngine};
pub use events::{
    write_jsonl, Event, EventCounters, EventKind, EventSink, TraceData, TraceHeader,
    TRACE_FORMAT_VERSION,
};
pub use fault::{
    Fault, FaultAction, FaultKind, FaultPlan, FaultToleranceConfig, NodeFault, NodeFaultError,
    NodeFaultKind, NodeFaultPlan,
};
pub use host::{HostEngine, HostNodeRunner, HostPerturbation, HostPu};
pub use metrics::{PuReport, RunReport};
pub use policy::{FixedBlockPolicy, Policy, PuHandle, SchedulerCtx};
pub use protocol::{AttemptOutcome, AttemptSlot, CompletionLatch, UnitGate};
pub use task::{FailureReason, TaskFailure, TaskId, TaskInfo};
pub use trace::{Segment, SegmentKind, Trace};
pub use weights::Weights;
