//! Task records.

use plb_hetsim::PuId;

/// Unique identifier of a submitted task within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Everything a scheduling policy learns about a completed task — the
/// same information StarPU's post-execution hooks expose, and all that
/// the paper's algorithms consume: which unit ran what size, and how long
/// transfer and processing took.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskInfo {
    /// Task identity.
    pub task_id: TaskId,
    /// Unit that executed the task.
    pub pu: PuId,
    /// Block size in application items.
    pub items: u64,
    /// Block weight in cost units ([`crate::Weights`]); equals `items`
    /// under uniform weights. This is what PLB-HeC's curves are fit
    /// against.
    pub cost: u64,
    /// Data-transfer time (host → unit and results back), seconds.
    pub xfer_time: f64,
    /// Kernel processing time, seconds.
    pub proc_time: f64,
    /// Submission/start of transfer timestamp, seconds.
    pub start: f64,
    /// Completion timestamp, seconds.
    pub finish: f64,
}

impl TaskInfo {
    /// Total wall time the task occupied its unit.
    pub fn total_time(&self) -> f64 {
        self.xfer_time + self.proc_time
    }
}

/// Why a task attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// The kernel panicked; the worker caught the unwind and the unit
    /// remains usable.
    Panicked,
    /// The task blew its watchdog deadline; the unit was declared lost.
    DeadlineExceeded,
    /// The worker infrastructure died (channel closed, thread gone).
    WorkerLost,
}

impl FailureReason {
    /// Short machine name (the `reason` field of `task_failed` events).
    pub fn name(&self) -> &'static str {
        match self {
            FailureReason::Panicked => "panic",
            FailureReason::DeadlineExceeded => "deadline",
            FailureReason::WorkerLost => "worker-lost",
        }
    }
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a policy learns about a failed task attempt whose items
/// went back to the shared pool (in-place retries are engine-internal
/// and not reported here). Mirrors [`TaskInfo`] for the failure path.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFailure {
    /// Task identity (stable across the block's retries).
    pub task_id: TaskId,
    /// Unit the attempt ran on.
    pub pu: PuId,
    /// Block size in application items (re-credited to the pool).
    pub items: u64,
    /// Block weight in cost units; equals `items` under uniform
    /// weights. What the modeling phase budgeted for the block.
    pub cost: u64,
    /// 0-based attempt number that failed last.
    pub attempt: u32,
    /// Time of the failure, seconds.
    pub at: f64,
    /// Why the attempt failed.
    pub reason: FailureReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_is_sum() {
        let t = TaskInfo {
            task_id: TaskId(1),
            pu: PuId(0),
            items: 10,
            cost: 10,
            xfer_time: 0.5,
            proc_time: 1.5,
            start: 0.0,
            finish: 2.0,
        };
        assert_eq!(t.total_time(), 2.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(7).to_string(), "T7");
    }
}
