//! Task records.

use plb_hetsim::PuId;

/// Unique identifier of a submitted task within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Everything a scheduling policy learns about a completed task — the
/// same information StarPU's post-execution hooks expose, and all that
/// the paper's algorithms consume: which unit ran what size, and how long
/// transfer and processing took.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskInfo {
    /// Task identity.
    pub task_id: TaskId,
    /// Unit that executed the task.
    pub pu: PuId,
    /// Block size in application items.
    pub items: u64,
    /// Data-transfer time (host → unit and results back), seconds.
    pub xfer_time: f64,
    /// Kernel processing time, seconds.
    pub proc_time: f64,
    /// Submission/start of transfer timestamp, seconds.
    pub start: f64,
    /// Completion timestamp, seconds.
    pub finish: f64,
}

impl TaskInfo {
    /// Total wall time the task occupied its unit.
    pub fn total_time(&self) -> f64 {
        self.xfer_time + self.proc_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_is_sum() {
        let t = TaskInfo {
            task_id: TaskId(1),
            pu: PuId(0),
            items: 10,
            xfer_time: 0.5,
            proc_time: 1.5,
            start: 0.0,
            finish: 2.0,
        };
        assert_eq!(t.total_time(), 2.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(7).to_string(), "T7");
    }
}
