//! The scheduling-policy plug-in interface.
//!
//! Mirrors the surface StarPU exposes to custom schedulers: a callback
//! when the application starts and one per completed task, plus a context
//! for inspecting units and pushing new work. All four algorithms of the
//! paper (PLB-HeC, Greedy, Acosta, HDSS) are implemented against this
//! trait in the `plb-hec` crate, and run unchanged on both the
//! discrete-event and the real-thread engines.

use crate::events::EventKind;
use crate::task::{TaskFailure, TaskInfo};
use plb_hetsim::{PuId, PuKind};

/// Static view of one processing unit given to policies.
#[derive(Debug, Clone)]
pub struct PuHandle {
    /// Unit id (index into the engine's unit list).
    pub id: PuId,
    /// Display name, e.g. `"B/gpu0"`.
    pub name: String,
    /// CPU or GPU.
    pub kind: PuKind,
    /// Machine index the unit belongs to.
    pub machine: usize,
    /// Whether the unit is currently accepting work.
    pub available: bool,
}

/// The context through which a policy observes and drives the run.
pub trait SchedulerCtx {
    /// Current time in seconds (virtual for the simulator, wall-clock
    /// for the host engine).
    fn now(&self) -> f64;

    /// All processing units (including failed ones, flagged
    /// unavailable).
    fn pus(&self) -> &[PuHandle];

    /// Items not yet assigned to any unit.
    fn remaining_items(&self) -> u64;

    /// Total items of the application.
    fn total_items(&self) -> u64;

    /// Cost units not yet assigned to any unit ([`crate::Weights`]).
    /// Defaults to the item count — correct for uniform weights, and
    /// what contexts without a weights table (tests, minimal
    /// embeddings) fall back to.
    fn remaining_cost(&self) -> u64 {
        self.remaining_items()
    }

    /// Total workload weight in cost units. Defaults to the item count
    /// (uniform weights).
    fn total_cost(&self) -> u64 {
        self.total_items()
    }

    /// Assign a block worth up to `budget` *cost units* to `pu`. The
    /// engine converts the budget to a contiguous item range via the
    /// workload's [`crate::Weights`] (under uniform weights the budget
    /// IS an item count, exactly the pre-weights behavior), clamps to
    /// the remaining work, and returns the *cost* actually claimed (0
    /// when nothing remains, the unit is busy, or the unit is
    /// unavailable — policies must tolerate a 0 return). Under uniform
    /// weights the returned cost equals the assigned item count.
    fn assign(&mut self, pu: PuId, budget: u64) -> u64;

    /// Like [`assign`](Self::assign), but only claims work lying inside
    /// the item range `[lo, hi)` — the shard-scoped claim used by the
    /// cluster tier's diffusion policy (a node prefers its home shard
    /// before pulling from neighbours). Returns 0 when no unclaimed
    /// work overlaps the range. Contexts without shard structure
    /// default to an unrestricted assign, which keeps single-node
    /// policies oblivious to sharding.
    fn assign_within(&mut self, pu: PuId, budget: u64, lo: u64, hi: u64) -> u64 {
        let _ = (lo, hi);
        self.assign(pu, budget)
    }

    /// Is a task currently running (or queued) on `pu`?
    fn is_busy(&self, pu: PuId) -> bool;

    /// Is any unit busy?
    fn any_busy(&self) -> bool;

    /// Charge scheduler computation time (curve fitting, the
    /// interior-point solve) to the run. The paper's reported execution
    /// times "include the time spent calculating the size of the task
    /// sizes ... using the interior point method"; on the simulator this
    /// delays subsequent assignments by `seconds` of virtual time, and on
    /// the host engine the time has already passed for real, so it is a
    /// no-op there.
    fn charge_overhead(&mut self, seconds: f64);

    /// Record a structured decision-level event at the current time,
    /// attributed to `pu` when one is involved. Policies use this to
    /// surface their internal decisions (probe issued, curve fit, solve,
    /// rebalance) in the run's event stream — see
    /// [`crate::events`]. The default discards the event, so contexts
    /// without a sink (tests, minimal embeddings) need no extra code.
    fn emit_event(&mut self, _pu: Option<usize>, _kind: EventKind) {}

    /// Tell the engine what the policy's performance model predicts for
    /// `pu`: seconds of wall time per *cost unit* (per item under
    /// uniform weights). The host engine multiplies this by a task's
    /// block cost (and the configured safety factor) to derive the
    /// watchdog deadline `k × E_p(x)`. Non-finite or non-positive hints
    /// clear a previous hint. The default ignores the hint — the
    /// simulator needs no watchdog, and the host engine falls back to
    /// its own observed per-cost-unit rate until a hint arrives.
    fn set_deadline_hint(&mut self, _pu: PuId, _seconds_per_cost_unit: f64) {}
}

/// A scheduling policy. Implementations live in the `plb-hec` crate; the
/// runtime ships only the interface plus trivial policies for tests.
pub trait Policy: Send {
    /// Short name used in reports ("plb-hec", "greedy", ...).
    fn name(&self) -> &str;

    /// Called once before any task runs. The policy makes its initial
    /// assignments here.
    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx);

    /// Called after every task completion with full timing information.
    /// The policy typically assigns the next block here.
    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, done: &TaskInfo);

    /// Called when a unit fails. Items of its in-flight task have been
    /// re-credited to the remaining pool before this call. The default
    /// does nothing, which suits policies that reassign work on every
    /// completion anyway.
    fn on_device_lost(&mut self, _ctx: &mut dyn SchedulerCtx, _pu: PuId) {}

    /// Called when a previously quarantined unit re-enters the active
    /// set (the host engine's probation window elapsed, or a simulator
    /// `Restore` perturbation fired). The unit's handle is available
    /// again before this call.
    ///
    /// The default assigns no work — which is correct for policies that
    /// reassign on every completion, but silently strands the unit for
    /// model-driven policies. To make that visible in traces, the
    /// default emits a `device_restored_ignored` debug event whenever
    /// the policy carries state (implements [`Policy::snapshot`]) yet
    /// left this handler unimplemented: stateful policies are exactly
    /// the ones for which "do nothing" is usually a bug.
    fn on_device_restored(&mut self, ctx: &mut dyn SchedulerCtx, pu: PuId) {
        if self.snapshot().is_some() {
            ctx.emit_event(Some(pu.0), EventKind::DeviceRestoredIgnored);
        }
    }

    /// Called when a never-before-seen unit is admitted mid-run from
    /// the fault plan's join schedule (`docs/FAULT_TOLERANCE.md`,
    /// "Elastic capacity"). The unit's handle is available before this
    /// call, but the policy has no profile or model for it yet. The
    /// default treats a join like a restore — policies that pump work
    /// to any idle unit pick the newcomer up automatically, and
    /// stateful policies that ignore restores get the same
    /// `device_restored_ignored` breadcrumb.
    fn on_device_joined(&mut self, ctx: &mut dyn SchedulerCtx, pu: PuId) {
        self.on_device_restored(ctx, pu);
    }

    /// Called when a task attempt failed *and its items returned to the
    /// shared pool* — i.e. after in-place retries were exhausted or the
    /// unit was quarantined, not on every retried attempt. The items
    /// have been re-credited before this call, so policies that push
    /// work on completion can hand the block to a survivor here. The
    /// default does nothing: engines re-dispatch re-credited items
    /// through the normal assignment path anyway.
    fn on_task_failed(&mut self, _ctx: &mut dyn SchedulerCtx, _failure: &TaskFailure) {}

    /// The per-unit fraction of data the policy would currently assign
    /// in one round — the quantity plotted in the paper's Fig. 6. `None`
    /// for policies without an explicit distribution (greedy).
    fn block_distribution(&self) -> Option<Vec<f64>> {
        None
    }

    /// Serialize the policy's accumulated learning (for PLB-HeC: the
    /// per-unit performance profiles and fitted models) into an opaque
    /// value persisted in run checkpoints. `None` — the default — means
    /// the policy has nothing worth carrying across a crash; a resumed
    /// run then starts the policy fresh on the remaining items. See
    /// `docs/FAULT_TOLERANCE.md`.
    fn snapshot(&self) -> Option<serde_json::Value> {
        None
    }

    /// Restore state produced by [`Policy::snapshot`] before
    /// [`Policy::on_start`] runs on a resumed run. Returns `true` when
    /// the state was understood and adopted (PLB-HeC then re-fits and
    /// re-solves instead of re-probing); `false` — the default — falls
    /// back to a fresh start.
    fn restore(&mut self, _state: &serde_json::Value) -> bool {
        false
    }
}

/// A trivial policy for runtime tests: single fixed-size blocks handed
/// to whichever unit just became idle, seeded round-robin at start.
pub struct FixedBlockPolicy {
    /// Block size in items.
    pub block: u64,
}

impl Policy for FixedBlockPolicy {
    fn name(&self) -> &str {
        "fixed-block"
    }

    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
        let ids: Vec<PuId> = ctx
            .pus()
            .iter()
            .filter(|p| p.available)
            .map(|p| p.id)
            .collect();
        for id in ids {
            if ctx.remaining_items() == 0 {
                break;
            }
            ctx.assign(id, self.block);
        }
    }

    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, done: &TaskInfo) {
        if ctx.remaining_items() > 0 {
            ctx.assign(done.pu, self.block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_block_policy_name() {
        let p = FixedBlockPolicy { block: 8 };
        assert_eq!(p.name(), "fixed-block");
        assert!(p.block_distribution().is_none());
    }

    /// A context that only records emitted events.
    struct EventProbe {
        emitted: Vec<EventKind>,
    }

    impl SchedulerCtx for EventProbe {
        fn now(&self) -> f64 {
            0.0
        }
        fn pus(&self) -> &[PuHandle] {
            &[]
        }
        fn remaining_items(&self) -> u64 {
            0
        }
        fn total_items(&self) -> u64 {
            0
        }
        fn assign(&mut self, _pu: PuId, _items: u64) -> u64 {
            0
        }
        fn is_busy(&self, _pu: PuId) -> bool {
            false
        }
        fn any_busy(&self) -> bool {
            false
        }
        fn charge_overhead(&mut self, _seconds: f64) {}
        fn emit_event(&mut self, _pu: Option<usize>, kind: EventKind) {
            self.emitted.push(kind);
        }
    }

    struct StatefulNoopPolicy;

    impl Policy for StatefulNoopPolicy {
        fn name(&self) -> &str {
            "stateful-noop"
        }
        fn on_start(&mut self, _ctx: &mut dyn SchedulerCtx) {}
        fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _done: &TaskInfo) {}
        fn snapshot(&self) -> Option<serde_json::Value> {
            Some(serde_json::Value::Null)
        }
    }

    #[test]
    fn unhandled_restore_on_stateful_policy_leaves_a_breadcrumb() {
        let mut ctx = EventProbe { emitted: vec![] };
        // A stateless policy ignoring a restore is normal operation:
        // no breadcrumb.
        let mut plain = FixedBlockPolicy { block: 8 };
        plain.on_device_restored(&mut ctx, PuId(0));
        assert!(ctx.emitted.is_empty());
        // A snapshot-carrying policy that never overrode the handler is
        // almost certainly stranding the unit: the default makes that
        // visible.
        let mut stateful = StatefulNoopPolicy;
        stateful.on_device_restored(&mut ctx, PuId(0));
        assert_eq!(ctx.emitted, vec![EventKind::DeviceRestoredIgnored]);
        // Joins delegate to the same default.
        stateful.on_device_joined(&mut ctx, PuId(1));
        assert_eq!(ctx.emitted.len(), 2);
    }
}
