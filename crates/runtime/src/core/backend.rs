//! The execution-backend abstraction the scheduling core drives.
//!
//! A [`Backend`] owns the *mechanics* of running attempts — launching a
//! block on a unit, surfacing the next completion or failure, telling
//! time — while the core (`crate::core`) owns every *decision*: what to
//! assign, when to retry, when to quarantine, when the run is over.
//! The simulator backend advances a virtual clock through a binary-heap
//! event queue; the host backend blocks on a channel fed by real worker
//! threads. A future distributed backend would implement the same
//! trait.

use crate::events::EventSink;
use crate::fault::FaultAction;
use crate::task::{FailureReason, TaskId};

/// How a backend's `now()` behaves — the one semantic difference the
/// core must condition on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Virtual time: `now()` advances only when [`Backend::poll`]
    /// consumes an event. Deterministic; watchdog deadlines and
    /// probation timers are meaningless (nothing can be "late"), and
    /// task start times are known at launch.
    Virtual,
    /// Wall-clock time: `now()` advances on its own. The core arms
    /// watchdog deadlines and probation timers, and learns task start
    /// times only when completions report them.
    Wall,
}

/// One attempt of one block, as handed to [`Backend::launch`]. The core
/// resolves the fault plan (it owns the per-unit attempt counters) so
/// the backend just applies `inject`.
#[derive(Debug, Clone)]
pub struct LaunchSpec {
    /// Unit index the attempt runs on.
    pub pu: usize,
    /// Task identity, stable across retries of the same block.
    pub task: TaskId,
    /// First item of the block.
    pub offset: u64,
    /// Item count of the block.
    pub items: u64,
    /// 0-based attempt number (0 = first dispatch).
    pub attempt: u32,
    /// Delay before the attempt executes (retry backoff), seconds.
    pub backoff_s: f64,
    /// Injected fault for this attempt, if any.
    pub inject: Option<FaultAction>,
    /// Kernel-speed drift multiplier from the fault plan's drift
    /// schedule (1.0 = nominal). The core resolves the schedule (it owns
    /// the per-unit attempt counters); the backend applies the factor to
    /// kernel time only, never transfers. Wall-clock backends cannot
    /// speed real hardware up, so they realize factors below 1.0 as 1.0.
    pub drift: f64,
}

/// Outcome of [`Backend::launch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Launch {
    /// The attempt is in flight. `start` is its known start time when
    /// the backend can predict it (virtual clocks), `None` when the
    /// start is only discovered at completion (wall clocks).
    Started {
        /// Predicted start time, seconds.
        start: Option<f64>,
    },
    /// The unit's executor is gone; the attempt was not launched. The
    /// core reclaims the block and writes the unit off.
    UnitGone,
}

/// One observation surfaced by [`Backend::poll`].
#[derive(Debug, Clone, PartialEq)]
pub enum Polled {
    /// An attempt finished successfully.
    Completed {
        /// Unit index.
        pu: usize,
        /// Task identity.
        task: TaskId,
        /// Start time of the successful attempt, seconds.
        start: f64,
        /// Input-transfer time, seconds (0 for backends that don't
        /// model transfers).
        xfer_s: f64,
        /// Kernel time, seconds.
        proc_s: f64,
        /// Finish time, seconds.
        finish: f64,
    },
    /// An attempt failed (kernel panic, injected or real). The core
    /// decides retry / quarantine / re-credit.
    AttemptFailed {
        /// Unit index.
        pu: usize,
        /// Task identity.
        task: TaskId,
        /// Why the attempt failed.
        reason: FailureReason,
    },
    /// A unit went down for backend-external reasons (a simulated
    /// `Fail` perturbation). The backend has already marked its own
    /// device state; the core cancels the in-flight block and notifies
    /// the policy.
    UnitDown {
        /// Unit index.
        pu: usize,
    },
    /// A previously failed unit came back (a simulated `Restore`
    /// perturbation). The backend has already restored its own device
    /// state; the core re-admits the unit and notifies the policy.
    UnitRestored {
        /// Unit index.
        pu: usize,
    },
    /// The backend consumed an event with no scheduling consequence
    /// (e.g. a slowdown perturbation); the core just re-runs its loop
    /// checks.
    Nothing,
    /// The wake deadline passed with nothing to report; the core runs
    /// its watchdog scan.
    Timeout,
    /// The backend can never produce another observation (the event
    /// queue is empty). The core reports a stall.
    Drained,
    /// The backend's own machinery failed (worker channels gone).
    Infrastructure {
        /// Human-readable cause.
        detail: String,
    },
}

/// An execution substrate the scheduling core can drive. Implementors
/// supply mechanics only; all fault-response and assignment decisions
/// stay in the core (enforced by `cargo xtask lint`'s divergence
/// guard).
pub trait Backend {
    /// The backend's clock semantics (fixed for its lifetime).
    fn clock_kind(&self) -> ClockKind;

    /// Current time, seconds (virtual or wall per [`Self::clock_kind`]).
    fn now(&self) -> f64;

    /// Can `pu` accept a launch right now? (A host unit whose worker
    /// channel is gone is not ready.) Availability bookkeeping is the
    /// core's; this covers backend-private state only.
    fn unit_ready(&self, _pu: usize) -> bool {
        true
    }

    /// Launch one attempt of a block on a unit.
    fn launch(&mut self, spec: &LaunchSpec) -> Launch;

    /// Surface the next observation, blocking (wall clocks) or
    /// consuming the next event (virtual clocks). `wake` is an absolute
    /// time by which the core needs control back for its watchdog or
    /// probation timers; backends without real waiting ignore it.
    /// `events` lets the backend record backend-private occurrences
    /// (e.g. slowdown perturbations) into the run's stream.
    fn poll(&mut self, wake: Option<f64>, events: &mut EventSink) -> Polled;

    /// Charge scheduler computation time to the run. Virtual clocks
    /// delay subsequent launches; wall clocks already paid it.
    fn charge_overhead(&mut self, _seconds: f64) {}

    /// Watchdog arbitration: try to claim the in-flight attempt on `pu`
    /// as timed out. `false` means the attempt's real outcome already
    /// won the race (or the backend has no such race) and the unit must
    /// be left alone.
    fn try_claim_timeout(&mut self, _pu: usize) -> bool {
        false
    }

    /// The core quarantined `pu`; mirror it in backend-private state
    /// (the simulator marks the simulated device failed).
    fn on_unit_quarantined(&mut self, _pu: usize) {}

    /// The core admitted `pu` mid-run from the fault plan's join
    /// schedule; mirror it in backend-private state (the simulator
    /// restores the simulated device that was held latent). Backends
    /// whose units are always live need nothing.
    fn on_unit_joined(&mut self, _pu: usize) {}

    /// The core wrote `pu` off permanently; drop its executor (the host
    /// backend closes the worker channel).
    fn forget_unit(&mut self, _pu: usize) {}

    /// With no work in flight, could a future [`Self::poll`] still make
    /// progress? (The simulator answers yes while completions or
    /// restore perturbations are queued.) `false` lets the core report
    /// a stall instead of waiting forever.
    fn idle_progress_possible(&self) -> bool {
        false
    }

    /// Is a backend-external restore (a pending `Restore` perturbation)
    /// still queued? Only such a restore can bring an all-dead cluster
    /// back, so the core defers its stall verdict while one is pending.
    fn external_restore_possible(&self) -> bool {
        false
    }

    /// Bytes transferred into `pu`'s memory node over the run, for the
    /// report's data-movement accounting. Backends without a transfer
    /// ledger report 0.
    fn bytes_into(&self, _pu: usize) -> u64 {
        0
    }
}
