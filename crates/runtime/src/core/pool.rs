//! Disjoint-range bookkeeping over the application's item space.
//!
//! Both engines dispatch blocks as half-open ranges of `0..total_items`
//! and must preserve the disjoint-cover invariant: every item is
//! processed by exactly one *successful* attempt, even when failed
//! blocks are re-credited and re-dispatched to other units. The pool
//! pairs a fresh-range cursor with a reclaimed-range free list on top
//! of the loom-checked [`CompletionLatch`] (the item count and the
//! run-closed bit share one atomic word, so a re-credit can never race
//! a run completion — see `docs/SOUNDNESS.md`).

use crate::protocol::CompletionLatch;

/// The undistributed-item pool: a cursor over fresh ranges plus a free
/// list of reclaimed (failed-block) ranges, with the item count and the
/// run-completion latch backed by [`CompletionLatch`].
#[derive(Debug)]
pub struct WorkPool {
    latch: CompletionLatch,
    cursor: u64,
    /// Ranges of failed blocks returned to the pool; served before
    /// fresh cursor ranges so the disjoint-cover invariant holds under
    /// re-dispatch.
    reclaimed: Vec<(u64, u64)>,
}

impl WorkPool {
    /// A pool holding the full `0..total` item space.
    pub fn new(total: u64) -> WorkPool {
        WorkPool {
            latch: CompletionLatch::new(total),
            cursor: 0,
            reclaimed: Vec::new(),
        }
    }

    /// A pool holding only the complement of `completed` within
    /// `0..total` — the resume path: the uncovered holes become
    /// reclaimed-style ranges (served lowest offset first) and the
    /// cursor starts exhausted, so a resumed run dispatches exactly the
    /// items the checkpointed run never finished.
    ///
    /// `completed` must be sorted by offset, non-empty per range,
    /// disjoint and within `0..total` (what
    /// [`Checkpoint::validate`](crate::checkpoint::Checkpoint::validate)
    /// guarantees); otherwise an error describes the first violation.
    pub fn resume(total: u64, completed: &[(u64, u64)]) -> Result<WorkPool, String> {
        let mut holes: Vec<(u64, u64)> = Vec::new();
        let mut covered = 0u64;
        let mut prev_end = 0u64;
        for (i, &(off, len)) in completed.iter().enumerate() {
            if len == 0 {
                return Err(format!("completed range #{i} is empty"));
            }
            if off < prev_end {
                return Err(format!(
                    "completed range #{i} at {off} overlaps or precedes the range ending at {prev_end}"
                ));
            }
            let end = off
                .checked_add(len)
                .ok_or_else(|| format!("completed range #{i} overflows"))?;
            if end > total {
                return Err(format!(
                    "completed range #{i} ends at {end}, past total {total}"
                ));
            }
            if off > prev_end {
                holes.push((prev_end, off - prev_end));
            }
            covered += len;
            prev_end = end;
        }
        if prev_end < total {
            holes.push((prev_end, total - prev_end));
        }
        // `take` pops from the back, so store holes high-to-low to
        // serve them in ascending offset order.
        holes.reverse();
        Ok(WorkPool {
            latch: CompletionLatch::new(total - covered),
            cursor: total,
            reclaimed: holes,
        })
    }

    /// Items not yet distributed (0 after a close).
    pub fn remaining(&self) -> u64 {
        self.latch.remaining()
    }

    /// Take a contiguous range of up to `want` items: reclaimed ranges
    /// first (splitting when larger than the request), then fresh items
    /// from the cursor. Returns `(offset, items)`; `None` when the pool
    /// is empty or the run already closed. A reclaimed fragment may be
    /// smaller than the request, in which case fewer items are handed
    /// out — callers (and policies) must tolerate any return value.
    pub fn take(&mut self, want: u64) -> Option<(u64, u64)> {
        let want = want.min(self.latch.remaining());
        if want == 0 {
            return None;
        }
        let (offset, got) = if let Some((off, len)) = self.reclaimed.pop() {
            if len > want {
                self.reclaimed.push((off + want, len - want));
                (off, want)
            } else {
                (off, len)
            }
        } else {
            let off = self.cursor;
            self.cursor += want;
            (off, want)
        };
        let debited = self.latch.take(got);
        debug_assert_eq!(debited, got, "latch and range pool out of sync");
        Some((offset, got))
    }

    /// Return a failed block's range to the pool.
    pub fn reclaim(&mut self, offset: u64, items: u64) {
        // The driver only reclaims while work is in flight, and the
        // latch closes only when nothing is — so the re-credit cannot
        // race a close (the interleaving the loom model rules out).
        let credited = self.latch.recredit(items);
        debug_assert!(credited, "re-credit refused: run already closed");
        self.reclaimed.push((offset, items));
    }

    /// Close out the run. Succeeds exactly once, and only with an empty
    /// pool.
    pub fn try_close(&self) -> bool {
        self.latch.try_close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ranges_advance_the_cursor() {
        let mut p = WorkPool::new(100);
        assert_eq!(p.take(40), Some((0, 40)));
        assert_eq!(p.take(100), Some((40, 60)), "clamped to the pool");
        assert_eq!(p.take(1), None);
        assert_eq!(p.remaining(), 0);
        assert!(p.try_close());
    }

    #[test]
    fn reclaimed_ranges_are_served_first_and_split() {
        let mut p = WorkPool::new(100);
        let (off, got) = p.take(50).unwrap();
        p.reclaim(off, got);
        assert_eq!(p.remaining(), 100);
        // The reclaimed range is re-served, splitting on demand.
        assert_eq!(p.take(20), Some((0, 20)));
        assert_eq!(p.take(100), Some((20, 30)), "fragment caps the grant");
        assert_eq!(p.take(100), Some((50, 50)), "then back to the cursor");
        assert!(p.try_close());
    }

    #[test]
    fn zero_want_takes_nothing() {
        let mut p = WorkPool::new(10);
        assert_eq!(p.take(0), None);
        assert_eq!(p.remaining(), 10);
    }

    #[test]
    fn resume_serves_exactly_the_holes_in_order() {
        // Completed: [10,30) and [50,90) of 0..100 — holes are [0,10),
        // [30,50), [90,100).
        let mut p = WorkPool::resume(100, &[(10, 20), (50, 40)]).unwrap();
        assert_eq!(p.remaining(), 40);
        assert_eq!(p.take(1000), Some((0, 10)));
        assert_eq!(p.take(5), Some((30, 5)), "holes split on demand");
        assert_eq!(p.take(1000), Some((35, 15)));
        assert_eq!(p.take(1000), Some((90, 10)));
        assert_eq!(p.take(1), None);
        assert!(p.try_close());
    }

    #[test]
    fn resume_with_full_or_empty_cover() {
        let mut full = WorkPool::resume(50, &[(0, 50)]).unwrap();
        assert_eq!(full.remaining(), 0);
        assert_eq!(full.take(1), None);
        assert!(full.try_close());

        let mut empty = WorkPool::resume(50, &[]).unwrap();
        assert_eq!(empty.remaining(), 50);
        assert_eq!(empty.take(1000), Some((0, 50)));
    }

    #[test]
    fn resume_rejects_malformed_covers() {
        assert!(WorkPool::resume(100, &[(0, 0)]).is_err(), "empty range");
        assert!(
            WorkPool::resume(100, &[(0, 50), (40, 10)]).is_err(),
            "overlap"
        );
        assert!(
            WorkPool::resume(100, &[(50, 10), (0, 10)]).is_err(),
            "unsorted"
        );
        assert!(WorkPool::resume(100, &[(90, 20)]).is_err(), "out of bounds");
    }

    #[test]
    fn resumed_pool_still_supports_reclaim() {
        let mut p = WorkPool::resume(100, &[(0, 60)]).unwrap();
        let (off, got) = p.take(25).unwrap();
        assert_eq!((off, got), (60, 25));
        p.reclaim(off, got);
        assert_eq!(p.remaining(), 40);
        assert_eq!(p.take(1000), Some((60, 25)), "re-credited hole reissued");
        assert_eq!(p.take(1000), Some((85, 15)));
        assert!(p.try_close());
    }

    #[test]
    fn disjoint_cover_holds_under_reclaim() {
        let mut p = WorkPool::new(1000);
        let mut done: Vec<(u64, u64)> = Vec::new();
        let mut flaky = 0;
        while let Some((off, got)) = p.take(97) {
            // Fail every third block once.
            flaky += 1;
            if flaky % 3 == 0 {
                p.reclaim(off, got);
                flaky += 1; // don't re-fail the same fragment forever
            } else {
                done.push((off, got));
            }
        }
        done.sort_unstable();
        let mut expect = 0;
        for (off, len) in done {
            assert_eq!(off, expect, "gap or overlap in completed ranges");
            expect = off + len;
        }
        assert_eq!(expect, 1000);
        assert!(p.try_close());
    }
}
