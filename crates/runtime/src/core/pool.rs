//! Disjoint-range bookkeeping over the application's item space.
//!
//! Both engines dispatch blocks as half-open ranges of `0..total_items`
//! and must preserve the disjoint-cover invariant: every item is
//! processed by exactly one *successful* attempt, even when failed
//! blocks are re-credited and re-dispatched to other units. The pool
//! pairs a fresh-range cursor with a reclaimed-range free list on top
//! of the loom-checked [`CompletionLatch`] (the item count and the
//! run-closed bit share one atomic word, so a re-credit can never race
//! a run completion — see `docs/SOUNDNESS.md`).
//!
//! Claims are budgeted in **cost units**, not item counts: `take`
//! converts its budget into an item range through the pool's
//! [`Weights`] (binary search on the per-item prefix sums), so a claim
//! on an irregular workload returns a range whose *weight*, not
//! length, approximates the budget. Under [`Weights::Uniform`] —
//! the default — cost and item count coincide and every path below
//! behaves exactly as the pre-weights pool did. The completion latch
//! always counts *items*: the disjoint-cover invariant is exact in
//! item space, and weights are positional, so a re-credited fragment
//! keeps its original weight by construction.

use crate::protocol::CompletionLatch;
use crate::sync::Arc;
use crate::weights::Weights;

/// The undistributed-item pool: a cursor over fresh ranges plus a free
/// list of reclaimed (failed-block) ranges, with the item count and the
/// run-completion latch backed by [`CompletionLatch`], and claims
/// budgeted through the workload's [`Weights`].
#[derive(Debug)]
pub struct WorkPool {
    latch: CompletionLatch,
    cursor: u64,
    /// Ranges of failed blocks returned to the pool; served before
    /// fresh cursor ranges so the disjoint-cover invariant holds under
    /// re-dispatch.
    reclaimed: Vec<(u64, u64)>,
    /// Per-item cost of the workload; uniform unless the application
    /// declared an irregular cost vector.
    weights: Arc<Weights>,
}

impl WorkPool {
    /// A pool holding the full `0..total` item space under uniform
    /// weights (cost ≡ item count).
    pub fn new(total: u64) -> WorkPool {
        WorkPool::with_weights(total, Weights::uniform())
    }

    /// A pool holding the full `0..total` item space under the given
    /// per-item weights.
    pub fn with_weights(total: u64, weights: Arc<Weights>) -> WorkPool {
        WorkPool {
            latch: CompletionLatch::new(total),
            cursor: 0,
            reclaimed: Vec::new(),
            weights,
        }
    }

    /// A pool holding only the complement of `completed` within
    /// `0..total` — the resume path: the uncovered holes become
    /// reclaimed-style ranges (served lowest offset first) and the
    /// cursor starts exhausted, so a resumed run dispatches exactly the
    /// items the checkpointed run never finished. Uniform weights; see
    /// [`WorkPool::resume_with_weights`] for irregular workloads.
    ///
    /// `completed` must be sorted by offset, non-empty per range,
    /// disjoint and within `0..total` (what
    /// [`Checkpoint::validate`](crate::checkpoint::Checkpoint::validate)
    /// guarantees); otherwise an error describes the first violation.
    pub fn resume(total: u64, completed: &[(u64, u64)]) -> Result<WorkPool, String> {
        WorkPool::resume_with_weights(total, completed, Weights::uniform())
    }

    /// [`WorkPool::resume`] with per-item weights: the uncovered holes
    /// keep their positional cost, so a resumed weighted run budgets
    /// claims over exactly the weight the checkpointed run left behind.
    pub fn resume_with_weights(
        total: u64,
        completed: &[(u64, u64)],
        weights: Arc<Weights>,
    ) -> Result<WorkPool, String> {
        let mut holes: Vec<(u64, u64)> = Vec::new();
        let mut covered = 0u64;
        let mut prev_end = 0u64;
        for (i, &(off, len)) in completed.iter().enumerate() {
            if len == 0 {
                return Err(format!("completed range #{i} is empty"));
            }
            if off < prev_end {
                return Err(format!(
                    "completed range #{i} at {off} overlaps or precedes the range ending at {prev_end}"
                ));
            }
            let end = off
                .checked_add(len)
                .ok_or_else(|| format!("completed range #{i} overflows"))?;
            if end > total {
                return Err(format!(
                    "completed range #{i} ends at {end}, past total {total}"
                ));
            }
            if off > prev_end {
                holes.push((prev_end, off - prev_end));
            }
            covered += len;
            prev_end = end;
        }
        if prev_end < total {
            holes.push((prev_end, total - prev_end));
        }
        // `take` pops from the back, so store holes high-to-low to
        // serve them in ascending offset order.
        holes.reverse();
        Ok(WorkPool {
            latch: CompletionLatch::new(total - covered),
            cursor: total,
            reclaimed: holes,
            weights,
        })
    }

    /// Items not yet distributed (0 after a close).
    pub fn remaining(&self) -> u64 {
        self.latch.remaining()
    }

    /// Total cost of the items not yet distributed: the reclaimed
    /// fragments' weight plus the fresh range's weight. Equal to
    /// [`remaining`](WorkPool::remaining) under uniform weights.
    pub fn remaining_cost(&self) -> u64 {
        let reclaimed_items: u64 = self.reclaimed.iter().map(|&(_, len)| len).sum();
        let fresh = self.latch.remaining().saturating_sub(reclaimed_items);
        self.reclaimed
            .iter()
            .map(|&(off, len)| self.weights.cost(off, len))
            .sum::<u64>()
            .saturating_add(self.weights.cost(self.cursor, fresh))
    }

    /// The workload's per-item weights.
    pub fn weights(&self) -> &Arc<Weights> {
        &self.weights
    }

    /// Take a contiguous range worth up to `budget_cost` cost units:
    /// reclaimed ranges first (splitting when heavier than the budget),
    /// then fresh items from the cursor. The budget is converted to an
    /// item count through the pool's [`Weights`] (under uniform weights
    /// the budget *is* an item count). Returns `(offset, items)`;
    /// `None` when the pool is empty or the run already closed. A
    /// nonzero budget always buys at least one item, and a reclaimed
    /// fragment may carry less weight than the budget — callers (and
    /// policies) must tolerate any return value.
    pub fn take(&mut self, budget_cost: u64) -> Option<(u64, u64)> {
        if budget_cost == 0 || self.latch.remaining() == 0 {
            return None;
        }
        let (offset, got) = if let Some((off, len)) = self.reclaimed.pop() {
            let n = self.weights.items_for_budget(off, len, budget_cost);
            if n < len {
                self.reclaimed.push((off + n, len - n));
            }
            (off, n)
        } else {
            let avail = self.latch.remaining();
            let off = self.cursor;
            let n = self.weights.items_for_budget(off, avail, budget_cost);
            self.cursor += n;
            (off, n)
        };
        if got == 0 {
            return None;
        }
        let debited = self.latch.take(got);
        debug_assert_eq!(debited, got, "latch and range pool out of sync");
        Some((offset, got))
    }

    /// Like [`take`](WorkPool::take), but only claims items inside
    /// `[lo, hi)` — the shard-scoped claim behind
    /// `SchedulerCtx::assign_within`. Serves the highest-offset
    /// reclaimed fragment overlapping the range (splitting off any
    /// out-of-range head/tail back onto the free list), and never
    /// touches fragments outside the range, so claims respect shard
    /// ownership borders. On a pre-[`fragment`](WorkPool::fragment)ed
    /// pool every fragment lies wholly inside one shard and the
    /// head/tail splits are no-ops. Returns `None` when no unclaimed
    /// work overlaps the range.
    pub fn take_within(&mut self, lo: u64, hi: u64, budget_cost: u64) -> Option<(u64, u64)> {
        if budget_cost == 0 || lo >= hi || self.latch.remaining() == 0 {
            return None;
        }
        // Highest-offset overlapping fragment, mirroring `take`'s
        // pop-from-the-back order within the shard.
        let idx = self
            .reclaimed
            .iter()
            .rposition(|&(off, len)| off < hi && off + len > lo)?;
        let (off, len) = self.reclaimed.remove(idx);
        let end = off + len;
        // Split off the parts outside [lo, hi); they stay reclaimed.
        if off < lo {
            self.reclaimed.push((off, lo - off));
        }
        if end > hi {
            self.reclaimed.push((hi, end - hi));
        }
        let (off, len) = (off.max(lo), end.min(hi) - off.max(lo));
        let n = self.weights.items_for_budget(off, len, budget_cost);
        if n < len {
            self.reclaimed.push((off + n, len - n));
        }
        if n == 0 {
            return None;
        }
        let debited = self.latch.take(n);
        debug_assert_eq!(debited, n, "latch and range pool out of sync");
        Some((off, n))
    }

    /// Pre-fragment a fresh pool at the given ascending shard bounds:
    /// the untouched cursor range becomes reclaimed-style fragments
    /// split at every bound, served in ascending offset order, and the
    /// cursor starts exhausted. After this, every fragment lies wholly
    /// inside one shard, so [`take_within`](WorkPool::take_within)
    /// claims never straddle an ownership border. Bounds outside
    /// `(cursor, total)` are ignored. A no-op when nothing remains.
    pub fn fragment(&mut self, bounds: &[u64]) {
        let reclaimed_items: u64 = self.reclaimed.iter().map(|&(_, len)| len).sum();
        let fresh = self.latch.remaining().saturating_sub(reclaimed_items);
        if fresh == 0 {
            return;
        }
        let (start, end) = (self.cursor, self.cursor + fresh);
        let mut cuts: Vec<u64> = bounds
            .iter()
            .copied()
            .filter(|&b| b > start && b < end)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(end);
        // `take`/`take_within` pop from the back; store high-to-low so
        // fresh work is still served in ascending offset order.
        let mut pieces: Vec<(u64, u64)> = Vec::with_capacity(cuts.len());
        let mut at = start;
        for cut in cuts {
            pieces.push((at, cut - at));
            at = cut;
        }
        pieces.reverse();
        // Existing reclaimed fragments (resume holes) must still be
        // served first: keep them at the back of the LIFO list.
        pieces.append(&mut self.reclaimed);
        self.reclaimed = pieces;
        self.cursor = end;
    }

    /// Return a failed block's range to the pool. Weights are
    /// positional, so the fragment re-enters with its original cost.
    pub fn reclaim(&mut self, offset: u64, items: u64) {
        // The driver only reclaims while work is in flight, and the
        // latch closes only when nothing is — so the re-credit cannot
        // race a close (the interleaving the loom model rules out).
        let credited = self.latch.recredit(items);
        debug_assert!(credited, "re-credit refused: run already closed");
        self.reclaimed.push((offset, items));
    }

    /// Close out the run. Succeeds exactly once, and only with an empty
    /// pool.
    pub fn try_close(&self) -> bool {
        self.latch.try_close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ranges_advance_the_cursor() {
        let mut p = WorkPool::new(100);
        assert_eq!(p.take(40), Some((0, 40)));
        assert_eq!(p.take(100), Some((40, 60)), "clamped to the pool");
        assert_eq!(p.take(1), None);
        assert_eq!(p.remaining(), 0);
        assert!(p.try_close());
    }

    #[test]
    fn reclaimed_ranges_are_served_first_and_split() {
        let mut p = WorkPool::new(100);
        let (off, got) = p.take(50).unwrap();
        p.reclaim(off, got);
        assert_eq!(p.remaining(), 100);
        // The reclaimed range is re-served, splitting on demand.
        assert_eq!(p.take(20), Some((0, 20)));
        assert_eq!(p.take(100), Some((20, 30)), "fragment caps the grant");
        assert_eq!(p.take(100), Some((50, 50)), "then back to the cursor");
        assert!(p.try_close());
    }

    #[test]
    fn zero_want_takes_nothing() {
        let mut p = WorkPool::new(10);
        assert_eq!(p.take(0), None);
        assert_eq!(p.remaining(), 10);
    }

    #[test]
    fn resume_serves_exactly_the_holes_in_order() {
        // Completed: [10,30) and [50,90) of 0..100 — holes are [0,10),
        // [30,50), [90,100).
        let mut p = WorkPool::resume(100, &[(10, 20), (50, 40)]).unwrap();
        assert_eq!(p.remaining(), 40);
        assert_eq!(p.take(1000), Some((0, 10)));
        assert_eq!(p.take(5), Some((30, 5)), "holes split on demand");
        assert_eq!(p.take(1000), Some((35, 15)));
        assert_eq!(p.take(1000), Some((90, 10)));
        assert_eq!(p.take(1), None);
        assert!(p.try_close());
    }

    #[test]
    fn resume_with_full_or_empty_cover() {
        let mut full = WorkPool::resume(50, &[(0, 50)]).unwrap();
        assert_eq!(full.remaining(), 0);
        assert_eq!(full.take(1), None);
        assert!(full.try_close());

        let mut empty = WorkPool::resume(50, &[]).unwrap();
        assert_eq!(empty.remaining(), 50);
        assert_eq!(empty.take(1000), Some((0, 50)));
    }

    #[test]
    fn resume_rejects_malformed_covers() {
        assert!(WorkPool::resume(100, &[(0, 0)]).is_err(), "empty range");
        assert!(
            WorkPool::resume(100, &[(0, 50), (40, 10)]).is_err(),
            "overlap"
        );
        assert!(
            WorkPool::resume(100, &[(50, 10), (0, 10)]).is_err(),
            "unsorted"
        );
        assert!(WorkPool::resume(100, &[(90, 20)]).is_err(), "out of bounds");
    }

    #[test]
    fn resumed_pool_still_supports_reclaim() {
        let mut p = WorkPool::resume(100, &[(0, 60)]).unwrap();
        let (off, got) = p.take(25).unwrap();
        assert_eq!((off, got), (60, 25));
        p.reclaim(off, got);
        assert_eq!(p.remaining(), 40);
        assert_eq!(p.take(1000), Some((60, 25)), "re-credited hole reissued");
        assert_eq!(p.take(1000), Some((85, 15)));
        assert!(p.try_close());
    }

    #[test]
    fn disjoint_cover_holds_under_reclaim() {
        let mut p = WorkPool::new(1000);
        let mut done: Vec<(u64, u64)> = Vec::new();
        let mut flaky = 0;
        while let Some((off, got)) = p.take(97) {
            // Fail every third block once.
            flaky += 1;
            if flaky % 3 == 0 {
                p.reclaim(off, got);
                flaky += 1; // don't re-fail the same fragment forever
            } else {
                done.push((off, got));
            }
        }
        done.sort_unstable();
        let mut expect = 0;
        for (off, len) in done {
            assert_eq!(off, expect, "gap or overlap in completed ranges");
            expect = off + len;
        }
        assert_eq!(expect, 1000);
        assert!(p.try_close());
    }

    #[test]
    fn fragment_splits_the_fresh_range_at_shard_bounds() {
        let mut p = WorkPool::new(100);
        p.fragment(&[30, 60]);
        assert_eq!(p.remaining(), 100);
        // Unrestricted takes still serve ascending, shard by shard.
        assert_eq!(p.take(1000), Some((0, 30)));
        assert_eq!(p.take(1000), Some((30, 30)));
        assert_eq!(p.take(1000), Some((60, 40)));
        assert_eq!(p.take(1), None);
        assert!(p.try_close());
    }

    #[test]
    fn take_within_claims_only_inside_the_shard() {
        let mut p = WorkPool::new(100);
        p.fragment(&[30, 60]);
        // Shard 1 is [30, 60).
        assert_eq!(p.take_within(30, 60, 10), Some((30, 10)));
        assert_eq!(p.take_within(30, 60, 1000), Some((40, 20)));
        assert_eq!(p.take_within(30, 60, 1), None, "shard exhausted");
        // Other shards untouched.
        assert_eq!(p.remaining(), 70);
        assert_eq!(p.take_within(0, 30, 1000), Some((0, 30)));
        assert_eq!(p.take_within(60, 100, 1000), Some((60, 40)));
        assert!(p.try_close());
    }

    #[test]
    fn take_within_splits_straddling_fragments() {
        // An unfragmented pool: the single fresh range straddles any
        // shard border, and take_within must carve out only the
        // overlap.
        let mut p = WorkPool::new(100);
        p.fragment(&[]);
        assert_eq!(p.take_within(40, 70, 1000), Some((40, 30)));
        assert_eq!(p.remaining(), 70);
        // The head and tail remain claimable.
        assert_eq!(p.take_within(0, 40, 1000), Some((0, 40)));
        assert_eq!(p.take_within(70, 100, 1000), Some((70, 30)));
        assert!(p.try_close());
    }

    #[test]
    fn take_within_respects_cost_budgets_and_reclaim() {
        let w = Arc::new(Weights::per_item([10, 10, 1, 1, 1, 1]));
        let mut p = WorkPool::with_weights(6, Arc::clone(&w));
        p.fragment(&[2]);
        // Shard 0 = heavy items; a 10-unit budget buys one.
        assert_eq!(p.take_within(0, 2, 10), Some((0, 1)));
        p.reclaim(0, 1);
        assert_eq!(p.take_within(0, 2, 100), Some((0, 1)), "re-credit reissued");
        assert_eq!(p.take_within(0, 2, 100), Some((1, 1)));
        assert_eq!(p.take_within(0, 2, 100), None);
        assert_eq!(p.take_within(2, 6, 100), Some((2, 4)));
        assert!(p.try_close());
    }

    #[test]
    fn fragment_after_resume_keeps_holes_first() {
        // Resume holes are [0,10) and [90,100); fresh work is gone.
        let mut p = WorkPool::resume(100, &[(10, 80)]).unwrap();
        p.fragment(&[50]);
        assert_eq!(p.remaining(), 20);
        assert_eq!(p.take(1000), Some((0, 10)));
        assert_eq!(p.take(1000), Some((90, 10)));
        assert!(p.try_close());
    }

    #[test]
    fn weighted_claims_are_budgeted_by_cost_not_count() {
        // Items 0..4 cost 10 each, items 4..100 cost 1 each.
        let costs = (0..100u64).map(|i| if i < 4 { 10 } else { 1 });
        let w = Arc::new(Weights::per_item(costs));
        let mut p = WorkPool::with_weights(100, Arc::clone(&w));
        assert_eq!(p.remaining_cost(), 136);
        // A 20-unit budget buys two heavy items, not twenty.
        assert_eq!(p.take(20), Some((0, 2)));
        // A budget below one item's cost still buys that item.
        assert_eq!(p.take(3), Some((2, 1)));
        // Across the heavy/light boundary the budget spans many items.
        assert_eq!(p.take(30), Some((3, 21)));
        assert_eq!(p.remaining(), 76);
        assert_eq!(p.remaining_cost(), 76);
    }

    #[test]
    fn weighted_reclaim_keeps_the_fragment_weight() {
        let w = Arc::new(Weights::per_item([10, 10, 1, 1, 1, 1]));
        let mut p = WorkPool::with_weights(6, Arc::clone(&w));
        let (off, got) = p.take(20).unwrap();
        assert_eq!((off, got), (0, 2));
        p.reclaim(off, got);
        assert_eq!(p.remaining_cost(), 24);
        // The re-credited fragment is re-served at its original weight:
        // a 10-unit budget now buys only the first heavy item back.
        assert_eq!(p.take(10), Some((0, 1)));
        assert_eq!(p.take(100), Some((1, 1)), "fragment caps the grant");
        assert_eq!(p.take(100), Some((2, 4)));
        assert!(p.try_close());
    }

    #[test]
    fn weighted_resume_budgets_over_the_holes() {
        let w = Arc::new(Weights::per_item([5, 5, 5, 5, 1, 1, 1, 1]));
        // Completed [2,6) — holes are [0,2) (cost 10) and [6,8) (cost 2).
        let mut p = WorkPool::resume_with_weights(8, &[(2, 4)], Arc::clone(&w)).unwrap();
        assert_eq!(p.remaining(), 4);
        assert_eq!(p.remaining_cost(), 12);
        assert_eq!(p.take(5), Some((0, 1)), "budget splits the weighted hole");
        assert_eq!(p.take(100), Some((1, 1)));
        assert_eq!(p.take(100), Some((6, 2)));
        assert!(p.try_close());
    }

    proptest::proptest! {
        /// Weighted cover invariant: however claims and re-credits
        /// interleave, the served ranges form a disjoint, complete
        /// cover of the item space, and the served weight sums to the
        /// total cost.
        #[test]
        fn weighted_cover_is_disjoint_and_complete(
            costs in proptest::collection::vec(0u64..50, 1..200),
            budgets in proptest::collection::vec(1u64..100, 1..64),
            fail_every in 2usize..6,
        ) {
            let total = costs.len() as u64;
            let w = Arc::new(Weights::per_item(costs));
            let mut p = WorkPool::with_weights(total, Arc::clone(&w));
            let mut done: Vec<(u64, u64)> = Vec::new();
            let mut served_cost = 0u64;
            let mut i = 0usize;
            let mut flaky = 0usize;
            while let Some((off, got)) = p.take(budgets[i % budgets.len()]) {
                i += 1;
                flaky += 1;
                if flaky % fail_every == 0 {
                    p.reclaim(off, got);
                } else {
                    served_cost += w.cost(off, got);
                    done.push((off, got));
                }
            }
            done.sort_unstable();
            let mut expect = 0u64;
            for (off, len) in done {
                proptest::prop_assert_eq!(off, expect, "gap or overlap");
                expect = off + len;
            }
            proptest::prop_assert_eq!(expect, total);
            proptest::prop_assert_eq!(served_cost, w.total_cost(total));
            proptest::prop_assert!(p.try_close());
        }

        /// Resume round-trips weighted holes: whatever cover a run
        /// leaves behind, a resumed pool serves exactly the complement
        /// at exactly the complement's weight.
        #[test]
        fn weighted_resume_round_trips_holes(
            costs in proptest::collection::vec(0u64..50, 2..200),
            cuts in proptest::collection::vec(0.0f64..1.0, 1..8),
            budget in 1u64..60,
        ) {
            let total = costs.len() as u64;
            let w = Arc::new(Weights::per_item(costs));
            // Build a sorted disjoint cover from the random cuts.
            let mut bounds: Vec<u64> =
                cuts.iter().map(|f| (f * total as f64) as u64).collect();
            bounds.sort_unstable();
            bounds.dedup();
            let mut completed: Vec<(u64, u64)> = Vec::new();
            for pair in bounds.chunks(2) {
                if let [a, b] = pair {
                    if b > a {
                        completed.push((*a, b - a));
                    }
                }
            }
            let completed_cost: u64 =
                completed.iter().map(|&(o, l)| w.cost(o, l)).sum();
            let mut p =
                WorkPool::resume_with_weights(total, &completed, Arc::clone(&w)).unwrap();
            proptest::prop_assert_eq!(
                p.remaining_cost(),
                w.total_cost(total) - completed_cost
            );
            let mut served: Vec<(u64, u64)> = completed.clone();
            while let Some(r) = p.take(budget) {
                served.push(r);
            }
            served.sort_unstable();
            let mut expect = 0u64;
            for (off, len) in served {
                proptest::prop_assert_eq!(off, expect, "gap or overlap");
                expect = off + len;
            }
            proptest::prop_assert_eq!(expect, total);
            proptest::prop_assert!(p.try_close());
        }

        /// Re-credited fragments keep their original weight: reclaim
        /// and re-serve any claimed range and its cost is unchanged.
        #[test]
        fn reclaimed_fragments_keep_their_weight(
            costs in proptest::collection::vec(0u64..50, 1..200),
            budget in 1u64..100,
        ) {
            let total = costs.len() as u64;
            let w = Arc::new(Weights::per_item(costs));
            let mut p = WorkPool::with_weights(total, Arc::clone(&w));
            while let Some((off, got)) = p.take(budget) {
                let cost_before = w.cost(off, got);
                p.reclaim(off, got);
                // Re-serve the fragment with an unlimited budget: it
                // comes back whole, at the same offset and weight.
                let (off2, got2) = p.take(u64::MAX).unwrap();
                proptest::prop_assert_eq!((off2, got2), (off, got));
                proptest::prop_assert_eq!(w.cost(off2, got2), cost_before);
            }
            proptest::prop_assert!(p.try_close());
        }
    }
}
