//! The cluster tier: multi-node balancing with node-level fault
//! domains.
//!
//! A [`ClusterBackend`] composes *per-node* executions behind the same
//! [`Backend`] trait the single-node engines implement, so the shared
//! scheduling core ([`super::drive`]) runs unchanged one level up: each
//! "unit" of the outer drive is a whole node, each "task" is a chunk of
//! the cost-weighted item space, and the outer policy (the diffusion
//! policy in `plb-hec`) decides which node works on which shard of the
//! item space. Inside every chunk a [`NodeRunner`] executes the items
//! with the node's own intra-node engine and policy — PLB-HeC within
//! the node, diffusion between nodes.
//!
//! Node-level fault domains come from a [`NodeFaultPlan`]
//! (`plb-hetsim`): whole-node crashes keyed by completed-chunk count,
//! network partitions over virtual-time windows, and lossy links that
//! stretch inter-node transfers. Chunks assigned to a node that does
//! not own their home shard are *migrations*: the chunk's input payload
//! crosses a [`Link`] (cluster Ethernet latency), with a delivery
//! deadline and exponential-backoff retries while the destination is
//! unreachable. Delivery is exactly-once — the node runner executes a
//! chunk only after a successful delivery, and a delivery that exhausts
//! its retries surfaces as a failed attempt so the core's fault-response
//! machinery (retry, quarantine, re-credit) reassigns the range with no
//! item lost or double-counted.
//!
//! The tier emits the trace-v6 cluster events (`node_quarantined`,
//! `migration_sent`, `migration_retried`, `cover_recredited`; the
//! diffusion policy adds `node_joined`) and stamps the node roster into
//! checkpoint-v3 workload identity so a mid-partition run only resumes
//! under the same cluster shape. See `docs/FAULT_TOLERANCE.md`, "Node
//! fault domains".

use super::backend::{Backend, ClockKind, Launch, LaunchSpec, Polled};
use super::{drive, Durability};
use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointWriter};
use crate::engine::{RunError, SimEngine};
use crate::events::{EventKind, EventSink};
use crate::fault::{FaultAction, FaultPlan, FaultToleranceConfig};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle};
use crate::sync::Arc;
use crate::task::{FailureReason, TaskId};
use crate::trace::Trace;
use crate::weights::Weights;
use plb_hetsim::transfer::Link;
use plb_hetsim::workload::CostModel;
use plb_hetsim::{ClusterSim, NodeFaultPlan, PuId, PuKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Inter-node migration tunables: the link a migrated chunk's payload
/// crosses, the payload size, and the delivery retry envelope.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// The inter-node link (defaults to
    /// [`Link::cluster_ethernet`] — 1 ms latency, 1.1 GB/s).
    pub link: Link,
    /// Payload bytes per migrated item (input block the destination
    /// node needs before it can execute the chunk).
    pub bytes_per_item: f64,
    /// Give up on a delivery this many seconds after the first send:
    /// the attempt surfaces as `deadline-exceeded` and the core's
    /// fault response re-credits the range.
    pub deadline_s: f64,
    /// Backoff before the first delivery retry, seconds; doubles on
    /// each further retry of the same chunk.
    pub base_backoff_s: f64,
    /// Delivery attempts per chunk (1 = no retry).
    pub max_attempts: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            link: Link::cluster_ethernet(),
            bytes_per_item: 64.0,
            deadline_s: 5.0,
            base_backoff_s: 0.05,
            max_attempts: 4,
        }
    }
}

/// What one node-level chunk execution produced: the node-local
/// makespan (seconds of the node's own engine run) and the bytes its
/// intra-node data movement pulled in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkOutcome {
    /// Virtual (or wall) seconds the node spent on the chunk.
    pub makespan_s: f64,
    /// Bytes moved inside the node while executing the chunk.
    pub bytes_in: u64,
}

/// Executes one chunk of the global item space on one node. The sim
/// runner wraps per-node [`ClusterSim`]s; the host runner in
/// `crate::host` wraps nested real-thread engines. Runners keep their
/// per-node policies alive across chunks so intra-node learning (the
/// PLB-HeC profiles) accumulates.
pub trait NodeRunner {
    /// Number of nodes in the cluster.
    fn node_count(&self) -> usize;

    /// Display name of node `node` (stamped into checkpoint identity).
    fn node_name(&self, node: usize) -> String;

    /// Execute the global items `offset..offset + items` on `node`,
    /// returning the node-local timing. An `Err` surfaces as a failed
    /// attempt of the chunk (the core retries or re-credits it).
    fn run_chunk(&mut self, node: usize, offset: u64, items: u64) -> Result<ChunkOutcome, String>;
}

/// Split `total_items` into per-node home shards of (approximately)
/// equal *cost*: returns the interior boundaries (`bounds[i]` = first
/// item of shard `i + 1`), ascending, exclusive of `0` and the total.
/// Under uniform weights the shards have equal item counts.
pub fn equal_cost_shards(total_items: u64, n_nodes: usize, weights: &Weights) -> Vec<u64> {
    if n_nodes <= 1 || total_items == 0 {
        return Vec::new();
    }
    let total_cost = weights.total_cost(total_items);
    let mut bounds = Vec::with_capacity(n_nodes - 1);
    for k in 1..n_nodes as u64 {
        let target = (u128::from(total_cost) * u128::from(k) / n_nodes as u128) as u64;
        // Smallest boundary whose prefix cost reaches the target.
        let (mut lo, mut hi) = (0u64, total_items);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if weights.cost(0, mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        bounds.push(lo);
    }
    bounds.sort_unstable();
    bounds.dedup();
    bounds.retain(|&b| b > 0 && b < total_items);
    bounds
}

/// Why a node left the active set, as reported in `node_quarantined`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DownReason {
    Crash,
    Partition,
}

impl DownReason {
    fn name(self) -> &'static str {
        match self {
            DownReason::Crash => "crash",
            DownReason::Partition => "partition",
        }
    }
}

/// Heap payloads of the cluster tier's virtual clock.
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    /// A chunk's node-level execution finishes (stale when the node's
    /// epoch moved on — it was quarantined or crashed mid-chunk).
    ChunkDone {
        node: usize,
        epoch: u64,
        task: TaskId,
        start: f64,
        xfer_s: f64,
        proc_s: f64,
        /// Injected panic or a runner error: surfaces as a failed
        /// attempt instead of a completion.
        doomed: bool,
    },
    /// A migration exhausted its delivery retries (or its deadline).
    DeliveryFailed {
        node: usize,
        epoch: u64,
        task: TaskId,
    },
    /// A node's fault window opens: crash (permanent) or partition.
    NodeDown { node: usize, reason: DownReason },
    /// A partition heals.
    NodeUp { node: usize },
    /// A future-dated trace event (migration send/retry breadcrumbs):
    /// recorded only when its time arrives, keeping the event stream's
    /// per-unit timestamps monotone.
    Emit { pu: Option<usize>, kind: EventKind },
}

/// Event-queue entry, ordered by time then sequence (same idiom as the
/// single-node simulator backend).
#[derive(Debug, Clone, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    payload: Payload,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Backend-side record of the chunk currently on a node.
#[derive(Debug, Clone)]
struct InflightChunk {
    task: TaskId,
    items: u64,
    cost: u64,
}

/// Per-node backend state.
#[derive(Debug, Clone)]
struct NodeState {
    /// False after a crash — permanent.
    alive: bool,
    /// False while partitioned from the cluster.
    reachable: bool,
    /// Bumped whenever the node leaves the active set; scheduled
    /// outcomes carrying an older epoch are stale.
    epoch: u64,
    /// Completed chunks (the crash trigger's key).
    chunks_done: u64,
    inflight: Option<InflightChunk>,
    /// Size of the most recent failed delivery, kept so a quarantine
    /// that follows it can report the re-credited range.
    last_failed: Option<(u64, u64)>,
}

impl NodeState {
    fn fresh() -> NodeState {
        NodeState {
            alive: true,
            reachable: true,
            epoch: 0,
            chunks_done: 0,
            inflight: None,
            last_failed: None,
        }
    }
}

/// The cluster-tier backend: per-node chunk execution behind the
/// [`Backend`] trait, with node fault domains and inter-node migration.
/// Mechanics only — retry/quarantine/re-credit decisions stay in the
/// driving core.
struct ClusterBackend<'r> {
    runner: &'r mut dyn NodeRunner,
    nodes: Vec<NodeState>,
    /// Interior home-shard boundaries (see [`equal_cost_shards`]).
    shard_bounds: Vec<u64>,
    node_faults: NodeFaultPlan,
    migration: MigrationConfig,
    weights: Arc<Weights>,
    clock: f64,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    overhead_until: f64,
    /// Migration payload + intra-node bytes per node.
    bytes_in: Vec<u64>,
    /// Pending `NodeUp` events still in the heap: only these can bring
    /// an all-down cluster back, so the core defers its stall verdict
    /// while any remain.
    heals_pending: usize,
    /// Core-initiated quarantines buffered for emission at the next
    /// poll (the quarantine hook has no event sink): node plus the
    /// re-credited range size, if one was in flight.
    pending_notes: Vec<(usize, u64, u64)>,
}

impl ClusterBackend<'_> {
    fn push(&mut self, time: f64, payload: Payload) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            payload,
        }));
    }

    /// Which node owns the home shard containing `offset`.
    fn owner_of(&self, offset: u64) -> usize {
        self.shard_bounds.partition_point(|&b| b <= offset)
    }

    /// Can a payload move from `from` to `to` at time `t`? Partitioned
    /// endpoints are unreachable; degraded links still deliver, slower.
    fn deliverable(&self, from: usize, to: usize, t: f64) -> bool {
        !self.node_faults.partitioned(from, t) && !self.node_faults.partitioned(to, t)
    }

    /// A node at its crash threshold is already doomed: its `NodeDown`
    /// event sits in the heap at the current instant, but the driver
    /// may dispatch between the fatal completion and that pop. Refusing
    /// such launches keeps crashes exactly-once — no chunk is ever
    /// executed on a node past its crash point.
    fn crash_doomed(&self, pu: usize) -> bool {
        self.node_faults
            .crash_after(pu)
            .is_some_and(|after| self.nodes.get(pu).is_some_and(|n| n.chunks_done >= after))
    }
}

impl Backend for ClusterBackend<'_> {
    fn clock_kind(&self) -> ClockKind {
        ClockKind::Virtual
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn unit_ready(&self, pu: usize) -> bool {
        !self.crash_doomed(pu) && self.nodes.get(pu).is_some_and(|n| n.alive && n.reachable)
    }

    fn launch(&mut self, spec: &LaunchSpec) -> Launch {
        let pu = spec.pu;
        if !self.nodes.get(pu).is_some_and(|n| n.alive) || self.crash_doomed(pu) {
            return Launch::UnitGone;
        }
        let send = if spec.attempt == 0 {
            self.clock.max(self.overhead_until)
        } else {
            self.clock + spec.backoff_s
        };
        let owner = self.owner_of(spec.offset);
        let cost = self.weights.cost(spec.offset, spec.items);
        let bytes = (spec.items as f64 * self.migration.bytes_per_item).max(0.0);

        // Resolve the delivery schedule deterministically against the
        // fault plan's windows: chunks on their home node are local
        // (no network); migrated chunks cross the link, retrying with
        // exponential backoff while either endpoint is partitioned.
        let mut delivered: Option<(f64, f64)> = None;
        let mut failed_at: Option<f64> = None;
        if owner == pu {
            delivered = Some((send, 0.0));
        } else {
            let nominal =
                self.migration.link.time(bytes) * self.node_faults.degrade_factor(owner, pu, send);
            self.push(
                send,
                Payload::Emit {
                    pu: Some(pu),
                    kind: EventKind::MigrationSent {
                        task: spec.task.0,
                        from: owner,
                        items: spec.items,
                        cost,
                        bytes: bytes as u64,
                        xfer_s: nominal,
                    },
                },
            );
            let mut t = send;
            let mut attempt = 0u32;
            loop {
                if self.deliverable(owner, pu, t) {
                    let factor = self.node_faults.degrade_factor(owner, pu, t);
                    delivered = Some((t, self.migration.link.time(bytes) * factor));
                    break;
                }
                attempt += 1;
                if attempt >= self.migration.max_attempts.max(1) {
                    failed_at = Some(t);
                    break;
                }
                let backoff = self.migration.base_backoff_s
                    * f64::from(2u32.saturating_pow(attempt.saturating_sub(1)).min(1 << 16));
                t += backoff;
                if t - send > self.migration.deadline_s {
                    failed_at = Some(t);
                    break;
                }
                self.push(
                    t,
                    Payload::Emit {
                        pu: Some(pu),
                        kind: EventKind::MigrationRetried {
                            task: spec.task.0,
                            attempt,
                            backoff_s: backoff,
                        },
                    },
                );
            }
        }

        match (delivered, failed_at) {
            (Some((arrival, xfer_s)), _) => {
                // Exactly-once execution: the runner sees the chunk
                // only on this, the successful delivery.
                let (proc_s, inner_bytes, doomed) = match spec.inject {
                    Some(FaultAction::Panic) => (0.0, 0, true),
                    other => match self.runner.run_chunk(pu, spec.offset, spec.items) {
                        Ok(out) => {
                            let extra = match other {
                                Some(FaultAction::Delay(s)) => s,
                                _ => 0.0,
                            };
                            (out.makespan_s * spec.drift + extra, out.bytes_in, false)
                        }
                        Err(_) => (0.0, 0, true),
                    },
                };
                if let Some(b) = self.bytes_in.get_mut(pu) {
                    *b += inner_bytes;
                    if owner != pu {
                        *b += bytes as u64;
                    }
                }
                let Some(st) = self.nodes.get_mut(pu) else {
                    return Launch::UnitGone;
                };
                st.inflight = Some(InflightChunk {
                    task: spec.task,
                    items: spec.items,
                    cost,
                });
                st.last_failed = None;
                let epoch = st.epoch;
                self.push(
                    arrival + xfer_s + proc_s,
                    Payload::ChunkDone {
                        node: pu,
                        epoch,
                        task: spec.task,
                        start: arrival,
                        xfer_s,
                        proc_s,
                        doomed,
                    },
                );
                Launch::Started {
                    start: Some(arrival),
                }
            }
            (None, Some(t_fail)) => {
                let Some(st) = self.nodes.get_mut(pu) else {
                    return Launch::UnitGone;
                };
                st.inflight = Some(InflightChunk {
                    task: spec.task,
                    items: spec.items,
                    cost,
                });
                let epoch = st.epoch;
                self.push(
                    t_fail,
                    Payload::DeliveryFailed {
                        node: pu,
                        epoch,
                        task: spec.task,
                    },
                );
                // The chunk never started; no start time to report.
                Launch::Started { start: None }
            }
            (None, None) => Launch::UnitGone,
        }
    }

    fn poll(&mut self, _wake: Option<f64>, events: &mut EventSink) -> Polled {
        // Flush core-initiated quarantines buffered by the hook below.
        while let Some((node, items, cost)) = self.pending_notes.pop() {
            events.record(
                self.clock,
                Some(node),
                EventKind::NodeQuarantined {
                    reason: "migration-failures".to_string(),
                },
            );
            if items > 0 {
                events.record(
                    self.clock,
                    Some(node),
                    EventKind::CoverRecredited { items, cost },
                );
            }
        }
        loop {
            let Some(Reverse(ev)) = self.heap.pop() else {
                return Polled::Drained;
            };
            debug_assert!(ev.time + 1e-12 >= self.clock, "time went backwards");
            self.clock = ev.time.max(self.clock);
            match ev.payload {
                Payload::Emit { pu, kind } => {
                    events.record(self.clock, pu, kind);
                    continue;
                }
                Payload::ChunkDone {
                    node,
                    epoch,
                    task,
                    start,
                    xfer_s,
                    proc_s,
                    doomed,
                } => {
                    let crash_after = self.node_faults.crash_after(node);
                    let Some(st) = self.nodes.get_mut(node) else {
                        continue;
                    };
                    let current =
                        st.epoch == epoch && st.inflight.as_ref().is_some_and(|f| f.task == task);
                    if !current {
                        continue;
                    }
                    st.inflight = None;
                    if doomed {
                        return Polled::AttemptFailed {
                            pu: node,
                            task,
                            reason: FailureReason::Panicked,
                        };
                    }
                    st.chunks_done += 1;
                    if crash_after.is_some_and(|after| st.chunks_done >= after) && st.alive {
                        // The node dies right after reporting this
                        // chunk: the crash event lands at the same
                        // instant, after the completion below.
                        let at = self.clock;
                        self.push(
                            at,
                            Payload::NodeDown {
                                node,
                                reason: DownReason::Crash,
                            },
                        );
                    }
                    return Polled::Completed {
                        pu: node,
                        task,
                        start,
                        xfer_s,
                        proc_s,
                        finish: self.clock,
                    };
                }
                Payload::DeliveryFailed { node, epoch, task } => {
                    let Some(st) = self.nodes.get_mut(node) else {
                        continue;
                    };
                    let current =
                        st.epoch == epoch && st.inflight.as_ref().is_some_and(|f| f.task == task);
                    if !current {
                        continue;
                    }
                    let fl = st.inflight.take();
                    st.last_failed = fl.map(|f| (f.items, f.cost));
                    return Polled::AttemptFailed {
                        pu: node,
                        task,
                        reason: FailureReason::DeadlineExceeded,
                    };
                }
                Payload::NodeDown { node, reason } => {
                    let Some(st) = self.nodes.get_mut(node) else {
                        continue;
                    };
                    if !st.alive || (reason == DownReason::Partition && !st.reachable) {
                        continue;
                    }
                    match reason {
                        DownReason::Crash => st.alive = false,
                        DownReason::Partition => st.reachable = false,
                    }
                    st.epoch += 1;
                    let fl = st.inflight.take();
                    events.record(
                        self.clock,
                        Some(node),
                        EventKind::NodeQuarantined {
                            reason: reason.name().to_string(),
                        },
                    );
                    if let Some(f) = fl {
                        // The unfinished range folds back into the
                        // pool (the core reclaims it on `UnitDown`).
                        events.record(
                            self.clock,
                            Some(node),
                            EventKind::CoverRecredited {
                                items: f.items,
                                cost: f.cost,
                            },
                        );
                    }
                    return Polled::UnitDown { pu: node };
                }
                Payload::NodeUp { node } => {
                    self.heals_pending = self.heals_pending.saturating_sub(1);
                    let Some(st) = self.nodes.get_mut(node) else {
                        continue;
                    };
                    if !st.alive || st.reachable {
                        // Crashed while partitioned (or never cut):
                        // the heal changes nothing.
                        continue;
                    }
                    st.reachable = true;
                    return Polled::UnitRestored { pu: node };
                }
            }
        }
    }

    fn charge_overhead(&mut self, seconds: f64) {
        self.overhead_until = self.overhead_until.max(self.clock) + seconds;
    }

    fn on_unit_quarantined(&mut self, pu: usize) {
        let Some(st) = self.nodes.get_mut(pu) else {
            return;
        };
        st.epoch += 1;
        let fl = st.inflight.take().map(|f| (f.items, f.cost));
        let (items, cost) = fl.or(st.last_failed.take()).unwrap_or((0, 0));
        self.pending_notes.push((pu, items, cost));
    }

    fn forget_unit(&mut self, pu: usize) {
        if let Some(st) = self.nodes.get_mut(pu) {
            st.alive = false;
            st.epoch += 1;
            st.inflight = None;
        }
    }

    fn idle_progress_possible(&self) -> bool {
        self.heals_pending > 0
            || self.heap.iter().any(|Reverse(e)| {
                matches!(
                    e.payload,
                    Payload::ChunkDone { .. } | Payload::DeliveryFailed { .. }
                )
            })
    }

    fn external_restore_possible(&self) -> bool {
        self.heals_pending > 0
    }

    fn bytes_into(&self, pu: usize) -> u64 {
        self.bytes_in.get(pu).copied().unwrap_or(0)
    }
}

/// An offset-shifting view of the application cost model: a node runs
/// its chunk in local coordinates `0..items`, while the range-aware
/// costs are those of the global range starting at `base`.
struct ShiftedCost<'a> {
    inner: &'a dyn CostModel,
    base: u64,
}

impl CostModel for ShiftedCost<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn flops(&self, items: u64) -> f64 {
        self.inner.flops(items)
    }
    fn bytes_in(&self, items: u64) -> f64 {
        self.inner.bytes_in(items)
    }
    fn bytes_out(&self, items: u64) -> f64 {
        self.inner.bytes_out(items)
    }
    fn bytes_touched(&self, items: u64) -> f64 {
        self.inner.bytes_touched(items)
    }
    fn threads(&self, items: u64) -> f64 {
        self.inner.threads(items)
    }
    fn broadcast_bytes(&self) -> f64 {
        self.inner.broadcast_bytes()
    }
    fn flops_range(&self, offset: u64, items: u64) -> f64 {
        self.inner
            .flops_range(self.base.saturating_add(offset), items)
    }
    fn bytes_in_range(&self, offset: u64, items: u64) -> f64 {
        self.inner
            .bytes_in_range(self.base.saturating_add(offset), items)
    }
    fn bytes_out_range(&self, offset: u64, items: u64) -> f64 {
        self.inner
            .bytes_out_range(self.base.saturating_add(offset), items)
    }
    fn bytes_touched_range(&self, offset: u64, items: u64) -> f64 {
        self.inner
            .bytes_touched_range(self.base.saturating_add(offset), items)
    }
    fn threads_range(&self, offset: u64, items: u64) -> f64 {
        self.inner
            .threads_range(self.base.saturating_add(offset), items)
    }
}

/// The simulator node runner: one [`ClusterSim`] and one persistent
/// intra-node policy per node. Every chunk runs a nested discrete-event
/// engine over the node's devices; the policy object survives across
/// chunks, so PLB-HeC's learned profiles carry over and later chunks
/// skip straight to re-fit + re-solve.
pub struct SimNodeRunner<'c> {
    cost: &'c dyn CostModel,
    names: Vec<String>,
    clusters: Vec<ClusterSim>,
    policies: Vec<Box<dyn Policy>>,
    weights: Arc<Weights>,
}

impl<'c> SimNodeRunner<'c> {
    /// Build a runner from per-node simulated machines and per-node
    /// intra-node policies. `clusters` and `policies` must have equal
    /// length; `weights` is the *global* per-item cost table (chunk
    /// runs see the matching sub-table).
    pub fn new(
        cost: &'c dyn CostModel,
        names: Vec<String>,
        clusters: Vec<ClusterSim>,
        policies: Vec<Box<dyn Policy>>,
        weights: Arc<Weights>,
    ) -> SimNodeRunner<'c> {
        SimNodeRunner {
            cost,
            names,
            clusters,
            policies,
            weights,
        }
    }
}

impl NodeRunner for SimNodeRunner<'_> {
    fn node_count(&self) -> usize {
        self.clusters.len().min(self.policies.len())
    }

    fn node_name(&self, node: usize) -> String {
        self.names
            .get(node)
            .cloned()
            .unwrap_or_else(|| format!("node{node}"))
    }

    fn run_chunk(&mut self, node: usize, offset: u64, items: u64) -> Result<ChunkOutcome, String> {
        let Some(cluster) = self.clusters.get_mut(node) else {
            return Err(format!("unknown node {node}"));
        };
        let Some(policy) = self.policies.get_mut(node) else {
            return Err(format!("no policy for node {node}"));
        };
        let shifted = ShiftedCost {
            inner: self.cost,
            base: offset,
        };
        let sub_weights = if self.weights.is_uniform() {
            Weights::uniform()
        } else {
            let w = &self.weights;
            Arc::new(Weights::per_item(
                (offset..offset.saturating_add(items)).map(|i| w.cost(i, 1)),
            ))
        };
        let report = SimEngine::new(cluster, &shifted)
            .with_weights(sub_weights)
            .run(policy.as_mut(), items)
            .map_err(|e| e.to_string())?;
        Ok(ChunkOutcome {
            makespan_s: report.makespan,
            bytes_in: report.pus.iter().map(|p| p.bytes_in).sum(),
        })
    }
}

/// The cluster engine: multi-node balancing over any [`NodeRunner`],
/// with node fault domains and inter-node migration. Mirrors the
/// single-node engines' builder style and delegates to the same
/// scheduling core, one tier up.
///
/// ```
/// use plb_hetsim::cluster::ClusterOptions;
/// use plb_hetsim::workload::LinearCost;
/// use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
/// use plb_runtime::{ClusterEngine, FixedBlockPolicy, Policy, SimNodeRunner, Weights};
///
/// let cost = LinearCost::generic();
/// let opts = ClusterOptions { noise_sigma: 0.0, ..Default::default() };
/// let clusters: Vec<ClusterSim> = (0..2)
///     .map(|_| ClusterSim::build(&cluster_scenario(Scenario::One, false), &opts))
///     .collect();
/// let policies: Vec<Box<dyn Policy>> = (0..2)
///     .map(|_| Box::new(FixedBlockPolicy { block: 4096 }) as Box<dyn Policy>)
///     .collect();
/// let names = vec!["n0".into(), "n1".into()];
/// let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, Weights::uniform());
/// let mut outer = FixedBlockPolicy { block: 25_000 };
/// let report = ClusterEngine::new(&mut runner)
///     .run(&mut outer, 100_000)
///     .unwrap();
/// assert_eq!(report.total_items, 100_000);
/// assert_eq!(report.cover, vec![(0, 100_000)]);
/// ```
pub struct ClusterEngine<'r> {
    runner: &'r mut dyn NodeRunner,
    node_faults: NodeFaultPlan,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    migration: MigrationConfig,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<Checkpoint>,
    weights: Arc<Weights>,
    shard_bounds: Option<Vec<u64>>,
    last_trace: Option<Trace>,
    last_events: Option<EventSink>,
}

impl<'r> ClusterEngine<'r> {
    /// Create an engine over a node runner.
    pub fn new(runner: &'r mut dyn NodeRunner) -> ClusterEngine<'r> {
        ClusterEngine {
            runner,
            node_faults: NodeFaultPlan::none(),
            faults: FaultPlan::none(),
            ft: FaultToleranceConfig::default(),
            migration: MigrationConfig::default(),
            checkpoint: None,
            resume: None,
            weights: Weights::uniform(),
            shard_bounds: None,
            last_trace: None,
            last_events: None,
        }
    }

    /// Inject node-level faults: crashes, partitions, lossy links. See
    /// [`NodeFaultPlan`].
    pub fn with_node_faults(mut self, plan: NodeFaultPlan) -> ClusterEngine<'r> {
        self.node_faults = plan;
        self
    }

    /// Inject chunk-level faults (panics, delays, drift) by per-node
    /// attempt index — the same grammar single-node runs use, applied
    /// at node granularity. See [`FaultPlan`].
    pub fn with_faults(mut self, plan: FaultPlan) -> ClusterEngine<'r> {
        self.faults = plan;
        self
    }

    /// Override the fault-response tunables (chunk retry bound,
    /// backoff, node quarantine threshold).
    pub fn with_fault_tolerance(mut self, ft: FaultToleranceConfig) -> ClusterEngine<'r> {
        self.ft = ft;
        self
    }

    /// Override the migration tunables (link, payload size, delivery
    /// deadline and retries).
    pub fn with_migration(mut self, m: MigrationConfig) -> ClusterEngine<'r> {
        self.migration = m;
        self
    }

    /// Write periodic durability snapshots during `run` (plus one on
    /// clean shutdown). Cluster snapshots carry the node roster
    /// (checkpoint v3), so they resume only under the same roster.
    pub fn with_checkpoint(mut self, cfg: CheckpointConfig) -> ClusterEngine<'r> {
        self.checkpoint = Some(cfg);
        self
    }

    /// Resume the next `run` from `ckpt` instead of starting fresh.
    /// Consumed by that run. The snapshot must match the run's workload
    /// *and* node roster, or `run` fails with [`RunError::Checkpoint`].
    pub fn resume_from(mut self, ckpt: Checkpoint) -> ClusterEngine<'r> {
        self.resume = Some(ckpt);
        self
    }

    /// Use per-item work weights: home shards become equal-*cost* (not
    /// equal-count), and chunk claims are cost-budgeted.
    pub fn with_weights(mut self, weights: Arc<Weights>) -> ClusterEngine<'r> {
        self.weights = weights;
        self
    }

    /// Override the home-shard boundaries (interior bounds, ascending).
    /// Defaults to [`equal_cost_shards`] over the run's weights.
    pub fn with_shard_bounds(mut self, bounds: Vec<u64>) -> ClusterEngine<'r> {
        self.shard_bounds = Some(bounds);
        self
    }

    /// Run `total_items` under the node-level `policy` (typically the
    /// diffusion policy from `plb-hec`). Delegates to the shared
    /// scheduling core over the cluster backend: each unit is a node,
    /// each task a chunk, and node faults surface through the same
    /// retry/quarantine/re-credit machinery single-node runs use.
    pub fn run(
        &mut self,
        policy: &mut dyn Policy,
        total_items: u64,
    ) -> Result<RunReport, RunError> {
        let n = self.runner.node_count();
        if n == 0 {
            return Err(RunError::NoUnits);
        }
        if let Err(e) = self.node_faults.validate(n) {
            return Err(RunError::Infrastructure {
                detail: format!("node fault plan: {e}"),
            });
        }
        let names: Vec<String> = (0..n).map(|i| self.runner.node_name(i)).collect();
        let handles: Vec<PuHandle> = names
            .iter()
            .enumerate()
            .map(|(i, name)| PuHandle {
                id: PuId(i),
                name: name.clone(),
                // Nodes are kind-less at this tier; CPU is the neutral
                // label (the diffusion policy never branches on kind).
                kind: PuKind::Cpu,
                machine: i,
                available: true,
            })
            .collect();
        let shard_bounds = match &self.shard_bounds {
            Some(b) => b.clone(),
            None => equal_cost_shards(total_items, n, &self.weights),
        };
        let mut backend = ClusterBackend {
            runner: self.runner,
            nodes: (0..n).map(|_| NodeState::fresh()).collect(),
            shard_bounds: shard_bounds.clone(),
            node_faults: self.node_faults.clone(),
            migration: self.migration.clone(),
            weights: Arc::clone(&self.weights),
            clock: 0.0,
            heap: BinaryHeap::new(),
            seq: 0,
            overhead_until: 0.0,
            bytes_in: vec![0; n],
            heals_pending: 0,
            pending_notes: Vec::new(),
        };
        // Pre-schedule every partition window: the cut opens as a
        // `NodeDown` and heals as a `NodeUp`, both at plan-fixed
        // virtual times.
        for node in 0..n {
            for (from_s, to_s) in backend.node_faults.partition_windows(node) {
                backend.push(
                    from_s,
                    Payload::NodeDown {
                        node,
                        reason: DownReason::Partition,
                    },
                );
                backend.push(to_s, Payload::NodeUp { node });
                backend.heals_pending += 1;
            }
        }
        let durability = Durability {
            checkpoint: self.checkpoint.clone().map(CheckpointWriter::new),
            resume: self.resume.take(),
            nodes: names,
            shard_bounds,
        };
        let outcome = drive(
            &mut backend,
            handles,
            policy,
            total_items,
            Arc::clone(&self.weights),
            self.faults.clone(),
            self.ft.clone(),
            durability,
        );
        self.last_trace = Some(outcome.trace);
        self.last_events = Some(outcome.events);
        outcome.result
    }

    /// The node-level Gantt trace of the most recent `run`.
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// The structured event stream of the most recent `run` — also
    /// populated on a stalled run, for post-mortems.
    pub fn last_events(&self) -> Option<&EventSink> {
        self.last_events.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_cost_shards_split_uniform_items_evenly() {
        let b = equal_cost_shards(100, 4, &Weights::Uniform);
        assert_eq!(b, vec![25, 50, 75]);
        assert!(equal_cost_shards(100, 1, &Weights::Uniform).is_empty());
        assert!(equal_cost_shards(0, 4, &Weights::Uniform).is_empty());
    }

    #[test]
    fn equal_cost_shards_balance_cost_not_count() {
        // Ten items; the first two carry 45 of 50 cost units. Two
        // shards of ~equal cost split inside the heavy head.
        let w = Weights::per_item([20, 25, 1, 1, 1, 1, 1, 0, 0, 0]);
        let b = equal_cost_shards(10, 2, &w);
        assert_eq!(b.len(), 1);
        let cut = b[0];
        let left = w.cost(0, cut);
        let right = w.cost(cut, 10 - cut);
        assert!(left >= 25 && right <= 25, "left={left} right={right}");
    }

    #[test]
    fn owner_lookup_follows_shard_bounds() {
        let be_bounds = vec![25u64, 50, 75];
        let owner = |off: u64| be_bounds.partition_point(|&b| b <= off);
        assert_eq!(owner(0), 0);
        assert_eq!(owner(24), 0);
        assert_eq!(owner(25), 1);
        assert_eq!(owner(74), 2);
        assert_eq!(owner(75), 3);
        assert_eq!(owner(99), 3);
    }
}
