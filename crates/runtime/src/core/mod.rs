//! The backend-agnostic scheduling core.
//!
//! Both execution engines — the discrete-event [`SimEngine`] and the
//! real-thread [`HostEngine`] — are thin [`Backend`]s behind this one
//! driver. The core owns every scheduling *decision* and all shared
//! bookkeeping:
//!
//! * the driver loop (completion detection, stall detection, watchdog
//!   wake-ups),
//! * assignment bookkeeping and the disjoint-range cover of
//!   `0..total_items` ([`WorkPool`]),
//! * the entire fault-response state machine — bounded in-place retry
//!   with exponential backoff, quarantine after consecutive failures,
//!   probation restore, item re-credit, permanent unit loss — exactly
//!   once, for every backend (`cargo xtask lint` guards against the
//!   logic leaking back into the engines),
//! * deadline hints and the observed-rate fallback feeding the
//!   watchdog,
//! * structured event emission and [`RunReport`] accounting.
//!
//! Backends supply only mechanics: how an attempt is launched, how the
//! next observation is surfaced, and what the clock means
//! ([`ClockKind`]). The two clock semantics differ in exactly three
//! places, all conditioned explicitly here: virtual clocks know task
//! start times at launch (so `task_start` is emitted at dispatch),
//! wall clocks learn them at completion (so it is emitted
//! retroactively); watchdog deadlines and probation timers are armed
//! only under wall clocks (virtual time cannot be "late"); and
//! scheduler overhead only delays virtual launches (wall time already
//! passed).
//!
//! [`SimEngine`]: crate::engine::SimEngine
//! [`HostEngine`]: crate::host::HostEngine

mod backend;
pub mod cluster;
mod pool;

pub use backend::{Backend, ClockKind, Launch, LaunchSpec, Polled};
pub use pool::WorkPool;

use crate::checkpoint::{
    Checkpoint, CheckpointWriter, PuState, WorkloadId, CHECKPOINT_FORMAT_VERSION,
};
use crate::engine::RunError;
use crate::events::{EventCounters, EventKind, EventSink};
use crate::fault::{FaultPlan, FaultToleranceConfig};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle, SchedulerCtx};
use crate::protocol::UnitGate;
use crate::sync::Arc;
use crate::task::{FailureReason, TaskFailure, TaskId, TaskInfo};
use crate::trace::Trace;
use crate::weights::Weights;
use plb_hetsim::PuId;

/// Run-level durability knobs handed to [`drive`]: an optional
/// periodic-snapshot writer and an optional snapshot to resume from.
/// Both default to off; see [`crate::checkpoint`] and
/// `docs/FAULT_TOLERANCE.md`.
#[derive(Debug, Default)]
pub struct Durability {
    /// Write periodic snapshots (plus one on clean shutdown) through
    /// this writer.
    pub checkpoint: Option<CheckpointWriter>,
    /// Restore this snapshot instead of starting fresh: the work pool
    /// resumes on the uncovered items, per-unit driver state is
    /// restored, and the policy is re-seeded via
    /// [`Policy::restore`](crate::Policy::restore).
    pub resume: Option<Checkpoint>,
    /// Cluster-tier node roster (one display name per node, in shard
    /// order). Stamped into snapshots as checkpoint-v3 workload
    /// identity so a mid-partition cluster run only resumes under the
    /// same roster. Empty for single-node runs.
    pub nodes: Vec<String>,
    /// Home-shard boundaries of a cluster run: `shard_bounds[i]` is the
    /// first item of shard `i+1` (ascending, exclusive of 0 and the
    /// total). On a fresh cluster run the work pool is pre-fragmented
    /// at these bounds so shard-scoped claims
    /// ([`WorkPool::take_within`]) never straddle an ownership border.
    /// Empty for single-node runs.
    pub shard_bounds: Vec<u64>,
}

/// Everything a finished drive hands back to its engine: the result
/// (with the report already built on success), plus the trace and the
/// event stream — preserved on errors too, for post-mortems.
#[derive(Debug)]
pub struct CoreOutcome {
    /// The run's outcome: a full [`RunReport`] or the typed error.
    pub result: Result<RunReport, RunError>,
    /// Gantt trace of every successful task.
    pub trace: Trace,
    /// The structured event stream (see [`crate::events`]).
    pub events: EventSink,
    /// Per-unit permanent-loss flags: `lost[i]` is true when unit `i`
    /// was written off (dead or wedged executor). The host engine skips
    /// joining those workers.
    pub lost: Vec<bool>,
}

/// Engine-side record of one in-flight attempt.
#[derive(Debug, Clone)]
struct Pending {
    task: TaskId,
    offset: u64,
    items: u64,
    /// Weight of the block's range in cost units (equal to `items`
    /// under uniform weights).
    cost: u64,
    /// 0-based attempt number of this block (0 = first dispatch).
    attempt: u32,
    /// Absolute watchdog deadline, when one applies (wall clocks only).
    deadline_at: Option<f64>,
}

/// The driver's working state: shared bookkeeping plus the backend.
struct Driver<'b> {
    backend: &'b mut dyn Backend,
    handles: Vec<PuHandle>,
    inflight: Vec<Option<Pending>>,
    pool: WorkPool,
    /// Per-unit availability lattice (`Active ⇄ Quarantined`, `Lost`
    /// absorbing): a probation restore can never resurrect a unit
    /// whose executor is gone. See [`crate::protocol::UnitGate`].
    gates: Vec<UnitGate>,
    total: u64,
    next_task: u64,
    trace: Trace,
    events: EventSink,
    /// Fault injection + response (see [`crate::fault`]).
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    /// Per-unit dispatch counter (including retries) — the fault
    /// plan's attempt index.
    attempts: Vec<u64>,
    /// Join schedule from the fault plan, sorted by trigger: units in
    /// this list start *latent* (never probed, never assigned) and are
    /// admitted when the global completed-task count reaches their
    /// threshold. Keying admission to `tasks_done` — owned here, not by
    /// the backends — makes both engines admit at the same point in the
    /// task sequence.
    joins: Vec<(usize, u64)>,
    /// Next unadmitted entry of `joins`.
    next_join: usize,
    /// Per-unit drift factor of the previous dispatch; `drift_applied`
    /// is emitted only when the factor changes.
    last_drift: Vec<f64>,
    /// Whether the fault plan has any drift schedule at all (skips the
    /// per-launch schedule evaluation on the common drift-free path).
    has_drift: bool,
    /// Per-unit consecutive-failure counter; reset by any success.
    consec_failures: Vec<u32>,
    /// Policy-provided seconds-per-cost-unit prediction (deadline
    /// hint; seconds per item under uniform weights).
    deadline_hint: Vec<Option<f64>>,
    /// Observed seconds-per-cost-unit EWMA (deadline fallback).
    rate_ewma: Vec<Option<f64>>,
    /// Probation expiry for quarantined units (wall clocks only).
    quarantined_until: Vec<Option<f64>>,
    /// Units whose loss was detected inside `assign` (policy callback
    /// re-entrancy guard): the driver loop delivers `on_device_lost`.
    pending_lost: Vec<PuId>,
    /// Completed ranges accumulated this process (sorted + coalesced
    /// lazily) — the disjoint cover a checkpoint persists.
    completed: Vec<(u64, u64)>,
    /// Completed tasks, lifetime (restored across a resume).
    tasks_done: u64,
    /// Periodic-snapshot writer, when checkpointing is on.
    ckpt_writer: Option<CheckpointWriter>,
    /// Event counters carried over from the resumed snapshot; merged
    /// into every new snapshot and the final report so lifetime totals
    /// survive the process boundary.
    carried: EventCounters,
    /// Per-item cost of the workload (shared with the pool): converts
    /// claimed ranges to cost units for events, deadlines, and the
    /// policy-facing cost accessors.
    weights: Arc<Weights>,
    /// Cluster-tier node roster, stamped into checkpoint workload
    /// identity (v3). Empty for single-node runs.
    nodes: Vec<String>,
}

impl SchedulerCtx for Driver<'_> {
    fn now(&self) -> f64 {
        self.backend.now()
    }

    fn pus(&self) -> &[PuHandle] {
        &self.handles
    }

    fn remaining_items(&self) -> u64 {
        self.pool.remaining()
    }

    fn total_items(&self) -> u64 {
        self.total
    }

    fn remaining_cost(&self) -> u64 {
        self.pool.remaining_cost()
    }

    fn total_cost(&self) -> u64 {
        self.weights.total_cost(self.total)
    }

    fn assign(&mut self, pu: PuId, budget_cost: u64) -> u64 {
        if budget_cost == 0 || self.pool.remaining() == 0 {
            return 0;
        }
        if !self.handles[pu.0].available
            || self.inflight[pu.0].is_some()
            || !self.backend.unit_ready(pu.0)
        {
            return 0;
        }
        // Re-credited ranges are served first so failed blocks re-run;
        // a reclaimed fragment may carry less weight than the budget,
        // in which case less cost is assigned (policies must tolerate
        // any return value).
        let Some((offset, got)) = self.pool.take(budget_cost) else {
            return 0;
        };
        let cost = self.weights.cost(offset, got);
        let task = TaskId(self.next_task);
        self.next_task += 1;
        let now = self.backend.now();
        self.events.record(
            now,
            Some(pu.0),
            EventKind::TaskSubmit {
                task: task.0,
                items: got,
                cost,
            },
        );
        if !self.launch(pu.0, task, offset, got, cost, 0, 0.0) {
            // The executor died out from under us: the block returns
            // to the pool and the unit is lost; the driver loop
            // delivers the policy notification.
            self.pool.reclaim(offset, got);
            self.release_unit(pu.0);
            return 0;
        }
        cost
    }

    fn assign_within(&mut self, pu: PuId, budget_cost: u64, lo: u64, hi: u64) -> u64 {
        if budget_cost == 0 || self.pool.remaining() == 0 {
            return 0;
        }
        let unit_free = self.handles.get(pu.0).is_some_and(|h| h.available)
            && self.inflight.get(pu.0).is_some_and(Option::is_none)
            && self.backend.unit_ready(pu.0);
        if !unit_free {
            return 0;
        }
        let Some((offset, got)) = self.pool.take_within(lo, hi, budget_cost) else {
            return 0;
        };
        let cost = self.weights.cost(offset, got);
        let task = TaskId(self.next_task);
        self.next_task += 1;
        let now = self.backend.now();
        self.events.record(
            now,
            Some(pu.0),
            EventKind::TaskSubmit {
                task: task.0,
                items: got,
                cost,
            },
        );
        if !self.launch(pu.0, task, offset, got, cost, 0, 0.0) {
            self.pool.reclaim(offset, got);
            self.release_unit(pu.0);
            return 0;
        }
        cost
    }

    fn is_busy(&self, pu: PuId) -> bool {
        self.inflight[pu.0].is_some()
    }

    fn any_busy(&self) -> bool {
        self.inflight.iter().any(Option::is_some)
    }

    fn charge_overhead(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.backend.charge_overhead(seconds);
        }
    }

    fn emit_event(&mut self, pu: Option<usize>, kind: EventKind) {
        let now = self.backend.now();
        self.events.record(now, pu, kind);
    }

    fn set_deadline_hint(&mut self, pu: PuId, seconds_per_cost_unit: f64) {
        self.deadline_hint[pu.0] =
            if seconds_per_cost_unit.is_finite() && seconds_per_cost_unit > 0.0 {
                Some(seconds_per_cost_unit)
            } else {
                None
            };
    }
}

impl Driver<'_> {
    /// Launch one attempt: resolve the fault plan, arm the watchdog
    /// deadline (wall clocks), record the in-flight entry, and hand the
    /// spec to the backend. Returns `false` when the unit's executor is
    /// gone — the caller reclaims the block and writes the unit off.
    fn launch(
        &mut self,
        pu: usize,
        task: TaskId,
        offset: u64,
        items: u64,
        cost: u64,
        attempt: u32,
        backoff_s: f64,
    ) -> bool {
        let fault_attempt = self.attempts[pu];
        self.attempts[pu] += 1;
        let inject = self.faults.action(pu, fault_attempt);
        let drift = if self.has_drift {
            self.faults.drift_factor(pu, fault_attempt)
        } else {
            1.0
        };
        if drift != self.last_drift[pu] {
            self.last_drift[pu] = drift;
            let now = self.backend.now();
            self.events
                .record(now, Some(pu), EventKind::DriftApplied { factor: drift });
        }
        let deadline_at = if self.backend.clock_kind() == ClockKind::Wall {
            // Rates (hinted and observed) are seconds per cost unit, so
            // the watchdog prices the block by its weight, not length.
            let rate = self.deadline_hint[pu].or(self.rate_ewma[pu]);
            let now = self.backend.now();
            self.ft
                .deadline_for(rate, cost)
                .map(|d| now + backoff_s + d)
        } else {
            None
        };
        self.inflight[pu] = Some(Pending {
            task,
            offset,
            items,
            cost,
            attempt,
            deadline_at,
        });
        match self.backend.launch(&LaunchSpec {
            pu,
            task,
            offset,
            items,
            attempt,
            backoff_s,
            inject,
            drift,
        }) {
            Launch::Started { start } => {
                // Virtual clocks know the start time at dispatch; it is
                // recorded for first attempts only (retries of the same
                // block keep the original submit/start pair).
                if attempt == 0 {
                    if let Some(s) = start {
                        self.events.record(
                            s,
                            Some(pu),
                            EventKind::TaskStart {
                                task: task.0,
                                items,
                            },
                        );
                    }
                }
                true
            }
            Launch::UnitGone => {
                self.inflight[pu] = None;
                false
            }
        }
    }

    /// Permanently remove a unit whose executor is gone or wedged.
    /// Emits `device_failed` and queues the `on_device_lost`
    /// notification for the driver loop (never calls the policy
    /// directly — this can run inside a policy's own `assign` call).
    fn release_unit(&mut self, pu: usize) {
        // The gate's swap makes loss idempotent and absorbing: exactly
        // one caller performs the teardown, and a pending probation
        // restore can no longer succeed.
        if !self.gates[pu].mark_lost() {
            return;
        }
        self.handles[pu].available = false;
        self.backend.forget_unit(pu);
        self.quarantined_until[pu] = None;
        let now = self.backend.now();
        self.events.record(now, Some(pu), EventKind::DeviceFailed);
        self.pending_lost.push(PuId(pu));
    }

    /// Deliver queued `on_device_lost` notifications (losses detected
    /// inside `assign`, where calling back into the policy would
    /// re-enter it).
    fn notify_lost(&mut self, policy: &mut dyn Policy) {
        while let Some(pu) = self.pending_lost.pop() {
            policy.on_device_lost(self, pu);
        }
    }

    /// Admit every latent unit whose join threshold the global
    /// completed-task count has reached: flip it available, mirror the
    /// admission in the backend, emit `pu_joined`, and hand the unit to
    /// the policy's `on_device_joined` flow (which decides — via its
    /// acquisition gate — whether folding the newcomer in pays off).
    /// Called once at start (thresholds of 0, resumed runs) and after
    /// every completion; joins never fire between completions, so both
    /// engines admit at the same point in the task sequence.
    fn admit_due_joins(&mut self, policy: &mut dyn Policy) {
        while self
            .joins
            .get(self.next_join)
            .is_some_and(|&(_, after)| self.tasks_done >= after)
        {
            let (pu, after_tasks) = self.joins[self.next_join];
            self.next_join += 1;
            // Out-of-range targets (a plan built for a larger cluster)
            // are ignored, mirroring the latent-marking pass. A unit
            // written off while latent (it cannot fail a task it never
            // ran, but an external perturbation may have killed it)
            // stays gone.
            if pu >= self.handles.len() || self.gates[pu].is_lost() || self.handles[pu].available {
                continue;
            }
            self.handles[pu].available = true;
            self.consec_failures[pu] = 0;
            self.backend.on_unit_joined(pu);
            let now = self.backend.now();
            self.events
                .record(now, Some(pu), EventKind::PuJoined { after_tasks });
            policy.on_device_joined(self, PuId(pu));
            self.notify_lost(policy);
        }
    }

    /// Fold an observed per-cost-unit rate into the unit's EWMA
    /// estimate (per-item under uniform weights).
    fn observe_rate(&mut self, pu: usize, proc_time: f64, cost: u64) {
        if cost == 0 || !(proc_time.is_finite() && proc_time >= 0.0) {
            return;
        }
        let rate = proc_time / cost as f64;
        self.rate_ewma[pu] = Some(match self.rate_ewma[pu] {
            Some(prev) => 0.5 * prev + 0.5 * rate,
            None => rate,
        });
    }

    /// Sort the completed ranges and merge adjacent ones in place. The
    /// ranges are disjoint by construction (every item completes under
    /// exactly one attempt), so adjacency is the only merge case.
    fn coalesce_completed(&mut self) {
        self.completed.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.completed.len());
        for &(off, len) in &self.completed {
            match merged.last_mut() {
                Some((m_off, m_len)) if *m_off + *m_len == off => *m_len += len,
                _ => merged.push((off, len)),
            }
        }
        self.completed = merged;
    }

    /// Snapshot the driver state (see [`crate::checkpoint`]). The
    /// sequence number is stamped by the writer.
    fn build_checkpoint(&mut self, policy: &dyn Policy) -> Checkpoint {
        self.coalesce_completed();
        let mut counters = self.events.counters();
        counters.merge(&self.carried);
        let units = (0..self.handles.len())
            .map(|i| PuState {
                name: self.handles[i].name.clone(),
                dispatches: self.attempts[i],
                consecutive_failures: self.consec_failures[i],
                rate_ewma: self.rate_ewma[i],
                quarantined: !self.gates[i].is_lost() && !self.handles[i].available,
                lost: self.gates[i].is_lost(),
            })
            .collect();
        Checkpoint {
            version: CHECKPOINT_FORMAT_VERSION,
            workload: WorkloadId {
                policy: policy.name().to_string(),
                total_items: self.total,
                n_pus: self.handles.len(),
                total_cost: self.weights.total_cost(self.total),
                nodes: self.nodes.clone(),
            },
            seq: 0,
            at: self.backend.now(),
            tasks_done: self.tasks_done,
            next_task: self.next_task,
            completed: self.completed.clone(),
            units,
            counters,
            policy_state: policy.snapshot(),
        }
    }

    /// Write a snapshot when one is due (or `force`d, on clean
    /// shutdown). A failed write is a run error: silently continuing
    /// without the durability the caller asked for would let a later
    /// crash lose work the caller believed was persisted.
    fn maybe_checkpoint(&mut self, policy: &dyn Policy, force: bool) -> Result<(), RunError> {
        let due = match &self.ckpt_writer {
            Some(w) => force || w.due(self.tasks_done),
            None => false,
        };
        if !due {
            return Ok(());
        }
        let mut ckpt = self.build_checkpoint(policy);
        let Some(w) = self.ckpt_writer.as_mut() else {
            return Ok(());
        };
        let seq = w.write(&mut ckpt).map_err(|e| RunError::Checkpoint {
            detail: e.to_string(),
        })?;
        let now = self.backend.now();
        self.events.record(
            now,
            None,
            EventKind::CheckpointWritten {
                seq,
                tasks_done: self.tasks_done,
                completed_items: ckpt.completed_items(),
            },
        );
        Ok(())
    }

    /// Record the stall in the event stream and build the error.
    fn stall(&mut self) -> RunError {
        let at = self.backend.now();
        let remaining = self.pool.remaining();
        self.events
            .record(at, None, EventKind::Stalled { remaining });
        RunError::Stalled { remaining, at }
    }

    /// After a unit loss: when every unit is gone, nothing is in
    /// flight, and nothing (probation, pending external restore) can
    /// bring one back, the run is dead — stall immediately rather than
    /// replaying a drained queue.
    fn all_dead_stall(&mut self) -> Option<RunError> {
        if self.pool.remaining() == 0
            || self.handles.iter().any(|h| h.available)
            || self.any_busy()
            || self.quarantined_until.iter().any(Option::is_some)
            || self.backend.external_restore_possible()
        {
            return None;
        }
        Some(self.stall())
    }

    /// The fault-response state machine for one failed attempt:
    /// quarantine after `quarantine_after` consecutive failures, else
    /// bounded in-place retry with exponential backoff, else re-credit
    /// the block to the pool. Returns an error when the failure killed
    /// the run (every unit gone).
    fn handle_failure(
        &mut self,
        policy: &mut dyn Policy,
        pu: usize,
        task: TaskId,
        reason: FailureReason,
    ) -> Option<RunError> {
        // Stale failures (from units already written off) are ignored:
        // the block was re-dispatched elsewhere.
        let current = self.inflight[pu].as_ref().is_some_and(|p| p.task == task);
        if !current {
            return None;
        }
        let Some(pend) = self.inflight[pu].take() else {
            return None;
        };
        self.consec_failures[pu] += 1;
        let failures = self.consec_failures[pu];
        let now = self.backend.now();
        self.events.record(
            now,
            Some(pu),
            EventKind::TaskFailed {
                task: pend.task.0,
                items: pend.items,
                attempt: pend.attempt,
                reason: reason.name().to_string(),
            },
        );
        if failures >= self.ft.quarantine_after {
            // Quarantine: the unit leaves the active set, its block
            // returns to the pool, and the policy re-solves the split
            // over the survivors. Under a wall clock with a probation
            // window the unit can come back; virtual clocks model
            // restores as external perturbations instead.
            let gated = self.gates[pu].try_quarantine();
            debug_assert!(gated, "quarantining a non-active unit");
            self.backend.on_unit_quarantined(pu);
            self.handles[pu].available = false;
            if self.backend.clock_kind() == ClockKind::Wall {
                self.quarantined_until[pu] = self.ft.probation_s.map(|p| now + p);
            }
            self.pool.reclaim(pend.offset, pend.items);
            self.events
                .record(now, Some(pu), EventKind::PuQuarantined { failures });
            self.events.record(now, Some(pu), EventKind::DeviceFailed);
            policy.on_device_lost(self, PuId(pu));
            self.notify_lost(policy);
            let failure = TaskFailure {
                task_id: pend.task,
                pu: PuId(pu),
                items: pend.items,
                cost: pend.cost,
                attempt: pend.attempt,
                at: now,
                reason,
            };
            policy.on_task_failed(self, &failure);
            self.notify_lost(policy);
            return self.all_dead_stall();
        }
        if pend.attempt < self.ft.max_retries {
            // Bounded in-place retry with exponential backoff; the
            // fault plan sees a fresh per-unit attempt index.
            let retry_attempt = pend.attempt + 1;
            let backoff = self.ft.backoff_for(retry_attempt);
            self.events.record(
                now,
                Some(pu),
                EventKind::TaskRetry {
                    task: pend.task.0,
                    items: pend.items,
                    attempt: retry_attempt,
                    backoff_s: backoff,
                },
            );
            if !self.launch(
                pu,
                pend.task,
                pend.offset,
                pend.items,
                pend.cost,
                retry_attempt,
                backoff,
            ) {
                self.pool.reclaim(pend.offset, pend.items);
                self.release_unit(pu);
                self.notify_lost(policy);
            }
            return None;
        }
        // Retries exhausted without hitting the quarantine bar: the
        // block's items return to the pool for the other units.
        self.pool.reclaim(pend.offset, pend.items);
        let failure = TaskFailure {
            task_id: pend.task,
            pu: PuId(pu),
            items: pend.items,
            cost: pend.cost,
            attempt: pend.attempt,
            at: now,
            reason,
        };
        policy.on_task_failed(self, &failure);
        self.notify_lost(policy);
        None
    }

    /// The unified driver loop.
    fn run_loop(&mut self, policy: &mut dyn Policy) -> Result<(), RunError> {
        let n = self.handles.len();
        loop {
            // Completion check.
            if self.pool.remaining() == 0 && !self.any_busy() {
                let closed = self.pool.try_close();
                debug_assert!(closed, "run closed twice");
                return Ok(());
            }

            // End probation windows that have elapsed (wall clocks
            // only — virtual clocks never arm them): the unit rejoins
            // the active set and the policy can fold it back in. The
            // gate arbitrates against loss: a unit marked lost after
            // its quarantine fails `try_restore` and stays gone.
            let now = self.backend.now();
            for i in 0..n {
                let due = self.quarantined_until[i].is_some_and(|t| now >= t);
                if !due {
                    continue;
                }
                self.quarantined_until[i] = None;
                if !self.gates[i].try_restore() {
                    continue;
                }
                self.consec_failures[i] = 0;
                self.handles[i].available = true;
                let now = self.backend.now();
                self.events.record(now, Some(i), EventKind::DeviceRestored);
                policy.on_device_restored(self, PuId(i));
                self.notify_lost(policy);
            }
            if self.pool.remaining() == 0 && !self.any_busy() {
                let closed = self.pool.try_close();
                debug_assert!(closed, "run closed twice");
                return Ok(());
            }

            if !self.any_busy() {
                // Idle with work left: unless a probation expiry or the
                // backend itself (queued completions, a pending
                // external restore) can still make progress, the
                // policy deadlocked the run — stall now rather than
                // waiting forever.
                let probation_pending = self.quarantined_until.iter().any(Option::is_some);
                if !probation_pending && !self.backend.idle_progress_possible() {
                    return Err(self.stall());
                }
            }

            // Watchdog-aware wait: wake at the earliest task deadline
            // or probation expiry, whichever comes first.
            let mut wake = f64::INFINITY;
            for p in self.inflight.iter().flatten() {
                if let Some(d) = p.deadline_at {
                    wake = wake.min(d);
                }
            }
            for t in self.quarantined_until.iter().flatten() {
                wake = wake.min(*t);
            }
            let wake = wake.is_finite().then_some(wake);

            match self.backend.poll(wake, &mut self.events) {
                Polled::Completed {
                    pu,
                    task,
                    start,
                    xfer_s,
                    proc_s,
                    finish,
                } => {
                    // Stale completions (from units already written
                    // off, whose wedged worker eventually finished) are
                    // ignored: the block was re-dispatched elsewhere.
                    let current = self.inflight[pu].as_ref().is_some_and(|p| p.task == task);
                    if !current {
                        continue;
                    }
                    let Some(pend) = self.inflight[pu].take() else {
                        continue;
                    };
                    self.consec_failures[pu] = 0;
                    self.observe_rate(pu, proc_s, pend.cost);
                    self.completed.push((pend.offset, pend.items));
                    self.tasks_done += 1;
                    self.trace
                        .record_task(PuId(pu), task, pend.items, start, xfer_s, proc_s);
                    if self.backend.clock_kind() == ClockKind::Wall {
                        // Wall clocks learn the start time only now:
                        // record it retroactively (virtual clocks
                        // already did at dispatch).
                        self.events.record(
                            start,
                            Some(pu),
                            EventKind::TaskStart {
                                task: task.0,
                                items: pend.items,
                            },
                        );
                    }
                    self.events.record(
                        finish,
                        Some(pu),
                        EventKind::TaskFinish {
                            task: task.0,
                            items: pend.items,
                            cost: pend.cost,
                            xfer_s,
                            proc_s,
                        },
                    );
                    let info = TaskInfo {
                        task_id: task,
                        pu: PuId(pu),
                        items: pend.items,
                        cost: pend.cost,
                        xfer_time: xfer_s,
                        proc_time: proc_s,
                        start,
                        finish,
                    };
                    policy.on_task_finished(self, &info);
                    self.notify_lost(policy);
                    self.admit_due_joins(policy);
                    self.maybe_checkpoint(&*policy, false)?;
                }
                Polled::AttemptFailed { pu, task, reason } => {
                    if let Some(err) = self.handle_failure(policy, pu, task, reason) {
                        return Err(err);
                    }
                }
                Polled::UnitDown { pu } => {
                    // Backend-external loss (a simulated machine
                    // failure): cancel the in-flight block and
                    // re-credit its items. The gate records it as a
                    // quarantine so a later external restore succeeds.
                    self.handles[pu].available = false;
                    let _ = self.gates[pu].try_quarantine();
                    let now = self.backend.now();
                    if let Some(pend) = self.inflight[pu].take() {
                        self.pool.reclaim(pend.offset, pend.items);
                        self.events.record(
                            now,
                            Some(pu),
                            EventKind::TaskFailed {
                                task: pend.task.0,
                                items: pend.items,
                                attempt: pend.attempt,
                                reason: FailureReason::WorkerLost.name().to_string(),
                            },
                        );
                    }
                    self.events.record(now, Some(pu), EventKind::DeviceFailed);
                    policy.on_device_lost(self, PuId(pu));
                    self.notify_lost(policy);
                    if let Some(err) = self.all_dead_stall() {
                        return Err(err);
                    }
                }
                Polled::UnitRestored { pu } => {
                    // Backend-external restore. `try_restore` is a
                    // no-op for a unit that never failed — the event
                    // and callback still fire, matching the
                    // perturbation's contract.
                    let _ = self.gates[pu].try_restore();
                    self.handles[pu].available = true;
                    self.consec_failures[pu] = 0;
                    let now = self.backend.now();
                    self.events.record(now, Some(pu), EventKind::DeviceRestored);
                    policy.on_device_restored(self, PuId(pu));
                    self.notify_lost(policy);
                }
                Polled::Nothing => {}
                Polled::Timeout => {
                    // Declare units with blown deadlines lost. Their
                    // executors may be wedged mid-kernel; the lost
                    // block re-runs on a survivor (idempotent
                    // codelets). The watchdog must win the attempt's
                    // claim word first: if the real outcome beat the
                    // deadline and is already queued, the claim fails
                    // and the unit is left alone.
                    let now = self.backend.now();
                    for i in 0..n {
                        let blown = self.inflight[i]
                            .as_ref()
                            .is_some_and(|p| p.deadline_at.is_some_and(|d| now >= d))
                            && self.backend.try_claim_timeout(i);
                        if !blown {
                            continue;
                        }
                        let Some(pend) = self.inflight[i].take() else {
                            continue;
                        };
                        self.events.record(
                            now,
                            Some(i),
                            EventKind::TaskFailed {
                                task: pend.task.0,
                                items: pend.items,
                                attempt: pend.attempt,
                                reason: FailureReason::DeadlineExceeded.name().to_string(),
                            },
                        );
                        self.pool.reclaim(pend.offset, pend.items);
                        self.release_unit(i);
                        self.notify_lost(policy);
                        let failure = TaskFailure {
                            task_id: pend.task,
                            pu: PuId(i),
                            items: pend.items,
                            cost: pend.cost,
                            attempt: pend.attempt,
                            at: now,
                            reason: FailureReason::DeadlineExceeded,
                        };
                        policy.on_task_failed(self, &failure);
                        self.notify_lost(policy);
                    }
                }
                Polled::Drained => {
                    // The backend can never produce another event while
                    // work is outstanding: a policy bug (or every
                    // device failed).
                    return Err(self.stall());
                }
                Polled::Infrastructure { detail } => {
                    return Err(RunError::Infrastructure { detail });
                }
            }
        }
    }
}

/// Run `total_items` under `policy` on `backend`: the single driver
/// both engines delegate to. `handles` is the backend's unit roster
/// (with initial availability); `weights` is the workload's per-item
/// cost (uniform for regular workloads — cost ≡ item count); `faults`
/// injects deterministic failures and `ft` tunes the response (see
/// [`crate::fault`]); `durability` turns on periodic checkpointing
/// and/or resume (see [`crate::checkpoint`]).
pub fn drive(
    backend: &mut dyn Backend,
    handles: Vec<PuHandle>,
    policy: &mut dyn Policy,
    total_items: u64,
    weights: Arc<Weights>,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    durability: Durability,
) -> CoreOutcome {
    let n = handles.len();
    let Durability {
        checkpoint,
        resume,
        nodes,
        shard_bounds,
    } = durability;

    // Validate the resume snapshot before building any state: a
    // rejected snapshot must fail the run loudly, never silently start
    // a fresh one over the remains of another.
    let mut restored: Option<Checkpoint> = None;
    let mut pool = WorkPool::with_weights(total_items, Arc::clone(&weights));
    if let Some(ckpt) = resume {
        let workload = WorkloadId {
            policy: policy.name().to_string(),
            total_items,
            n_pus: n,
            total_cost: weights.total_cost(total_items),
            nodes: nodes.clone(),
        };
        let prepared = ckpt
            .validate()
            .and_then(|()| ckpt.matches(&workload))
            .map_err(|e| e.to_string())
            .and_then(|()| {
                WorkPool::resume_with_weights(total_items, &ckpt.completed, Arc::clone(&weights))
            });
        match prepared {
            Ok(p) => {
                pool = p;
                restored = Some(ckpt);
            }
            Err(detail) => {
                return CoreOutcome {
                    result: Err(RunError::Checkpoint { detail }),
                    trace: Trace::new(n),
                    events: EventSink::default(),
                    lost: vec![false; n],
                };
            }
        }
    }

    // Cluster runs pre-fragment the pool at the home-shard borders so
    // shard-scoped claims never straddle an ownership boundary (a
    // no-op on a resumed pool, whose fresh range is already exhausted —
    // resume holes split lazily inside `take_within`).
    if !shard_bounds.is_empty() {
        pool.fragment(&shard_bounds);
    }

    // Units with a scheduled mid-run join start *latent*: invisible to
    // the policy's probing and assignment until the global completed-
    // task count reaches their threshold (`Driver::admit_due_joins`).
    let joins = faults.joins();
    let has_drift = faults.has_drift();
    let mut d = Driver {
        backend,
        handles,
        inflight: vec![None; n],
        pool,
        gates: (0..n).map(|_| UnitGate::new()).collect(),
        total: total_items,
        next_task: 0,
        trace: Trace::new(n),
        events: EventSink::default(),
        faults,
        ft,
        attempts: vec![0; n],
        joins,
        next_join: 0,
        last_drift: vec![1.0; n],
        has_drift,
        consec_failures: vec![0; n],
        deadline_hint: vec![None; n],
        rate_ewma: vec![None; n],
        quarantined_until: vec![None; n],
        pending_lost: Vec::new(),
        completed: Vec::new(),
        tasks_done: 0,
        ckpt_writer: checkpoint,
        carried: EventCounters::default(),
        weights,
        nodes,
    };
    for &(pu, _) in &d.joins {
        if pu < n {
            d.handles[pu].available = false;
        }
    }
    d.events.record(
        0.0,
        None,
        EventKind::RunStart {
            policy: policy.name().to_string(),
            total_items,
            n_pus: n,
        },
    );
    if let Some(ckpt) = &restored {
        // Restore the driver's bookkeeping: the task-id sequence, the
        // completed cover, lifetime counters, and per-unit fault state.
        // Restoring `attempts` keeps injected fault plans deterministic
        // across the process boundary.
        d.next_task = ckpt.next_task;
        d.tasks_done = ckpt.tasks_done;
        d.completed = ckpt.completed.clone();
        d.carried = ckpt.counters.clone();
        for (i, u) in ckpt.units.iter().enumerate() {
            d.attempts[i] = u.dispatches;
            d.consec_failures[i] = u.consecutive_failures;
            d.rate_ewma[i] = u.rate_ewma;
            if u.lost {
                // The executor died with the previous process: written
                // off before the policy ever sees the unit.
                if d.gates[i].mark_lost() {
                    d.handles[i].available = false;
                    d.backend.forget_unit(i);
                }
            } else if u.quarantined && d.handles[i].available && d.gates[i].try_quarantine() {
                d.backend.on_unit_quarantined(i);
                d.handles[i].available = false;
                if d.backend.clock_kind() == ClockKind::Wall {
                    let now = d.backend.now();
                    d.quarantined_until[i] = d.ft.probation_s.map(|p| now + p);
                }
            }
        }
        if let Some(w) = d.ckpt_writer.as_mut() {
            w.continue_from(ckpt.seq + 1, ckpt.tasks_done);
        }
        // Re-seed the policy with its persisted state (for PLB-HeC, the
        // accumulated profiles and fitted models — re-fit + re-solve
        // instead of re-probing). A policy that declines restores
        // simply starts fresh on the remaining items.
        if let Some(state) = &ckpt.policy_state {
            let _ = policy.restore(state);
        }
        d.events.record(
            d.backend.now(),
            None,
            EventKind::RunResumed {
                seq: ckpt.seq,
                completed_items: ckpt.completed_items(),
            },
        );
    }
    policy.on_start(&mut d);
    d.notify_lost(policy);
    // Joins already due (a threshold of 0, or a resume past the
    // threshold) fire before the loop; later ones fire on completions.
    d.admit_due_joins(policy);
    let mut outcome = d.run_loop(policy);
    if outcome.is_ok() {
        // One forced snapshot on clean shutdown, so the file on disk
        // always ends covering the full item space.
        outcome = d.maybe_checkpoint(&*policy, true);
    }
    let result = outcome.map(|()| {
        d.events.record(
            d.backend.now(),
            None,
            EventKind::RunEnd {
                makespan_s: d.trace.makespan(),
                total_items,
            },
        );
        let names: Vec<String> = d.handles.iter().map(|h| h.name.clone()).collect();
        let mut report =
            RunReport::from_trace(policy.name(), &d.trace, &names, policy.block_distribution());
        for (i, pu) in report.pus.iter_mut().enumerate() {
            pu.bytes_in = d.backend.bytes_into(i);
        }
        report.events = d.events.counters();
        // Lifetime totals: fold in the counters carried over from the
        // resumed snapshot.
        report.events.merge(&d.carried);
        report.rebalances = report.events.rebalances as usize;
        // The completed cover (coalesced): callers assert the
        // disjoint-cover invariant on it across faults and resumes.
        d.coalesce_completed();
        report.cover = d.completed.clone();
        report
    });
    CoreOutcome {
        result,
        trace: d.trace,
        events: d.events,
        lost: d.gates.iter().map(UnitGate::is_lost).collect(),
    }
}
