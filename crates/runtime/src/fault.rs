//! Fault-tolerance policy knobs shared by both engines.
//!
//! The injection side (what goes wrong) lives in
//! [`plb_hetsim::fault`] and is re-exported here; this module holds the
//! *response* side: how many times a failed block is retried in place,
//! how the retry backoff grows, when a unit is quarantined, and how the
//! host watchdog derives per-task deadlines. The full failure model is
//! documented in `docs/FAULT_TOLERANCE.md`.

pub use plb_hetsim::fault::{
    Fault, FaultAction, FaultKind, FaultPlan, NodeFault, NodeFaultError, NodeFaultKind,
    NodeFaultPlan,
};

/// Tunables of the engines' fault-tolerance layer.
///
/// Defaults are chosen so that a healthy run behaves exactly as before
/// (no retries happen, deadlines are generous multiples of observed
/// block times) while a single panicking kernel costs at most
/// `max_retries` in-place retries before its unit is quarantined and
/// its block redistributed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultToleranceConfig {
    /// In-place retries of a failed block on its own unit before the
    /// block's items return to the shared pool.
    pub max_retries: u32,
    /// Backoff before the first in-place retry, seconds; doubles on
    /// each subsequent retry of the same block (exponential backoff).
    pub backoff_base_s: f64,
    /// Consecutive failures (without an intervening success) after
    /// which a unit is quarantined: removed from the active set, its
    /// block re-credited, and the policy notified so it re-solves the
    /// split over the survivors.
    pub quarantine_after: u32,
    /// Host watchdog: a task's deadline is
    /// `deadline_factor × E_p(x)` where `E_p(x)` is the predicted block
    /// time — the policy's model via
    /// [`SchedulerCtx::set_deadline_hint`](crate::policy::SchedulerCtx::set_deadline_hint)
    /// when available, otherwise the engine's running per-item rate
    /// estimate. Non-finite disables deadlines.
    pub deadline_factor: f64,
    /// Host watchdog: lower bound on any deadline, seconds. Keeps
    /// short tasks from being declared hung by scheduler jitter.
    pub min_deadline_s: f64,
    /// Host engine: when set, a quarantined unit is restored (probation
    /// ends) after this many seconds and the policy is told via
    /// `on_device_restored`. `None` keeps quarantines permanent for the
    /// run. Units lost to a blown deadline are never restored — their
    /// worker may still be wedged in the kernel.
    pub probation_s: Option<f64>,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            max_retries: 2,
            backoff_base_s: 0.01,
            quarantine_after: 3,
            deadline_factor: 10.0,
            min_deadline_s: 0.5,
            probation_s: None,
        }
    }
}

impl FaultToleranceConfig {
    /// Backoff before retry number `attempt` (1-based) of one block.
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        if !(self.backoff_base_s.is_finite() && self.backoff_base_s > 0.0) {
            return 0.0;
        }
        self.backoff_base_s * f64::from(2u32.saturating_pow(attempt.saturating_sub(1)).min(1 << 16))
    }

    /// The deadline (seconds from dispatch) for a task of `items` items
    /// given a seconds-per-item estimate, or `None` when deadlines are
    /// disabled or no estimate exists yet.
    pub fn deadline_for(&self, seconds_per_item: Option<f64>, items: u64) -> Option<f64> {
        if !self.deadline_factor.is_finite() || self.deadline_factor <= 0.0 {
            return None;
        }
        let rate = seconds_per_item?;
        if !(rate.is_finite() && rate > 0.0) {
            return None;
        }
        Some((self.deadline_factor * rate * items as f64).max(self.min_deadline_s))
    }

    /// Builder-style override of the retry bound.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder-style override of the quarantine threshold.
    pub fn with_quarantine_after(mut self, n: u32) -> Self {
        assert!(n > 0, "quarantine threshold must be positive");
        self.quarantine_after = n;
        self
    }

    /// Builder-style override of the deadline factor.
    pub fn with_deadline_factor(mut self, k: f64) -> Self {
        self.deadline_factor = k;
        self
    }

    /// Builder-style override of the deadline floor.
    pub fn with_min_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "deadline floor must be non-negative");
        self.min_deadline_s = seconds;
        self
    }

    /// Builder-style override of the retry backoff base.
    pub fn with_backoff_base(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "backoff must be non-negative");
        self.backoff_base_s = seconds;
        self
    }

    /// Builder-style override of the probation window.
    pub fn with_probation(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "probation must be positive");
        self.probation_s = Some(seconds);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let ft = FaultToleranceConfig::default().with_backoff_base(0.1);
        assert!((ft.backoff_for(1) - 0.1).abs() < 1e-12);
        assert!((ft.backoff_for(2) - 0.2).abs() < 1e-12);
        assert!((ft.backoff_for(3) - 0.4).abs() < 1e-12);
        let none = FaultToleranceConfig::default().with_backoff_base(0.0);
        assert_eq!(none.backoff_for(5), 0.0);
    }

    #[test]
    fn deadline_scales_with_items_and_floors() {
        let ft = FaultToleranceConfig::default()
            .with_deadline_factor(4.0)
            .with_min_deadline(0.5);
        // 4 × 1ms/item × 1000 items = 4s.
        assert_eq!(ft.deadline_for(Some(1e-3), 1000), Some(4.0));
        // Floor kicks in for tiny tasks.
        assert_eq!(ft.deadline_for(Some(1e-6), 10), Some(0.5));
        // No estimate, or disabled factor -> no deadline.
        assert_eq!(ft.deadline_for(None, 1000), None);
        let off = FaultToleranceConfig::default().with_deadline_factor(f64::INFINITY);
        assert_eq!(off.deadline_for(Some(1e-3), 1000), None);
    }
}
