//! Run-level durability: periodic, atomically-written snapshots of the
//! [`core::drive()`](crate::core) driver state, and the resume path that
//! restores them.
//!
//! PLB-HeC's value is the state it accumulates online — fitted `F_p`/`G_p`
//! curves, per-unit measurements, quarantine history, and the disjoint
//! cover of completed work. A process crash used to throw all of it away;
//! this module persists it so a run can be SIGKILLed and picked back up
//! on the remaining uncovered items with zero re-probing.
//!
//! Format and guarantees (see `docs/FAULT_TOLERANCE.md`):
//!
//! * **Atomic writes.** A snapshot is serialized to a sibling `.tmp`
//!   file, flushed with `sync_all`, then renamed over the target path.
//!   A reader (including a resuming process) never observes a partial
//!   snapshot — it sees either the previous complete one or the new one.
//! * **Checksummed.** The file is two lines: a small JSON header
//!   carrying an FNV-1a 64 checksum, then the JSON payload the checksum
//!   covers. Truncation and bit-rot are detected at load, not silently
//!   resumed from.
//! * **Workload identity.** A snapshot names the policy, total item
//!   count and unit count it was taken under; [`Checkpoint::matches`]
//!   rejects resuming it under a different workload.
//!
//! This is the *only* module in `plb-runtime` allowed to touch the
//! filesystem — xtask lint pass 7 (`fs-confinement`) enforces that.

use crate::events::EventCounters;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version stamped into every snapshot; [`load`] refuses newer ones.
/// Version history: 1 = item-count workload identity; 2 adds
/// [`WorkloadId::total_cost`] so a resumed weighted run refuses a
/// snapshot taken under different per-item costs (v1 snapshots still
/// load — their cost defaults to the 0 sentinel and is not matched);
/// 3 adds [`WorkloadId::nodes`] so a mid-partition cluster run can only
/// resume under the same node roster (pre-v3 snapshots still load —
/// their roster defaults to empty and is not matched).
pub const CHECKPOINT_FORMAT_VERSION: u32 = 3;

/// Magic tag on the header line, so a wrong file path fails loudly.
const MAGIC: &str = "plb-checkpoint";

/// Identity of the workload a snapshot was taken under. Resuming
/// requires an exact match: a snapshot of one run must not silently
/// seed a different one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadId {
    /// Scheduling-policy name ([`Policy::name`](crate::Policy::name)).
    pub policy: String,
    /// Items the application processes.
    pub total_items: u64,
    /// Processing units in the cluster.
    pub n_pus: usize,
    /// Total workload weight in cost units ([`crate::Weights`]); equals
    /// `total_items` under uniform weights. 0 is the pre-v2 sentinel
    /// (snapshot written before weights existed): [`Checkpoint::matches`]
    /// skips the cost comparison when either side is 0. Real totals are
    /// never 0 — per-item costs are clamped ≥ 1.
    #[serde(default)]
    pub total_cost: u64,
    /// Node roster of a cluster-tier run: one display name per node,
    /// in shard order. Empty is the pre-v3 sentinel (single-node run or
    /// old snapshot): [`Checkpoint::matches`] skips the roster
    /// comparison when either side is empty, so node identity only
    /// gates resumes of genuine cluster runs.
    #[serde(default)]
    pub nodes: Vec<String>,
}

/// Persisted per-unit driver state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PuState {
    /// Display name of the unit (sanity only, not matched on resume).
    pub name: String,
    /// Lifetime dispatch count on this unit — the fault-plan attempt
    /// index, restored so injected faults stay deterministic across a
    /// resume.
    pub dispatches: u64,
    /// Failures in a row at snapshot time (quarantine threshold state).
    pub consecutive_failures: u32,
    /// Smoothed observed processing rate, cost units/second (items/second
    /// under uniform weights).
    pub rate_ewma: Option<f64>,
    /// The unit was out of the active set when the snapshot was taken.
    pub quarantined: bool,
    /// The unit's executor was written off (worker infrastructure died).
    pub lost: bool,
}

/// One durability snapshot of the driver state: everything `drive()`
/// needs to continue a run in a fresh process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Snapshot format version ([`CHECKPOINT_FORMAT_VERSION`]).
    pub version: u32,
    /// The workload this snapshot belongs to.
    pub workload: WorkloadId,
    /// 0-based sequence number of this snapshot within the run.
    pub seq: u64,
    /// Engine clock at snapshot time, seconds (diagnostic only).
    pub at: f64,
    /// Completed tasks so far (lifetime, across resumes).
    pub tasks_done: u64,
    /// Next engine task id to hand out.
    pub next_task: u64,
    /// The disjoint cover of finished work: sorted, coalesced,
    /// non-overlapping `(offset, items)` ranges. The complement is what
    /// a resumed run still has to do.
    pub completed: Vec<(u64, u64)>,
    /// Per-unit driver state, indexed by unit id.
    pub units: Vec<PuState>,
    /// Lifetime event counters at snapshot time (held + pre-resume).
    pub counters: EventCounters,
    /// Opaque policy snapshot ([`Policy::snapshot`](crate::Policy::snapshot)):
    /// for PLB-HeC, the accumulated profiles and fitted models that make
    /// re-probing unnecessary.
    pub policy_state: Option<serde_json::Value>,
}

impl Checkpoint {
    /// Items covered by the completed ranges.
    pub fn completed_items(&self) -> u64 {
        self.completed.iter().map(|&(_, len)| len).sum()
    }

    /// Structural validity: supported version, completed ranges sorted,
    /// non-empty, disjoint and in bounds, unit list sized to the
    /// workload.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.version > CHECKPOINT_FORMAT_VERSION {
            return Err(CheckpointError::Unsupported {
                version: self.version,
            });
        }
        if self.units.len() != self.workload.n_pus {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {} unit records for a {}-unit workload",
                self.units.len(),
                self.workload.n_pus
            )));
        }
        let mut prev_end = 0u64;
        for (i, &(off, len)) in self.completed.iter().enumerate() {
            if len == 0 {
                return Err(CheckpointError::Corrupt(format!(
                    "completed range #{i} is empty"
                )));
            }
            if i > 0 && off < prev_end {
                return Err(CheckpointError::Corrupt(format!(
                    "completed range #{i} at offset {off} overlaps or precedes the previous range ending at {prev_end}"
                )));
            }
            let end = off.checked_add(len).ok_or_else(|| {
                CheckpointError::Corrupt(format!("completed range #{i} overflows u64"))
            })?;
            if end > self.workload.total_items {
                return Err(CheckpointError::Corrupt(format!(
                    "completed range #{i} ends at {end}, past the {}-item workload",
                    self.workload.total_items
                )));
            }
            prev_end = end;
        }
        Ok(())
    }

    /// Does this snapshot belong to `workload`? Resume refuses a
    /// mismatch instead of corrupting a different run. Field-wise on
    /// purpose: `total_cost` is only compared when both sides carry one
    /// (nonzero), so pre-v2 snapshots of uniform workloads still resume.
    pub fn matches(&self, workload: &WorkloadId) -> Result<(), CheckpointError> {
        let ours = &self.workload;
        let cost_ok = ours.total_cost == 0
            || workload.total_cost == 0
            || ours.total_cost == workload.total_cost;
        let nodes_ok =
            ours.nodes.is_empty() || workload.nodes.is_empty() || ours.nodes == workload.nodes;
        if ours.policy == workload.policy
            && ours.total_items == workload.total_items
            && ours.n_pus == workload.n_pus
            && cost_ok
            && nodes_ok
        {
            Ok(())
        } else {
            let describe = |w: &WorkloadId| {
                let roster = if w.nodes.is_empty() {
                    String::new()
                } else {
                    format!(" / nodes [{}]", w.nodes.join(", "))
                };
                format!(
                    "{} / {} items / {} cost / {} units{roster}",
                    w.policy, w.total_items, w.total_cost, w.n_pus
                )
            };
            Err(CheckpointError::WorkloadMismatch {
                expected: describe(workload),
                found: describe(ours),
            })
        }
    }
}

/// Where and how often to snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Target file; a sibling `<file>.tmp` is used for atomic writes.
    pub path: PathBuf,
    /// Snapshot every this-many completed tasks (plus one forced
    /// snapshot on clean shutdown). Clamped to at least 1.
    pub interval_tasks: u64,
}

impl CheckpointConfig {
    /// Checkpoint to `path` with the default interval (every 32
    /// completed tasks).
    pub fn new(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            interval_tasks: 32,
        }
    }

    /// Override the snapshot interval, in completed tasks.
    #[must_use]
    pub fn with_interval(mut self, interval_tasks: u64) -> CheckpointConfig {
        self.interval_tasks = interval_tasks.max(1);
        self
    }
}

/// Stateful snapshot writer owned by the driver: tracks the sequence
/// number and the task count at the last write so `due` can answer
/// cheaply on the completion hot path.
#[derive(Debug, Clone)]
pub struct CheckpointWriter {
    cfg: CheckpointConfig,
    next_seq: u64,
    tasks_at_last: u64,
}

impl CheckpointWriter {
    /// A writer that starts a fresh snapshot sequence.
    pub fn new(cfg: CheckpointConfig) -> CheckpointWriter {
        CheckpointWriter {
            cfg,
            next_seq: 0,
            tasks_at_last: 0,
        }
    }

    /// Continue an existing sequence after a resume: the next snapshot
    /// gets `next_seq`, and the interval counts from `tasks_done`.
    pub fn continue_from(&mut self, next_seq: u64, tasks_done: u64) {
        self.next_seq = next_seq;
        self.tasks_at_last = tasks_done;
    }

    /// Is a periodic snapshot due at `tasks_done` completed tasks?
    pub fn due(&self, tasks_done: u64) -> bool {
        tasks_done.saturating_sub(self.tasks_at_last) >= self.cfg.interval_tasks.max(1)
    }

    /// Target path of the snapshots.
    pub fn path(&self) -> &Path {
        &self.cfg.path
    }

    /// Stamp `ckpt` with the next sequence number and write it
    /// atomically. Returns the sequence number written.
    pub fn write(&mut self, ckpt: &mut Checkpoint) -> Result<u64, CheckpointError> {
        ckpt.seq = self.next_seq;
        save(&self.cfg.path, ckpt)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tasks_at_last = ckpt.tasks_done;
        Ok(seq)
    }
}

/// Why a snapshot could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The filesystem said no (create, write, sync or rename failed).
    Io(String),
    /// The file is not a valid snapshot: bad magic, failed checksum,
    /// truncated or structurally inconsistent payload.
    Corrupt(String),
    /// The snapshot belongs to a different workload.
    WorkloadMismatch {
        /// Identity of the run asking to resume.
        expected: String,
        /// Identity recorded in the snapshot.
        found: String,
    },
    /// The snapshot was written by a newer format version.
    Unsupported {
        /// Version found in the snapshot.
        version: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(detail) => write!(f, "checkpoint I/O failed: {detail}"),
            CheckpointError::Corrupt(detail) => write!(f, "checkpoint corrupt: {detail}"),
            CheckpointError::WorkloadMismatch { expected, found } => write!(
                f,
                "checkpoint is for a different workload: expected {expected}, found {found}"
            ),
            CheckpointError::Unsupported { version } => write!(
                f,
                "checkpoint format version {version} is newer than supported {CHECKPOINT_FORMAT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit — dependency-free integrity check for the payload
/// line. Not cryptographic; it guards against truncation and bit-rot,
/// not adversaries.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The header line preceding the payload.
#[derive(Serialize, Deserialize)]
struct FileHeader {
    magic: String,
    /// FNV-1a 64 over the payload line's bytes, hex-encoded.
    checksum: String,
}

/// Atomically persist `ckpt` to `path`: serialize, write `<path>.tmp`,
/// `sync_all`, rename over `path`. On any error the previous snapshot
/// at `path` (if one exists) is left untouched.
pub fn save(path: &Path, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    let payload = serde_json::to_string(ckpt)
        .map_err(|e| CheckpointError::Io(format!("serialize snapshot: {e}")))?;
    let header = serde_json::to_string(&FileHeader {
        magic: MAGIC.to_string(),
        checksum: format!("{:016x}", checksum64(payload.as_bytes())),
    })
    .map_err(|e| CheckpointError::Io(format!("serialize header: {e}")))?;

    let tmp = tmp_path(path);
    let io = |what: &str, e: std::io::Error| {
        CheckpointError::Io(format!("{what} {}: {e}", tmp.display()))
    };
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io("create", e))?;
        f.write_all(header.as_bytes()).map_err(|e| io("write", e))?;
        f.write_all(b"\n").map_err(|e| io("write", e))?;
        f.write_all(payload.as_bytes())
            .map_err(|e| io("write", e))?;
        f.write_all(b"\n").map_err(|e| io("write", e))?;
        f.sync_all().map_err(|e| io("sync", e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        CheckpointError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Load and verify a snapshot: magic, checksum, version, structural
/// validity. Never observes a partial file thanks to the atomic write
/// protocol.
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    let (header_line, payload) = text
        .split_once('\n')
        .ok_or_else(|| CheckpointError::Corrupt("missing payload line".into()))?;
    let payload = payload.strip_suffix('\n').unwrap_or(payload);
    let header: FileHeader = serde_json::from_str(header_line)
        .map_err(|e| CheckpointError::Corrupt(format!("bad header line: {e}")))?;
    if header.magic != MAGIC {
        return Err(CheckpointError::Corrupt(format!(
            "bad magic {:?}",
            header.magic
        )));
    }
    let actual = format!("{:016x}", checksum64(payload.as_bytes()));
    if header.checksum != actual {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch: header says {}, payload hashes to {actual}",
            header.checksum
        )));
    }
    let ckpt: Checkpoint = serde_json::from_str(payload)
        .map_err(|e| CheckpointError::Corrupt(format!("bad payload: {e}")))?;
    ckpt.validate()?;
    Ok(ckpt)
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_FORMAT_VERSION,
            workload: WorkloadId {
                policy: "plb-hec".into(),
                total_items: 1000,
                n_pus: 2,
                total_cost: 1000,
                nodes: Vec::new(),
            },
            seq: 0,
            at: 1.25,
            tasks_done: 7,
            next_task: 9,
            completed: vec![(0, 100), (200, 300)],
            units: vec![
                PuState {
                    name: "cpu".into(),
                    dispatches: 5,
                    consecutive_failures: 0,
                    rate_ewma: Some(1234.5),
                    quarantined: false,
                    lost: false,
                },
                PuState {
                    name: "gpu".into(),
                    dispatches: 4,
                    consecutive_failures: 2,
                    rate_ewma: None,
                    quarantined: true,
                    lost: false,
                },
            ],
            counters: EventCounters::default(),
            policy_state: Some(serde_json::json!({"models": []})),
        }
    }

    fn tmp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("plb-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp_file("roundtrip");
        let ckpt = sample();
        save(&path, &ckpt).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.completed_items(), 400);
        // The atomic-write protocol leaves no stray tmp file behind.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_paces_and_numbers_snapshots() {
        let path = tmp_file("writer");
        let mut w = CheckpointWriter::new(CheckpointConfig::new(&path).with_interval(4));
        assert!(!w.due(3));
        assert!(w.due(4));
        let mut ckpt = sample();
        assert_eq!(w.write(&mut ckpt).unwrap(), 0);
        assert_eq!(ckpt.seq, 0);
        // The interval now counts from the written snapshot's task count.
        assert!(!w.due(ckpt.tasks_done + 3));
        assert!(w.due(ckpt.tasks_done + 4));
        assert_eq!(w.write(&mut ckpt).unwrap(), 1);
        // A resumed writer continues the sequence.
        let mut w2 = CheckpointWriter::new(CheckpointConfig::new(&path));
        w2.continue_from(2, 7);
        let mut ckpt2 = sample();
        assert_eq!(w2.write(&mut ckpt2).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let path = tmp_file("corrupt");
        save(&path, &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();

        // Flip a byte inside the payload.
        let mut flipped = text.clone();
        let at = flipped.rfind("plb-hec").unwrap();
        flipped.replace_range(at..at + 7, "plb-heq");
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));

        // Truncate the payload.
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));

        // Header only, no payload line.
        let header = text.split('\n').next().unwrap();
        std::fs::write(&path, header).unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));

        // Not a checkpoint file at all.
        std::fs::write(&path, "{}\n{}\n").unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::Corrupt(_))));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let err = load(Path::new("/nonexistent/plb.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn validate_rejects_bad_covers_and_versions() {
        let mut c = sample();
        c.completed = vec![(0, 100), (50, 10)];
        assert!(matches!(c.validate(), Err(CheckpointError::Corrupt(_))));
        c.completed = vec![(0, 0)];
        assert!(matches!(c.validate(), Err(CheckpointError::Corrupt(_))));
        c.completed = vec![(990, 20)];
        assert!(matches!(c.validate(), Err(CheckpointError::Corrupt(_))));
        c.completed = vec![(0, 100)];
        c.units.pop();
        assert!(matches!(c.validate(), Err(CheckpointError::Corrupt(_))));
        let mut newer = sample();
        newer.version = CHECKPOINT_FORMAT_VERSION + 1;
        assert!(matches!(
            newer.validate(),
            Err(CheckpointError::Unsupported { .. })
        ));
    }

    #[test]
    fn workload_mismatch_is_specific() {
        let c = sample();
        let other = WorkloadId {
            policy: "greedy".into(),
            total_items: 1000,
            n_pus: 2,
            total_cost: 1000,
            nodes: Vec::new(),
        };
        assert!(c.matches(&c.workload).is_ok());
        let err = c.matches(&other).unwrap_err();
        assert!(matches!(err, CheckpointError::WorkloadMismatch { .. }));
        assert!(err.to_string().contains("greedy"));
    }

    #[test]
    fn total_cost_matched_only_when_both_sides_carry_one() {
        let c = sample();
        // A pre-v2 snapshot (sentinel 0) resumes under a costed workload
        // and vice versa; two nonzero costs must agree.
        let mut legacy = c.workload.clone();
        legacy.total_cost = 0;
        assert!(c.matches(&legacy).is_ok());
        let mut old = sample();
        old.workload.total_cost = 0;
        assert!(old.matches(&c.workload).is_ok());
        let mut reweighted = c.workload.clone();
        reweighted.total_cost = 999;
        let err = c.matches(&reweighted).unwrap_err();
        assert!(err.to_string().contains("999 cost"));
    }

    #[test]
    fn node_roster_matched_only_when_both_sides_carry_one() {
        let mut c = sample();
        c.workload.nodes = vec!["node0".into(), "node1".into()];
        // A pre-v3 snapshot (empty roster) resumes under a cluster
        // workload and vice versa; two non-empty rosters must agree.
        let mut legacy = c.workload.clone();
        legacy.nodes = Vec::new();
        assert!(c.matches(&legacy).is_ok());
        let mut old = sample();
        old.workload.nodes = Vec::new();
        assert!(old.matches(&c.workload).is_ok());
        let mut reshaped = c.workload.clone();
        reshaped.nodes = vec!["node0".into(), "node2".into()];
        let err = c.matches(&reshaped).unwrap_err();
        assert!(err.to_string().contains("node2"), "{err}");
        let mut same = sample();
        same.workload.nodes = c.workload.nodes.clone();
        assert!(same.matches(&c.workload).is_ok());
    }
}
