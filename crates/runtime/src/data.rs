//! StarPU-flavored data management: handles, memory nodes, and a
//! transfer ledger.
//!
//! StarPU registers application buffers as *data handles* and tracks
//! which *memory node* (host RAM, each GPU's device memory) holds a
//! valid copy, issuing transfers on demand and keeping copies coherent
//! under a single-writer model. The engines use this layer to account
//! for the bytes each unit pulled across PCIe/network — the raw
//! measurements behind the paper's `G_p[x]` transfer curves.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// A memory node: node 0 is the master's host RAM; each processing unit
/// `i` owns node `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemNode(pub usize);

impl MemNode {
    /// The master node's host memory.
    pub const HOST: MemNode = MemNode(0);

    /// The memory node owned by processing unit `pu`.
    pub fn of_pu(pu: usize) -> MemNode {
        MemNode(pu + 1)
    }
}

/// A registered data buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataHandle {
    id: u64,
    /// Buffer length in bytes.
    pub len_bytes: u64,
}

/// One recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// The moved handle.
    pub handle: DataHandle,
    /// Source node.
    pub from: MemNode,
    /// Destination node.
    pub to: MemNode,
    /// Bytes moved.
    pub bytes: u64,
}

/// The data registry: where valid copies live, plus the transfer ledger.
///
/// Thread-safe: the host engine's workers fetch concurrently.
#[derive(Debug, Default)]
pub struct DataRegistry {
    next_id: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// `(handle id, node)` pairs holding a valid copy.
    copies: HashSet<(u64, usize)>,
    ledger: Vec<TransferRecord>,
}

impl DataRegistry {
    /// Create an empty registry.
    pub fn new() -> DataRegistry {
        DataRegistry::default()
    }

    /// Register a buffer whose valid copy lives on `home`.
    pub fn register(&self, len_bytes: u64, home: MemNode) -> DataHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let h = DataHandle { id, len_bytes };
        self.inner.lock().copies.insert((id, home.0));
        h
    }

    /// Does `node` hold a valid copy of `handle`?
    pub fn has_copy(&self, handle: DataHandle, node: MemNode) -> bool {
        self.inner.lock().copies.contains(&(handle.id, node.0))
    }

    /// Ensure `node` holds a valid copy, recording a transfer from
    /// `from` when it does not. Returns the bytes actually moved (0 on a
    /// cache hit — the mechanism by which a broadcast input, like matrix
    /// A in the paper's MM app, is paid for only once per unit).
    pub fn acquire(&self, handle: DataHandle, node: MemNode, from: MemNode) -> u64 {
        let mut inner = self.inner.lock();
        if inner.copies.contains(&(handle.id, node.0)) {
            return 0;
        }
        debug_assert!(
            inner.copies.contains(&(handle.id, from.0)),
            "acquire: source node has no valid copy"
        );
        inner.copies.insert((handle.id, node.0));
        inner.ledger.push(TransferRecord {
            handle,
            from,
            to: node,
            bytes: handle.len_bytes,
        });
        handle.len_bytes
    }

    /// Invalidate every copy except the one on `writer` (single-writer
    /// coherence after a task writes the buffer).
    pub fn write_back(&self, handle: DataHandle, writer: MemNode) {
        let mut inner = self.inner.lock();
        inner.copies.retain(|&(id, _)| id != handle.id);
        inner.copies.insert((handle.id, writer.0));
    }

    /// Total bytes transferred into `node` so far.
    pub fn bytes_into(&self, node: MemNode) -> u64 {
        self.inner
            .lock()
            .ledger
            .iter()
            .filter(|r| r.to == node)
            .map(|r| r.bytes)
            .sum()
    }

    /// Snapshot of the transfer ledger.
    pub fn ledger(&self) -> Vec<TransferRecord> {
        self.inner.lock().ledger.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_places_home_copy() {
        let reg = DataRegistry::new();
        let h = reg.register(1024, MemNode::HOST);
        assert!(reg.has_copy(h, MemNode::HOST));
        assert!(!reg.has_copy(h, MemNode::of_pu(0)));
    }

    #[test]
    fn acquire_transfers_once() {
        let reg = DataRegistry::new();
        let h = reg.register(4096, MemNode::HOST);
        let node = MemNode::of_pu(2);
        assert_eq!(reg.acquire(h, node, MemNode::HOST), 4096);
        // Second acquire is a cache hit: broadcast data is paid once.
        assert_eq!(reg.acquire(h, node, MemNode::HOST), 0);
        assert_eq!(reg.bytes_into(node), 4096);
        assert_eq!(reg.ledger().len(), 1);
    }

    #[test]
    fn write_back_invalidates_other_copies() {
        let reg = DataRegistry::new();
        let h = reg.register(100, MemNode::HOST);
        let a = MemNode::of_pu(0);
        let b = MemNode::of_pu(1);
        reg.acquire(h, a, MemNode::HOST);
        reg.acquire(h, b, MemNode::HOST);
        reg.write_back(h, a);
        assert!(reg.has_copy(h, a));
        assert!(!reg.has_copy(h, b));
        assert!(!reg.has_copy(h, MemNode::HOST));
        // Re-acquiring on host records a fresh transfer from the writer.
        assert_eq!(reg.acquire(h, MemNode::HOST, a), 100);
    }

    #[test]
    fn distinct_handles_do_not_alias() {
        let reg = DataRegistry::new();
        let h1 = reg.register(10, MemNode::HOST);
        let h2 = reg.register(10, MemNode::HOST);
        assert_ne!(h1, h2);
        reg.acquire(h1, MemNode::of_pu(0), MemNode::HOST);
        assert!(!reg.has_copy(h2, MemNode::of_pu(0)));
    }

    #[test]
    fn concurrent_acquires_transfer_once() {
        use std::sync::Arc;
        let reg = Arc::new(DataRegistry::new());
        let h = reg.register(512, MemNode::HOST);
        let node = MemNode::of_pu(0);
        let total: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    s.spawn(move || reg.acquire(h, node, MemNode::HOST))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .sum()
        });
        assert_eq!(total, 512, "exactly one thread performs the transfer");
    }
}
