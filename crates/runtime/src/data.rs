//! StarPU-flavored data management: handles, memory nodes, a transfer
//! ledger — and [`DisjointOutput`], the audited concurrent-output
//! buffer the app kernels assemble partial results into.
//!
//! StarPU registers application buffers as *data handles* and tracks
//! which *memory node* (host RAM, each GPU's device memory) holds a
//! valid copy, issuing transfers on demand and keeping copies coherent
//! under a single-writer model. The engines use this layer to account
//! for the bytes each unit pulled across PCIe/network — the raw
//! measurements behind the paper's `G_p[x]` transfer curves.
//!
//! This module is the **only** place in the workspace outside the test
//! tree where `unsafe` is permitted (enforced by `cargo xtask lint`,
//! pass `unsafe-allowlist`); every `unsafe` block below carries a
//! `SAFETY:` argument and the whole abstraction is exercised under
//! Miri in CI.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Mutex};
use std::collections::BTreeSet;
use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut, Range};

/// A memory node: node 0 is the master's host RAM; each processing unit
/// `i` owns node `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemNode(pub usize);

impl MemNode {
    /// The master node's host memory.
    pub const HOST: MemNode = MemNode(0);

    /// The memory node owned by processing unit `pu`.
    pub fn of_pu(pu: usize) -> MemNode {
        MemNode(pu + 1)
    }
}

/// A registered data buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataHandle {
    id: u64,
    /// Buffer length in bytes.
    pub len_bytes: u64,
}

/// One recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// The moved handle.
    pub handle: DataHandle,
    /// Source node.
    pub from: MemNode,
    /// Destination node.
    pub to: MemNode,
    /// Bytes moved.
    pub bytes: u64,
}

/// The data registry: where valid copies live, plus the transfer ledger.
///
/// Thread-safe: the host engine's workers fetch concurrently.
#[derive(Debug)]
pub struct DataRegistry {
    next_id: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for DataRegistry {
    fn default() -> DataRegistry {
        DataRegistry {
            next_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// `(handle id, node)` pairs holding a valid copy.
    copies: BTreeSet<(u64, usize)>,
    ledger: Vec<TransferRecord>,
}

impl DataRegistry {
    /// Create an empty registry.
    pub fn new() -> DataRegistry {
        DataRegistry::default()
    }

    /// Register a buffer whose valid copy lives on `home`.
    pub fn register(&self, len_bytes: u64, home: MemNode) -> DataHandle {
        // Relaxed is sufficient: the counter only needs each caller to
        // observe a distinct value (fetch_add is atomic under any
        // ordering). No other memory is published through `next_id` —
        // handle visibility is carried by the `inner` mutex acquired on
        // the next line, which orders the id allocation for any thread
        // that later looks the handle up.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let h = DataHandle { id, len_bytes };
        self.inner.lock().copies.insert((id, home.0));
        h
    }

    /// Does `node` hold a valid copy of `handle`?
    pub fn has_copy(&self, handle: DataHandle, node: MemNode) -> bool {
        self.inner.lock().copies.contains(&(handle.id, node.0))
    }

    /// Ensure `node` holds a valid copy, recording a transfer from
    /// `from` when it does not. Returns the bytes actually moved (0 on a
    /// cache hit — the mechanism by which a broadcast input, like matrix
    /// A in the paper's MM app, is paid for only once per unit).
    pub fn acquire(&self, handle: DataHandle, node: MemNode, from: MemNode) -> u64 {
        let mut inner = self.inner.lock();
        if inner.copies.contains(&(handle.id, node.0)) {
            return 0;
        }
        debug_assert!(
            inner.copies.contains(&(handle.id, from.0)),
            "acquire: source node has no valid copy"
        );
        inner.copies.insert((handle.id, node.0));
        inner.ledger.push(TransferRecord {
            handle,
            from,
            to: node,
            bytes: handle.len_bytes,
        });
        handle.len_bytes
    }

    /// Invalidate every copy except the one on `writer` (single-writer
    /// coherence after a task writes the buffer).
    pub fn write_back(&self, handle: DataHandle, writer: MemNode) {
        let mut inner = self.inner.lock();
        inner.copies.retain(|&(id, _)| id != handle.id);
        inner.copies.insert((handle.id, writer.0));
    }

    /// Total bytes transferred into `node` so far.
    pub fn bytes_into(&self, node: MemNode) -> u64 {
        self.inner
            .lock()
            .ledger
            .iter()
            .filter(|r| r.to == node)
            .map(|r| r.bytes)
            .sum()
    }

    /// Snapshot of the transfer ledger.
    pub fn ledger(&self) -> Vec<TransferRecord> {
        self.inner.lock().ledger.clone()
    }
}

/// Why a [`DisjointOutput`] view could not be handed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisjointError {
    /// The requested range intersects a currently-claimed range.
    Overlap {
        /// Requested range start.
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// Start of the conflicting live claim.
        held_start: usize,
        /// End (exclusive) of the conflicting live claim.
        held_end: usize,
    },
    /// The requested range does not fit inside the buffer.
    OutOfBounds {
        /// Requested range start.
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// Buffer length.
        len: usize,
    },
}

impl fmt::Display for DisjointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DisjointError::Overlap {
                start,
                end,
                held_start,
                held_end,
            } => write!(
                f,
                "range {start}..{end} overlaps live claim {held_start}..{held_end}"
            ),
            DisjointError::OutOfBounds { start, end, len } => {
                write!(f, "range {start}..{end} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for DisjointError {}

/// A shared output buffer that hands out non-overlapping `&mut [T]`
/// views keyed by task range — the safe replacement for the hand-rolled
/// `UnsafeCell` wrappers the app kernels used to carry.
///
/// A data-parallel kernel executing block `offset..offset+items` asks
/// for [`DisjointOutput::writer`] over the element range it owns and
/// writes through the returned view. Claims are tracked in a mutex so
/// overlapping views are impossible to obtain: a duplicated attempt
/// (a wedged worker racing its own re-dispatch, see `docs/
/// FAULT_TOLERANCE.md`) *serializes* on the claim instead of racing on
/// the bytes. Claims are released when the view drops — including
/// during a panic unwind, so a failed block can be re-dispatched and
/// re-claimed.
///
/// When every block has completed, [`DisjointOutput::into_vec`]
/// recovers the assembled `Vec<T>` (or [`DisjointOutput::snapshot`]
/// copies it out from behind a shared reference).
///
/// # Soundness
///
/// The buffer is stored as raw parts (`ptr`/`len`/`cap` of the original
/// `Vec<T>`), never as a `Vec` or slice, so no Rust reference to the
/// whole buffer exists while views are live. Views derive their slices
/// from the raw pointer on each access, and the claim set guarantees
/// any two live views cover disjoint index ranges — so the `&mut [T]`s
/// handed out never alias. This is checked under Miri (Stacked
/// Borrows) in CI; see `docs/SOUNDNESS.md`.
pub struct DisjointOutput<T> {
    ptr: *mut T,
    len: usize,
    cap: usize,
    /// Live claims as half-open `(start, end)` ranges. Empty requested
    /// ranges are never recorded (they alias nothing).
    claims: Mutex<Vec<(usize, usize)>>,
}

// SAFETY: moving the container moves ownership of the raw buffer; `T`
// values themselves cross threads only via the writer views, so
// `T: Send` is required and sufficient.
unsafe impl<T: Send> Send for DisjointOutput<T> {}
// SAFETY: every `&self` entry point is synchronized — claim bookkeeping
// is behind a mutex, and the only data access from `&self`
// (`snapshot`) holds that mutex while claims are provably absent. The
// `&mut [T]` views themselves are non-overlapping by construction.
unsafe impl<T: Send> Sync for DisjointOutput<T> {}

impl<T> DisjointOutput<T> {
    /// Take ownership of `v` as the output buffer.
    pub fn from_vec(v: Vec<T>) -> DisjointOutput<T> {
        let mut v = ManuallyDrop::new(v);
        DisjointOutput {
            ptr: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
            claims: Mutex::new(Vec::new()),
        }
    }

    /// A buffer of `len` copies of `init`.
    pub fn new(init: T, len: usize) -> DisjointOutput<T>
    where
        T: Clone,
    {
        DisjointOutput::from_vec(vec![init; len])
    }

    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Try to claim `range` and return a mutable view of it. Fails if
    /// the range is out of bounds or intersects a live claim.
    pub fn try_writer(&self, range: Range<usize>) -> Result<DisjointWriter<'_, T>, DisjointError> {
        if range.start > range.end || range.end > self.len {
            return Err(DisjointError::OutOfBounds {
                start: range.start,
                end: range.end,
                len: self.len,
            });
        }
        let mut claims = self.claims.lock();
        if !range.is_empty() {
            if let Some(&(s, e)) = claims
                .iter()
                .find(|&&(s, e)| s < range.end && range.start < e)
            {
                return Err(DisjointError::Overlap {
                    start: range.start,
                    end: range.end,
                    held_start: s,
                    held_end: e,
                });
            }
            claims.push((range.start, range.end));
        }
        Ok(DisjointWriter {
            owner: self,
            start: range.start,
            len: range.end - range.start,
        })
    }

    /// Claim `range`, waiting (yield-spinning) for any conflicting live
    /// claim to be released first. This is what kernels call: a stale
    /// duplicated attempt serializes behind the live one instead of
    /// racing it.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds. Deadlocks if the caller
    /// itself holds a view overlapping `range` on the same thread.
    pub fn writer(&self, range: Range<usize>) -> DisjointWriter<'_, T> {
        loop {
            match self.try_writer(range.clone()) {
                Ok(w) => return w,
                Err(e @ DisjointError::OutOfBounds { .. }) => panic!("DisjointOutput: {e}"),
                Err(DisjointError::Overlap { .. }) => thread::yield_now(),
            }
        }
    }

    /// Copy the buffer out from behind a shared reference, waiting for
    /// all live claims to drop first. Holding the claim lock during the
    /// copy blocks new claims, so the snapshot observes a quiescent
    /// buffer.
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        loop {
            let claims = self.claims.lock();
            if claims.is_empty() {
                // SAFETY: ptr/len describe the initialized buffer from
                // `from_vec`; no live claims exist and the held lock
                // prevents new ones, so no `&mut` view aliases this
                // shared view during the copy.
                let s = unsafe { std::slice::from_raw_parts(self.ptr, self.len) };
                return s.to_vec();
            }
            drop(claims);
            thread::yield_now();
        }
    }

    /// Recover the assembled buffer. Consuming `self` proves (via the
    /// borrow checker — views borrow the container) that no view is
    /// live.
    pub fn into_vec(self) -> Vec<T> {
        let me = ManuallyDrop::new(self);
        // SAFETY: `me` is never dropped, so each field is disposed of
        // exactly once: the claim list is read out and dropped here,
        // and ptr/len/cap are reassembled into the Vec they came from
        // in `from_vec` (same allocator, length ≤ capacity).
        unsafe {
            drop(std::ptr::read(&me.claims));
            Vec::from_raw_parts(me.ptr, me.len, me.cap)
        }
    }
}

impl<T> Drop for DisjointOutput<T> {
    fn drop(&mut self) {
        // SAFETY: ptr/len/cap came from the Vec decomposed in
        // `from_vec` and are reassembled exactly once (`into_vec` takes
        // `self` out of drop's reach via ManuallyDrop).
        drop(unsafe { Vec::from_raw_parts(self.ptr, self.len, self.cap) });
    }
}

impl<T> fmt::Debug for DisjointOutput<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DisjointOutput")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// An exclusive view of a claimed range of a [`DisjointOutput`].
/// Derefs to `&mut [T]` indexed relative to the claimed range; the
/// claim is released when the view drops (including on panic unwind).
pub struct DisjointWriter<'a, T> {
    owner: &'a DisjointOutput<T>,
    start: usize,
    len: usize,
}

impl<T> DisjointWriter<'_, T> {
    /// The absolute element range this view covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len
    }
}

impl<T> Deref for DisjointWriter<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: the claim set guarantees `start..start+len` is inside
        // the buffer and not covered by any other live view, so this
        // shared slice aliases no `&mut` view. The slice is derived
        // from the raw pointer (not from a reference to the whole
        // buffer), keeping provenance valid for concurrent disjoint
        // views.
        unsafe { std::slice::from_raw_parts(self.owner.ptr.add(self.start), self.len) }
    }
}

impl<T> DerefMut for DisjointWriter<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as in `deref`, plus exclusivity: the claim set admits
        // at most one live view over any index, so this `&mut` slice is
        // unique for its range.
        unsafe { std::slice::from_raw_parts_mut(self.owner.ptr.add(self.start), self.len) }
    }
}

impl<T> Drop for DisjointWriter<'_, T> {
    fn drop(&mut self) {
        let mut claims = self.owner.claims.lock();
        if let Some(i) = claims
            .iter()
            .position(|&(s, e)| s == self.start && e == self.start + self.len)
        {
            claims.swap_remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_places_home_copy() {
        let reg = DataRegistry::new();
        let h = reg.register(1024, MemNode::HOST);
        assert!(reg.has_copy(h, MemNode::HOST));
        assert!(!reg.has_copy(h, MemNode::of_pu(0)));
    }

    #[test]
    fn acquire_transfers_once() {
        let reg = DataRegistry::new();
        let h = reg.register(4096, MemNode::HOST);
        let node = MemNode::of_pu(2);
        assert_eq!(reg.acquire(h, node, MemNode::HOST), 4096);
        // Second acquire is a cache hit: broadcast data is paid once.
        assert_eq!(reg.acquire(h, node, MemNode::HOST), 0);
        assert_eq!(reg.bytes_into(node), 4096);
        assert_eq!(reg.ledger().len(), 1);
    }

    #[test]
    fn write_back_invalidates_other_copies() {
        let reg = DataRegistry::new();
        let h = reg.register(100, MemNode::HOST);
        let a = MemNode::of_pu(0);
        let b = MemNode::of_pu(1);
        reg.acquire(h, a, MemNode::HOST);
        reg.acquire(h, b, MemNode::HOST);
        reg.write_back(h, a);
        assert!(reg.has_copy(h, a));
        assert!(!reg.has_copy(h, b));
        assert!(!reg.has_copy(h, MemNode::HOST));
        // Re-acquiring on host records a fresh transfer from the writer.
        assert_eq!(reg.acquire(h, MemNode::HOST, a), 100);
    }

    #[test]
    fn distinct_handles_do_not_alias() {
        let reg = DataRegistry::new();
        let h1 = reg.register(10, MemNode::HOST);
        let h2 = reg.register(10, MemNode::HOST);
        assert_ne!(h1, h2);
        reg.acquire(h1, MemNode::of_pu(0), MemNode::HOST);
        assert!(!reg.has_copy(h2, MemNode::of_pu(0)));
    }

    #[test]
    fn concurrent_acquires_transfer_once() {
        use std::sync::Arc;
        let reg = Arc::new(DataRegistry::new());
        let h = reg.register(512, MemNode::HOST);
        let node = MemNode::of_pu(0);
        let total: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    s.spawn(move || reg.acquire(h, node, MemNode::HOST))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .sum()
        });
        assert_eq!(total, 512, "exactly one thread performs the transfer");
    }

    #[test]
    fn disjoint_output_roundtrips() {
        let out = DisjointOutput::new(0u32, 8);
        assert_eq!(out.len(), 8);
        assert!(!out.is_empty());
        {
            let mut w = out.writer(2..5);
            assert_eq!(w.range(), 2..5);
            w.copy_from_slice(&[20, 30, 40]);
        }
        assert_eq!(out.into_vec(), vec![0, 0, 20, 30, 40, 0, 0, 0]);
    }

    #[test]
    fn overlapping_claims_are_rejected_until_release() {
        let out = DisjointOutput::new(0u8, 10);
        let w = out.try_writer(2..6).unwrap();
        assert!(matches!(
            out.try_writer(5..8),
            Err(DisjointError::Overlap {
                held_start: 2,
                held_end: 6,
                ..
            })
        ));
        assert!(matches!(
            out.try_writer(0..3),
            Err(DisjointError::Overlap { .. })
        ));
        // Adjacent and disjoint ranges are fine.
        let w2 = out.try_writer(6..8).unwrap();
        let w0 = out.try_writer(0..2).unwrap();
        drop(w);
        // Released range can be re-claimed (retry / re-dispatch path).
        let _w = out.try_writer(2..6).unwrap();
        drop((w2, w0));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let out = DisjointOutput::new(0u8, 4);
        assert!(matches!(
            out.try_writer(2..6),
            Err(DisjointError::OutOfBounds { len: 4, .. })
        ));
        #[allow(clippy::reversed_empty_ranges)]
        let backwards = out.try_writer(3..1);
        assert!(matches!(backwards, Err(DisjointError::OutOfBounds { .. })));
    }

    #[test]
    fn empty_ranges_never_conflict() {
        let out = DisjointOutput::new(0u8, 4);
        let _a = out.try_writer(2..2).unwrap();
        let _b = out.try_writer(2..2).unwrap();
        let _c = out.try_writer(0..4).unwrap();
    }

    #[test]
    fn claim_released_on_panic_unwind() {
        let out = DisjointOutput::new(0u8, 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w = out.writer(0..4);
            w[0] = 1;
            panic!("kernel fault");
        }));
        assert!(r.is_err());
        // The unwound writer released its claim: re-claim succeeds.
        let w = out.try_writer(0..4).unwrap();
        assert_eq!(w[0], 1, "partial write before the panic is visible");
        drop(w);
        assert_eq!(out.snapshot(), vec![1, 0, 0, 0]);
    }

    #[test]
    fn concurrent_disjoint_writers_assemble_all_blocks() {
        let out = std::sync::Arc::new(DisjointOutput::new(0usize, 64));
        std::thread::scope(|s| {
            for block in 0..8 {
                let out = std::sync::Arc::clone(&out);
                s.spawn(move || {
                    let lo = block * 8;
                    let mut w = out.writer(lo..lo + 8);
                    for (i, slot) in w.iter_mut().enumerate() {
                        *slot = lo + i;
                    }
                });
            }
        });
        let v = std::sync::Arc::try_unwrap(out).unwrap().into_vec();
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn from_vec_preserves_contents() {
        let out = DisjointOutput::from_vec(vec![String::from("a"), String::from("b")]);
        {
            let mut w = out.writer(1..2);
            w[0] = String::from("z");
        }
        assert_eq!(out.into_vec(), vec!["a".to_string(), "z".to_string()]);
    }
}
