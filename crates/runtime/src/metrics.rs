//! Run reports: the per-experiment summary every figure is built from.

use crate::events::EventCounters;
use crate::trace::Trace;
use plb_hetsim::PuId;
use serde::Serialize;

/// Per-unit summary.
#[derive(Debug, Clone, Serialize)]
#[must_use = "a PuReport summarizes measured work; dropping it loses the run's evidence"]
pub struct PuReport {
    /// Unit display name.
    pub name: String,
    /// Items processed.
    pub items: u64,
    /// Fraction of all items processed by this unit (Fig. 6's quantity
    /// at run granularity).
    pub item_share: f64,
    /// Busy seconds (transfer + compute).
    pub busy_s: f64,
    /// Idle fraction of the makespan (Fig. 7's quantity).
    pub idle_fraction: f64,
    /// Bytes moved into this unit's memory node (block data plus the
    /// one-time broadcast staging), from the data registry's ledger.
    pub bytes_in: u64,
}

/// Summary of one complete run.
#[derive(Debug, Clone, Serialize)]
#[must_use = "a RunReport is the product of an entire run; inspect or export it"]
pub struct RunReport {
    /// Policy that produced the run.
    pub policy: String,
    /// Total wall/virtual time, seconds.
    pub makespan: f64,
    /// Items processed across all units.
    pub total_items: u64,
    /// Number of task submissions.
    pub tasks: usize,
    /// Per-unit summaries, indexed by unit id.
    pub pus: Vec<PuReport>,
    /// The policy's declared one-round block distribution (Fig. 6), if
    /// it has one.
    pub block_distribution: Option<Vec<f64>>,
    /// Number of rebalance events the policy reported (via task
    /// counting in the engine: set by the caller when known).
    pub rebalances: usize,
    /// Aggregate decision-level event counts (probes, fits, solves,
    /// rebalances, perturbations) from the run's
    /// [`EventSink`](crate::events::EventSink). Zeroed when the run was
    /// executed without event tracing.
    #[serde(default)]
    pub events: EventCounters,
    /// The disjoint cover of completed work: sorted, coalesced
    /// `(offset, items)` ranges over the item space. A complete run's
    /// cover is the single range `(0, total_items)`; tests assert on
    /// this to prove no item was lost or executed twice across node
    /// faults. Empty when the driver did not track completion ranges.
    #[serde(default)]
    pub cover: Vec<(u64, u64)>,
}

impl RunReport {
    /// Build a report from a trace.
    pub fn from_trace(
        policy: &str,
        trace: &Trace,
        names: &[String],
        block_distribution: Option<Vec<f64>>,
    ) -> RunReport {
        let items = trace.items_per_pu();
        let total: u64 = items.iter().sum();
        let tasks = trace
            .segments()
            .iter()
            .filter(|s| s.kind == crate::trace::SegmentKind::Compute)
            .count();
        let pus = (0..trace.n_pus())
            .map(|i| PuReport {
                name: names.get(i).cloned().unwrap_or_else(|| format!("PU{i}")),
                items: items[i],
                item_share: if total > 0 {
                    items[i] as f64 / total as f64
                } else {
                    0.0
                },
                busy_s: trace.busy_time(PuId(i)),
                idle_fraction: trace.idle_fraction(PuId(i)),
                bytes_in: 0,
            })
            .collect();
        RunReport {
            policy: policy.to_string(),
            makespan: trace.makespan(),
            total_items: total,
            tasks,
            pus,
            block_distribution,
            rebalances: 0,
            events: EventCounters::default(),
            cover: Vec::new(),
        }
    }

    /// Mean idle fraction across units.
    pub fn mean_idle_fraction(&self) -> f64 {
        if self.pus.is_empty() {
            return 0.0;
        }
        self.pus.iter().map(|p| p.idle_fraction).sum::<f64>() / self.pus.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    #[test]
    fn report_from_trace() {
        let mut t = Trace::new(2);
        t.record_task(PuId(0), TaskId(0), 75, 0.0, 0.0, 2.0);
        t.record_task(PuId(1), TaskId(1), 25, 0.0, 0.5, 1.5);
        let names = vec!["a".into(), "b".into()];
        let r = RunReport::from_trace("test", &t, &names, None);
        assert_eq!(r.total_items, 100);
        assert_eq!(r.tasks, 2);
        assert!((r.pus[0].item_share - 0.75).abs() < 1e-12);
        assert!((r.pus[1].busy_s - 2.0).abs() < 1e-12);
        assert_eq!(r.makespan, 2.0);
        assert_eq!(r.mean_idle_fraction(), 0.0);
    }

    #[test]
    fn empty_trace_report() {
        let t = Trace::new(1);
        let r = RunReport::from_trace("x", &t, &["p".into()], None);
        assert_eq!(r.total_items, 0);
        assert_eq!(r.pus[0].item_share, 0.0);
    }
}
