//! The discrete-event simulation engine.
//!
//! Executes a data-parallel application of `total_items` work units on a
//! [`ClusterSim`] under a scheduling [`Policy`]. Virtual time advances
//! through a binary-heap event queue; each task occupies its unit for
//! `transfer_time + proc_time` as measured by the device models. The
//! engine enforces StarPU's worker discipline: one in-flight task per
//! processing unit.
//!
//! All scheduling decisions — assignment bookkeeping, retry, quarantine,
//! re-credit, stall detection, event emission — live in the shared
//! scheduling core ([`crate::core`]); this module is only the
//! virtual-clock [`Backend`]: an event heap over the simulated cluster's
//! device models, plus the StarPU-style data registry feeding the
//! report's byte accounting.
//!
//! Perturbations (slowdowns, failures, restorations) can be scheduled at
//! absolute virtual times to reproduce the paper's future-work scenarios
//! (cloud QoS drift, machine loss).

use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointWriter};
use crate::core::{self, Backend, ClockKind, Durability, Launch, LaunchSpec, Polled};
use crate::data::{DataHandle, DataRegistry, MemNode};
use crate::events::{EventKind, EventSink};
use crate::fault::{FaultAction, FaultPlan, FaultToleranceConfig};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle};
use crate::sync::Arc;
use crate::task::{FailureReason, TaskId};
use crate::trace::Trace;
use crate::weights::Weights;
use plb_hetsim::{ClusterSim, CostModel, PuId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled runtime perturbation.
#[derive(Debug, Clone)]
pub struct Perturbation {
    /// Virtual time at which the perturbation fires.
    pub at: f64,
    /// What happens.
    pub kind: PerturbationKind,
}

/// Kinds of perturbation.
#[derive(Debug, Clone, Copy)]
pub enum PerturbationKind {
    /// Multiply a unit's kernel times by `factor` from now on (cloud QoS
    /// drift; `1.0` restores nominal speed).
    SetSlowdown(PuId, f64),
    /// The unit fails: its in-flight task is lost (items re-credited)
    /// and it accepts no further work.
    Fail(PuId),
    /// A failed unit comes back.
    Restore(PuId),
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The policy left work unassigned with every unit idle — a policy
    /// bug (or every device failed).
    Stalled {
        /// Items never assigned.
        remaining: u64,
        /// Virtual time at which the stall was detected.
        at: f64,
    },
    /// No processing unit is available at start.
    NoUnits,
    /// The engine's own machinery failed (thread spawn, pool
    /// construction). Host engine only; the simulator never returns it.
    Infrastructure {
        /// Human-readable cause.
        detail: String,
    },
    /// Run-level durability failed: a periodic snapshot could not be
    /// written, or the snapshot offered for resume was rejected
    /// (corrupt, truncated, or from a different workload). See
    /// [`crate::checkpoint`].
    Checkpoint {
        /// Human-readable cause.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled { remaining, at } => {
                write!(
                    f,
                    "run stalled at t={at:.6}s with {remaining} items unassigned"
                )
            }
            RunError::NoUnits => write!(f, "no processing units available"),
            RunError::Infrastructure { detail } => {
                write!(f, "engine infrastructure failure: {detail}")
            }
            RunError::Checkpoint { detail } => {
                write!(f, "checkpoint failure: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Event-queue entry. Ordered by time, then sequence for determinism.
#[derive(Debug, Clone, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    payload: EventPayload,
}

#[derive(Debug, Clone, PartialEq)]
enum EventPayload {
    /// Task `task` on `pu` completes.
    Completion { pu: PuId, task: TaskId },
    /// Index into the perturbation list.
    Perturb(usize),
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times are always finite here; total_cmp keeps the order total
        // without a panic path.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Backend-side record of the attempt currently occupying a unit: the
/// device-model timings the completion event will report, and whether
/// the fault plan doomed this attempt to panic at "completion" time.
#[derive(Debug, Clone)]
struct SimAttempt {
    task: TaskId,
    start: f64,
    xfer: f64,
    proc: f64,
    doomed: bool,
}

/// The virtual-clock backend: a binary-heap event queue over the
/// simulated cluster's device models. Mechanics only — every decision
/// is the scheduling core's.
struct SimBackend<'a> {
    cluster: &'a mut ClusterSim,
    cost: &'a dyn CostModel,
    perturbations: Vec<Perturbation>,
    clock: f64,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    overhead_until: f64,
    /// StarPU-style data management: per-task block buffers and the
    /// application's broadcast set, with a transfer ledger per memory
    /// node feeding the run report's byte accounting.
    registry: DataRegistry,
    broadcast: Option<DataHandle>,
    attempt_of: Vec<Option<SimAttempt>>,
}

impl SimBackend<'_> {
    fn push_event(&mut self, time: f64, payload: EventPayload) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            payload,
        }));
    }

    /// Is a `Restore` perturbation still waiting in the event queue?
    /// (Only pending restores can bring a dead cluster back; already-
    /// fired ones must not defer a stall.)
    fn restore_pending(&self) -> bool {
        self.heap.iter().any(|Reverse(e)| {
            matches!(e.payload, EventPayload::Perturb(i)
                if matches!(self.perturbations[i].kind, PerturbationKind::Restore(_)))
        })
    }
}

impl Backend for SimBackend<'_> {
    fn clock_kind(&self) -> ClockKind {
        ClockKind::Virtual
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn launch(&mut self, spec: &LaunchSpec) -> Launch {
        let pu = PuId(spec.pu);
        if spec.attempt == 0 {
            // Data management: the block's input buffer moves host ->
            // unit; the broadcast set is staged once per unit (cache
            // hit after). Retries reuse the already-staged block.
            let node = MemNode::of_pu(spec.pu);
            let block_bytes = self.cost.bytes_in_range(spec.offset, spec.items).max(0.0) as u64;
            if block_bytes > 0 {
                let h = self.registry.register(block_bytes, MemNode::HOST);
                self.registry.acquire(h, node, MemNode::HOST);
            }
            if let Some(b) = self.broadcast {
                self.registry.acquire(b, node, MemNode::HOST);
            }
        }
        let dev = self.cluster.device_mut(pu);
        let xfer = dev.transfer_time_at(self.cost, spec.offset, spec.items);
        // Drift from the fault plan multiplies kernel time only —
        // background load contends for compute, not the interconnect.
        let mut proc = dev.proc_time_at(self.cost, spec.offset, spec.items) * spec.drift;
        // Injected delays stretch the kernel; injected panics surface
        // when the "completion" event fires.
        let doomed = match spec.inject {
            Some(FaultAction::Panic) => true,
            Some(FaultAction::Delay(s)) => {
                proc += s;
                false
            }
            None => false,
        };
        // First attempts issued while scheduler overhead is outstanding
        // begin only after the overhead window closes; retries begin
        // after their backoff.
        let start = if spec.attempt == 0 {
            self.clock.max(self.overhead_until)
        } else {
            self.clock + spec.backoff_s
        };
        self.attempt_of[spec.pu] = Some(SimAttempt {
            task: spec.task,
            start,
            xfer,
            proc,
            doomed,
        });
        self.push_event(
            start + xfer + proc,
            EventPayload::Completion {
                pu,
                task: spec.task,
            },
        );
        Launch::Started { start: Some(start) }
    }

    fn poll(&mut self, _wake: Option<f64>, events: &mut EventSink) -> Polled {
        loop {
            let Some(Reverse(ev)) = self.heap.pop() else {
                return Polled::Drained;
            };
            debug_assert!(ev.time + 1e-12 >= self.clock, "time went backwards");
            self.clock = ev.time.max(self.clock);

            match ev.payload {
                EventPayload::Completion { pu, task } => {
                    // Completions of cancelled attempts (unit failed
                    // while the task was in flight) are stale: skip to
                    // the next event.
                    let current = self.attempt_of[pu.0]
                        .as_ref()
                        .is_some_and(|a| a.task == task);
                    if !current {
                        continue;
                    }
                    let Some(a) = self.attempt_of[pu.0].take() else {
                        continue;
                    };
                    if a.doomed {
                        return Polled::AttemptFailed {
                            pu: pu.0,
                            task,
                            reason: FailureReason::Panicked,
                        };
                    }
                    return Polled::Completed {
                        pu: pu.0,
                        task,
                        start: a.start,
                        xfer_s: a.xfer,
                        proc_s: a.proc,
                        finish: self.clock,
                    };
                }
                EventPayload::Perturb(idx) => match self.perturbations[idx].kind {
                    PerturbationKind::SetSlowdown(pu, f) => {
                        self.cluster.device_mut(pu).set_slowdown(f);
                        events.record(self.clock, Some(pu.0), EventKind::SlowdownSet { factor: f });
                        // In-flight tasks keep their original times:
                        // the slowdown applies from the next kernel,
                        // like a contended cloud node would behave
                        // between scheduling rounds.
                        return Polled::Nothing;
                    }
                    PerturbationKind::Fail(pu) => {
                        self.cluster.device_mut(pu).fail();
                        // The in-flight attempt (if any) is cancelled;
                        // its queued completion event becomes stale.
                        self.attempt_of[pu.0] = None;
                        return Polled::UnitDown { pu: pu.0 };
                    }
                    PerturbationKind::Restore(pu) => {
                        self.cluster.device_mut(pu).restore();
                        return Polled::UnitRestored { pu: pu.0 };
                    }
                },
            }
        }
    }

    fn charge_overhead(&mut self, seconds: f64) {
        self.overhead_until = self.overhead_until.max(self.clock) + seconds;
    }

    fn on_unit_quarantined(&mut self, pu: usize) {
        self.cluster.device_mut(PuId(pu)).fail();
    }

    fn on_unit_joined(&mut self, pu: usize) {
        // The device sat latent (held out of the roster by the core);
        // make sure the simulated hardware is live from here on.
        // Restoring a never-failed device is a no-op.
        self.cluster.device_mut(PuId(pu)).restore();
    }

    fn idle_progress_possible(&self) -> bool {
        self.heap
            .iter()
            .any(|Reverse(e)| matches!(e.payload, EventPayload::Completion { .. }))
            || self.restore_pending()
    }

    fn external_restore_possible(&self) -> bool {
        self.restore_pending()
    }

    fn bytes_into(&self, pu: usize) -> u64 {
        self.registry.bytes_into(MemNode::of_pu(pu))
    }
}

/// The discrete-event engine: a cluster, a cost model, and optional
/// perturbations.
///
/// ```
/// use plb_hetsim::cluster::ClusterOptions;
/// use plb_hetsim::workload::LinearCost;
/// use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
/// use plb_runtime::{FixedBlockPolicy, SimEngine};
///
/// let machines = cluster_scenario(Scenario::One, false);
/// let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
/// let cost = LinearCost::generic();
/// let mut policy = FixedBlockPolicy { block: 1_000 };
/// let report = SimEngine::new(&mut cluster, &cost)
///     .run(&mut policy, 50_000)
///     .unwrap();
/// assert_eq!(report.total_items, 50_000);
/// assert!(report.makespan > 0.0);
/// ```
pub struct SimEngine<'a> {
    cluster: &'a mut ClusterSim,
    cost: &'a dyn CostModel,
    perturbations: Vec<Perturbation>,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<Checkpoint>,
    weights: Arc<Weights>,
    last_trace: Option<Trace>,
    last_events: Option<EventSink>,
}

impl<'a> SimEngine<'a> {
    /// Create an engine over a cluster and an application cost model.
    pub fn new(cluster: &'a mut ClusterSim, cost: &'a dyn CostModel) -> SimEngine<'a> {
        SimEngine {
            cluster,
            cost,
            perturbations: Vec::new(),
            faults: FaultPlan::none(),
            ft: FaultToleranceConfig::default(),
            checkpoint: None,
            resume: None,
            weights: Weights::uniform(),
            last_trace: None,
            last_events: None,
        }
    }

    /// Schedule perturbations (may be unsorted; the engine orders them).
    pub fn with_perturbations(mut self, p: Vec<Perturbation>) -> SimEngine<'a> {
        self.perturbations = p;
        self
    }

    /// Inject deterministic faults (panics, delays) by per-unit attempt
    /// index. See [`FaultPlan`].
    pub fn with_faults(mut self, plan: FaultPlan) -> SimEngine<'a> {
        self.faults = plan;
        self
    }

    /// Override the fault-response tunables (retry bound, backoff,
    /// quarantine threshold). Deadlines don't apply to virtual time.
    pub fn with_fault_tolerance(mut self, ft: FaultToleranceConfig) -> SimEngine<'a> {
        self.ft = ft;
        self
    }

    /// Write periodic, atomically-replaced durability snapshots of the
    /// driver state during `run` (plus one on clean shutdown). See
    /// [`crate::checkpoint`].
    pub fn with_checkpoint(mut self, cfg: CheckpointConfig) -> SimEngine<'a> {
        self.checkpoint = Some(cfg);
        self
    }

    /// Resume the next `run` from `ckpt` instead of starting fresh.
    /// Consumed by that run: a second `run` on the same engine starts
    /// fresh again. The snapshot must match the run's workload (policy
    /// name, item count, unit count) or `run` fails with
    /// [`RunError::Checkpoint`].
    pub fn resume_from(mut self, ckpt: Checkpoint) -> SimEngine<'a> {
        self.resume = Some(ckpt);
        self
    }

    /// Use per-item work weights for the run: pool claims become
    /// cost-budgeted and profiling/selection see cost, not count. The
    /// default is [`Weights::Uniform`], under which everything behaves
    /// exactly as the pre-weights engine did. See [`crate::weights`].
    pub fn with_weights(mut self, weights: Arc<Weights>) -> SimEngine<'a> {
        self.weights = weights;
        self
    }

    /// Run `total_items` under `policy`. Returns the run report, or an
    /// error when the policy deadlocks the run. Delegates to the shared
    /// scheduling core ([`crate::core`]) over a virtual-clock backend.
    pub fn run(
        &mut self,
        policy: &mut dyn Policy,
        total_items: u64,
    ) -> Result<RunReport, RunError> {
        let handles: Vec<PuHandle> = self
            .cluster
            .devices()
            .iter()
            .enumerate()
            .map(|(i, d)| PuHandle {
                id: PuId(i),
                name: d.spec.name.clone(),
                kind: d.spec.kind,
                machine: d.spec.machine,
                available: d.is_available(),
            })
            .collect();
        if !handles.iter().any(|h| h.available) {
            return Err(RunError::NoUnits);
        }
        let n = handles.len();
        let registry = DataRegistry::new();
        let broadcast_bytes = self.cost.broadcast_bytes().max(0.0) as u64;
        let broadcast = if broadcast_bytes > 0 {
            Some(registry.register(broadcast_bytes, MemNode::HOST))
        } else {
            None
        };
        let mut backend = SimBackend {
            cluster: &mut *self.cluster,
            cost: self.cost,
            perturbations: self.perturbations.clone(),
            clock: 0.0,
            heap: BinaryHeap::new(),
            seq: 0,
            overhead_until: 0.0,
            registry,
            broadcast,
            attempt_of: vec![None; n],
        };
        for i in 0..backend.perturbations.len() {
            let at = backend.perturbations[i].at.max(0.0);
            backend.push_event(at, EventPayload::Perturb(i));
        }
        let durability = Durability {
            checkpoint: self.checkpoint.clone().map(CheckpointWriter::new),
            resume: self.resume.take(),
            ..Default::default()
        };
        let outcome = core::drive(
            &mut backend,
            handles,
            policy,
            total_items,
            Arc::clone(&self.weights),
            self.faults.clone(),
            self.ft.clone(),
            durability,
        );
        self.last_trace = Some(outcome.trace);
        self.last_events = Some(outcome.events);
        outcome.result
    }

    /// The full trace of the most recent successful `run` (for Gantt
    /// rendering and idle-time analysis).
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// The structured event stream of the most recent `run` — also
    /// populated on a stalled run, so post-mortems can see what the
    /// policy last did. See [`crate::events`].
    pub fn last_events(&self) -> Option<&EventSink> {
        self.last_events.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedBlockPolicy, SchedulerCtx};
    use crate::task::TaskInfo;
    use plb_hetsim::cluster::ClusterOptions;
    use plb_hetsim::workload::LinearCost;
    use plb_hetsim::{cluster_scenario, Scenario};

    fn make_cluster(s: Scenario) -> ClusterSim {
        ClusterSim::build(
            &cluster_scenario(s, false),
            &ClusterOptions {
                noise_sigma: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn fixed_policy_processes_everything() {
        let mut cluster = make_cluster(Scenario::Two);
        let cost = LinearCost::generic();
        let mut policy = FixedBlockPolicy { block: 1000 };
        let report = SimEngine::new(&mut cluster, &cost)
            .run(&mut policy, 100_000)
            .unwrap();
        assert_eq!(report.total_items, 100_000);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn zero_items_finishes_immediately() {
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let mut policy = FixedBlockPolicy { block: 10 };
        let report = SimEngine::new(&mut cluster, &cost)
            .run(&mut policy, 0)
            .unwrap();
        assert_eq!(report.total_items, 0);
        assert_eq!(report.makespan, 0.0);
    }

    #[test]
    fn stalled_policy_detected() {
        struct LazyPolicy;
        impl Policy for LazyPolicy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn on_start(&mut self, _ctx: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
        }
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let err = SimEngine::new(&mut cluster, &cost)
            .run(&mut LazyPolicy, 100)
            .unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 100, .. }));
    }

    #[test]
    fn failure_recredit_items_and_completes() {
        let mut cluster = make_cluster(Scenario::Two);
        let cost = LinearCost::generic();
        let mut policy = FixedBlockPolicy { block: 5_000 };
        let report = SimEngine::new(&mut cluster, &cost)
            .with_perturbations(vec![Perturbation {
                at: 1e-5,
                kind: PerturbationKind::Fail(PuId(0)),
            }])
            .run(&mut policy, 200_000)
            .unwrap();
        // All items still processed by the surviving units.
        assert_eq!(report.total_items, 200_000);
        // The failed unit processed nothing (its first task was lost
        // before completion).
        assert_eq!(report.pus[0].items, 0);
    }

    #[test]
    fn slowdown_perturbation_changes_future_tasks() {
        let cost = LinearCost::generic();
        let mut c1 = make_cluster(Scenario::One);
        let base = SimEngine::new(&mut c1, &cost)
            .run(&mut FixedBlockPolicy { block: 10_000 }, 500_000)
            .unwrap();
        let mut c2 = make_cluster(Scenario::One);
        let slowed = SimEngine::new(&mut c2, &cost)
            .with_perturbations(vec![Perturbation {
                at: 0.0,
                kind: PerturbationKind::SetSlowdown(PuId(1), 10.0),
            }])
            .run(&mut FixedBlockPolicy { block: 10_000 }, 500_000)
            .unwrap();
        assert!(slowed.makespan > base.makespan);
    }

    #[test]
    fn all_failed_units_is_no_units() {
        let mut cluster = make_cluster(Scenario::One);
        for id in cluster.ids().collect::<Vec<_>>() {
            cluster.device_mut(id).fail();
        }
        let cost = LinearCost::generic();
        let err = SimEngine::new(&mut cluster, &cost)
            .run(&mut FixedBlockPolicy { block: 10 }, 100)
            .unwrap_err();
        assert_eq!(err, RunError::NoUnits);
    }

    #[test]
    fn assign_clamps_to_remaining() {
        struct GreedyOnce;
        impl Policy for GreedyOnce {
            fn name(&self) -> &str {
                "once"
            }
            fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
                let got = ctx.assign(PuId(0), u64::MAX);
                assert_eq!(got, ctx.total_items());
                // Second assign on a busy unit returns 0.
                assert_eq!(ctx.assign(PuId(0), 10), 0);
            }
            fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
        }
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let report = SimEngine::new(&mut cluster, &cost)
            .run(&mut GreedyOnce, 777)
            .unwrap();
        assert_eq!(report.total_items, 777);
        assert_eq!(report.tasks, 1);
    }

    #[test]
    fn run_records_event_stream() {
        let mut cluster = make_cluster(Scenario::Two);
        let cost = LinearCost::generic();
        let mut engine = SimEngine::new(&mut cluster, &cost).with_perturbations(vec![
            Perturbation {
                at: 1e-4,
                kind: PerturbationKind::SetSlowdown(PuId(1), 2.0),
            },
            Perturbation {
                at: 2e-4,
                kind: PerturbationKind::Fail(PuId(0)),
            },
        ]);
        let report = engine
            .run(&mut FixedBlockPolicy { block: 5_000 }, 100_000)
            .unwrap();
        let sink = engine.last_events().expect("events recorded");
        let events = sink.events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::RunEnd { .. }
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SlowdownSet { .. })));
        assert!(events.iter().any(|e| e.kind == EventKind::DeviceFailed));
        // Counters on the report agree with the stream.
        assert_eq!(report.events.tasks_finished, report.tasks as u64);
        assert_eq!(report.events.perturbations, 2);
        assert_eq!(report.events.device_failures, 1);
        // Per-PU timestamps are monotone after clamping.
        let mut last: std::collections::BTreeMap<usize, f64> = Default::default();
        for e in &events {
            if let Some(p) = e.pu {
                let prev = last.entry(p).or_insert(f64::NEG_INFINITY);
                assert!(e.t >= *prev, "event time regressed on pu {p}");
                *prev = e.t;
            }
        }
    }

    #[test]
    fn stalled_run_preserves_events() {
        struct LazyPolicy;
        impl Policy for LazyPolicy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn on_start(&mut self, _ctx: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
        }
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let mut engine = SimEngine::new(&mut cluster, &cost);
        let err = engine.run(&mut LazyPolicy, 42).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 42, .. }));
        let events = engine.last_events().expect("post-mortem events").events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Stalled { remaining: 42 })));
    }

    #[test]
    fn deterministic_across_runs() {
        let cost = LinearCost::generic();
        let run = || {
            let mut cluster = ClusterSim::build(
                &cluster_scenario(Scenario::Three, false),
                &ClusterOptions {
                    noise_sigma: 0.05,
                    seed: 9,
                    ..Default::default()
                },
            );
            SimEngine::new(&mut cluster, &cost)
                .run(&mut FixedBlockPolicy { block: 3_000 }, 300_000)
                .unwrap()
                .makespan
        };
        assert_eq!(run(), run());
    }
}
