//! The discrete-event simulation engine.
//!
//! Executes a data-parallel application of `total_items` work units on a
//! [`ClusterSim`] under a scheduling [`Policy`]. Virtual time advances
//! through a binary-heap event queue; each task occupies its unit for
//! `transfer_time + proc_time` as measured by the device models. The
//! engine enforces StarPU's worker discipline: one in-flight task per
//! processing unit.
//!
//! Perturbations (slowdowns, failures, restorations) can be scheduled at
//! absolute virtual times to reproduce the paper's future-work scenarios
//! (cloud QoS drift, machine loss).

use crate::data::{DataHandle, DataRegistry, MemNode};
use crate::events::{EventKind, EventSink};
use crate::fault::{FaultAction, FaultPlan, FaultToleranceConfig};
use crate::metrics::RunReport;
use crate::policy::{Policy, PuHandle, SchedulerCtx};
use crate::task::{FailureReason, TaskFailure, TaskId, TaskInfo};
use crate::trace::Trace;
use plb_hetsim::{ClusterSim, CostModel, PuId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled runtime perturbation.
#[derive(Debug, Clone)]
pub struct Perturbation {
    /// Virtual time at which the perturbation fires.
    pub at: f64,
    /// What happens.
    pub kind: PerturbationKind,
}

/// Kinds of perturbation.
#[derive(Debug, Clone, Copy)]
pub enum PerturbationKind {
    /// Multiply a unit's kernel times by `factor` from now on (cloud QoS
    /// drift; `1.0` restores nominal speed).
    SetSlowdown(PuId, f64),
    /// The unit fails: its in-flight task is lost (items re-credited)
    /// and it accepts no further work.
    Fail(PuId),
    /// A failed unit comes back.
    Restore(PuId),
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The policy left work unassigned with every unit idle — a policy
    /// bug (or every device failed).
    Stalled {
        /// Items never assigned.
        remaining: u64,
        /// Virtual time at which the stall was detected.
        at: f64,
    },
    /// No processing unit is available at start.
    NoUnits,
    /// The engine's own machinery failed (thread spawn, pool
    /// construction). Host engine only; the simulator never returns it.
    Infrastructure {
        /// Human-readable cause.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled { remaining, at } => {
                write!(
                    f,
                    "run stalled at t={at:.6}s with {remaining} items unassigned"
                )
            }
            RunError::NoUnits => write!(f, "no processing units available"),
            RunError::Infrastructure { detail } => {
                write!(f, "engine infrastructure failure: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Event-queue entry. Ordered by time, then sequence for determinism.
#[derive(Debug, Clone, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    payload: EventPayload,
}

#[derive(Debug, Clone, PartialEq)]
enum EventPayload {
    /// Task `task` on `pu` completes.
    Completion { pu: PuId, task: TaskId },
    /// Index into the perturbation list.
    Perturb(usize),
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Times are always finite here; total_cmp keeps the order total
        // without a panic path.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct Pending {
    task: TaskId,
    items: u64,
    start: f64,
    xfer: f64,
    proc: f64,
    /// 0-based attempt number of this block (0 = first try).
    attempt: u32,
    /// The fault plan decided this attempt panics at "completion" time.
    doomed: bool,
}

struct EngineState<'a> {
    cluster: &'a mut ClusterSim,
    cost: &'a dyn CostModel,
    handles: Vec<PuHandle>,
    inflight: Vec<Option<Pending>>,
    remaining: u64,
    total: u64,
    clock: f64,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    next_task: u64,
    trace: Trace,
    events: EventSink,
    overhead_until: f64,
    /// StarPU-style data management: per-task block buffers and the
    /// application's broadcast set, with a transfer ledger per memory
    /// node feeding the run report's byte accounting.
    registry: DataRegistry,
    broadcast: Option<DataHandle>,
    /// Fault injection + response (see [`crate::fault`]).
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    /// Per-unit dispatch counter (including retries) — the fault plan's
    /// attempt index.
    attempts: Vec<u64>,
    /// Per-unit consecutive-failure counter; reset by any success.
    consec_failures: Vec<u32>,
}

impl<'a> EngineState<'a> {
    fn push_event(&mut self, time: f64, payload: EventPayload) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            payload,
        }));
    }
}

impl SchedulerCtx for EngineState<'_> {
    fn now(&self) -> f64 {
        self.clock
    }

    fn pus(&self) -> &[PuHandle] {
        &self.handles
    }

    fn remaining_items(&self) -> u64 {
        self.remaining
    }

    fn total_items(&self) -> u64 {
        self.total
    }

    fn assign(&mut self, pu: PuId, items: u64) -> u64 {
        if items == 0 || self.remaining == 0 {
            return 0;
        }
        let h = &self.handles[pu.0];
        if !h.available || self.inflight[pu.0].is_some() {
            return 0;
        }
        let items = items.min(self.remaining);
        self.remaining -= items;

        // Data management: the block's input buffer moves host -> unit;
        // the broadcast set is staged once per unit (cache hit after).
        let node = MemNode::of_pu(pu.0);
        let block_bytes = self.cost.bytes_in(items).max(0.0) as u64;
        if block_bytes > 0 {
            let h = self.registry.register(block_bytes, MemNode::HOST);
            self.registry.acquire(h, node, MemNode::HOST);
        }
        if let Some(b) = self.broadcast {
            self.registry.acquire(b, node, MemNode::HOST);
        }

        let dev = self.cluster.device_mut(pu);
        let xfer = dev.transfer_time(self.cost, items);
        let mut proc = dev.proc_time(self.cost, items);
        let task = TaskId(self.next_task);
        self.next_task += 1;
        // Consult the fault plan for this dispatch: injected delays
        // stretch the kernel, injected panics surface when the
        // "completion" event fires.
        let fault_attempt = self.attempts[pu.0];
        self.attempts[pu.0] += 1;
        let doomed = match self.faults.action(pu.0, fault_attempt) {
            Some(FaultAction::Panic) => true,
            Some(FaultAction::Delay(s)) => {
                proc += s;
                false
            }
            None => false,
        };
        // Assignments issued while scheduler overhead is outstanding
        // begin only after the overhead window closes.
        let start = self.clock.max(self.overhead_until);
        self.inflight[pu.0] = Some(Pending {
            task,
            items,
            start,
            xfer,
            proc,
            attempt: 0,
            doomed,
        });
        self.events.record(
            self.clock,
            Some(pu.0),
            EventKind::TaskSubmit {
                task: task.0,
                items,
            },
        );
        self.events.record(
            start,
            Some(pu.0),
            EventKind::TaskStart {
                task: task.0,
                items,
            },
        );
        self.push_event(start + xfer + proc, EventPayload::Completion { pu, task });
        items
    }

    fn is_busy(&self, pu: PuId) -> bool {
        self.inflight[pu.0].is_some()
    }

    fn any_busy(&self) -> bool {
        self.inflight.iter().any(Option::is_some)
    }

    fn charge_overhead(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.overhead_until = self.overhead_until.max(self.clock) + seconds;
        }
    }

    fn emit_event(&mut self, pu: Option<usize>, kind: EventKind) {
        self.events.record(self.clock, pu, kind);
    }
}

/// The discrete-event engine: a cluster, a cost model, and optional
/// perturbations.
///
/// ```
/// use plb_hetsim::cluster::ClusterOptions;
/// use plb_hetsim::workload::LinearCost;
/// use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
/// use plb_runtime::{FixedBlockPolicy, SimEngine};
///
/// let machines = cluster_scenario(Scenario::One, false);
/// let mut cluster = ClusterSim::build(&machines, &ClusterOptions::default());
/// let cost = LinearCost::generic();
/// let mut policy = FixedBlockPolicy { block: 1_000 };
/// let report = SimEngine::new(&mut cluster, &cost)
///     .run(&mut policy, 50_000)
///     .unwrap();
/// assert_eq!(report.total_items, 50_000);
/// assert!(report.makespan > 0.0);
/// ```
pub struct SimEngine<'a> {
    cluster: &'a mut ClusterSim,
    cost: &'a dyn CostModel,
    perturbations: Vec<Perturbation>,
    faults: FaultPlan,
    ft: FaultToleranceConfig,
    last_trace: Option<Trace>,
    last_events: Option<EventSink>,
}

impl<'a> SimEngine<'a> {
    /// Create an engine over a cluster and an application cost model.
    pub fn new(cluster: &'a mut ClusterSim, cost: &'a dyn CostModel) -> SimEngine<'a> {
        SimEngine {
            cluster,
            cost,
            perturbations: Vec::new(),
            faults: FaultPlan::none(),
            ft: FaultToleranceConfig::default(),
            last_trace: None,
            last_events: None,
        }
    }

    /// Schedule perturbations (may be unsorted; the engine orders them).
    pub fn with_perturbations(mut self, p: Vec<Perturbation>) -> SimEngine<'a> {
        self.perturbations = p;
        self
    }

    /// Inject deterministic faults (panics, delays) by per-unit attempt
    /// index. See [`FaultPlan`].
    pub fn with_faults(mut self, plan: FaultPlan) -> SimEngine<'a> {
        self.faults = plan;
        self
    }

    /// Override the fault-response tunables (retry bound, backoff,
    /// quarantine threshold). Deadlines don't apply to virtual time.
    pub fn with_fault_tolerance(mut self, ft: FaultToleranceConfig) -> SimEngine<'a> {
        self.ft = ft;
        self
    }

    /// Is a `Restore` perturbation still waiting in the event queue?
    /// (Only pending restores can bring a dead cluster back; already-
    /// fired ones must not defer a stall.)
    fn restore_pending(st: &EngineState<'_>, perturbations: &[Perturbation]) -> bool {
        st.heap.iter().any(|Reverse(e)| {
            matches!(e.payload, EventPayload::Perturb(i)
                if matches!(perturbations[i].kind, PerturbationKind::Restore(_)))
        })
    }

    /// Record the stall, preserve the partial trace/event stream for
    /// post-mortem inspection, and build the error.
    fn stall(
        st: &mut EngineState<'_>,
        last_trace: &mut Option<Trace>,
        last_events: &mut Option<EventSink>,
    ) -> RunError {
        st.events.record(
            st.clock,
            None,
            EventKind::Stalled {
                remaining: st.remaining,
            },
        );
        *last_trace = Some(std::mem::take(&mut st.trace));
        *last_events = Some(std::mem::take(&mut st.events));
        RunError::Stalled {
            remaining: st.remaining,
            at: st.clock,
        }
    }

    /// Run `total_items` under `policy`. Returns the run report, or an
    /// error when the policy deadlocks the run.
    pub fn run(
        &mut self,
        policy: &mut dyn Policy,
        total_items: u64,
    ) -> Result<RunReport, RunError> {
        let handles: Vec<PuHandle> = self
            .cluster
            .devices()
            .iter()
            .enumerate()
            .map(|(i, d)| PuHandle {
                id: PuId(i),
                name: d.spec.name.clone(),
                kind: d.spec.kind,
                machine: d.spec.machine,
                available: d.is_available(),
            })
            .collect();
        if !handles.iter().any(|h| h.available) {
            return Err(RunError::NoUnits);
        }
        let n = handles.len();
        let registry = DataRegistry::new();
        let broadcast_bytes = self.cost.broadcast_bytes().max(0.0) as u64;
        let broadcast = if broadcast_bytes > 0 {
            Some(registry.register(broadcast_bytes, MemNode::HOST))
        } else {
            None
        };
        let mut st = EngineState {
            cluster: &mut *self.cluster,
            cost: self.cost,
            handles,
            inflight: vec![None; n],
            remaining: total_items,
            total: total_items,
            clock: 0.0,
            heap: BinaryHeap::new(),
            seq: 0,
            next_task: 0,
            trace: Trace::new(n),
            events: EventSink::default(),
            overhead_until: 0.0,
            registry,
            broadcast,
            faults: self.faults.clone(),
            ft: self.ft.clone(),
            attempts: vec![0; n],
            consec_failures: vec![0; n],
        };
        for (i, p) in self.perturbations.iter().enumerate() {
            st.push_event(p.at.max(0.0), EventPayload::Perturb(i));
        }
        st.events.record(
            0.0,
            None,
            EventKind::RunStart {
                policy: policy.name().to_string(),
                total_items,
                n_pus: n,
            },
        );

        policy.on_start(&mut st);

        loop {
            // Completion / stall checks.
            let busy = st.any_busy();
            let events_pending = !st.heap.is_empty();
            if st.remaining == 0 && !busy {
                break;
            }
            if !events_pending {
                return Err(Self::stall(
                    &mut st,
                    &mut self.last_trace,
                    &mut self.last_events,
                ));
            }
            if !busy && st.remaining > 0 {
                // Only perturbation events can remain; unless one of the
                // *pending* ones is a restore, no future event can make
                // progress — stall now rather than replaying the queue.
                let only_perturb = st
                    .heap
                    .iter()
                    .all(|Reverse(e)| matches!(e.payload, EventPayload::Perturb(_)));
                if only_perturb && !Self::restore_pending(&st, &self.perturbations) {
                    return Err(Self::stall(
                        &mut st,
                        &mut self.last_trace,
                        &mut self.last_events,
                    ));
                }
            }

            let Some(Reverse(ev)) = st.heap.pop() else {
                // Unreachable: the events_pending check above guarantees
                // a non-empty heap. Treat defensively as a stall.
                return Err(Self::stall(
                    &mut st,
                    &mut self.last_trace,
                    &mut self.last_events,
                ));
            };
            debug_assert!(ev.time + 1e-12 >= st.clock, "time went backwards");
            st.clock = ev.time.max(st.clock);

            match ev.payload {
                EventPayload::Completion { pu, task } => {
                    // Ignore completions of tasks cancelled by a failure.
                    let matches_current =
                        st.inflight[pu.0].as_ref().is_some_and(|p| p.task == task);
                    if !matches_current {
                        continue;
                    }
                    let Some(pend) = st.inflight[pu.0].take() else {
                        continue;
                    };
                    if pend.doomed {
                        // The injected fault fires: this attempt panicked
                        // instead of completing.
                        st.consec_failures[pu.0] += 1;
                        let failures = st.consec_failures[pu.0];
                        st.events.record(
                            st.clock,
                            Some(pu.0),
                            EventKind::TaskFailed {
                                task: pend.task.0,
                                items: pend.items,
                                attempt: pend.attempt,
                                reason: FailureReason::Panicked.name().to_string(),
                            },
                        );
                        if failures >= st.ft.quarantine_after {
                            // Quarantine: the unit leaves the active set,
                            // its block returns to the pool, and the
                            // policy re-solves over the survivors.
                            st.cluster.device_mut(pu).fail();
                            st.handles[pu.0].available = false;
                            st.remaining += pend.items;
                            st.events.record(
                                st.clock,
                                Some(pu.0),
                                EventKind::PuQuarantined { failures },
                            );
                            st.events
                                .record(st.clock, Some(pu.0), EventKind::DeviceFailed);
                            policy.on_device_lost(&mut st, pu);
                            let failure = TaskFailure {
                                task_id: pend.task,
                                pu,
                                items: pend.items,
                                attempt: pend.attempt,
                                at: st.clock,
                                reason: FailureReason::Panicked,
                            };
                            policy.on_task_failed(&mut st, &failure);
                            if !st.handles.iter().any(|h| h.available)
                                && !Self::restore_pending(&st, &self.perturbations)
                            {
                                // Every unit is gone and nothing can
                                // bring one back: stall immediately.
                                return Err(Self::stall(
                                    &mut st,
                                    &mut self.last_trace,
                                    &mut self.last_events,
                                ));
                            }
                        } else if pend.attempt < st.ft.max_retries {
                            // Bounded in-place retry with exponential
                            // backoff; the fault plan sees a fresh
                            // per-unit attempt index.
                            let retry_attempt = pend.attempt + 1;
                            let backoff = st.ft.backoff_for(retry_attempt);
                            st.events.record(
                                st.clock,
                                Some(pu.0),
                                EventKind::TaskRetry {
                                    task: pend.task.0,
                                    items: pend.items,
                                    attempt: retry_attempt,
                                    backoff_s: backoff,
                                },
                            );
                            let fault_attempt = st.attempts[pu.0];
                            st.attempts[pu.0] += 1;
                            let dev = st.cluster.device_mut(pu);
                            let xfer = dev.transfer_time(st.cost, pend.items);
                            let mut proc = dev.proc_time(st.cost, pend.items);
                            let doomed = match st.faults.action(pu.0, fault_attempt) {
                                Some(FaultAction::Panic) => true,
                                Some(FaultAction::Delay(s)) => {
                                    proc += s;
                                    false
                                }
                                None => false,
                            };
                            let start = st.clock + backoff;
                            st.inflight[pu.0] = Some(Pending {
                                task: pend.task,
                                items: pend.items,
                                start,
                                xfer,
                                proc,
                                attempt: retry_attempt,
                                doomed,
                            });
                            st.push_event(
                                start + xfer + proc,
                                EventPayload::Completion {
                                    pu,
                                    task: pend.task,
                                },
                            );
                        } else {
                            // Retries exhausted without hitting the
                            // quarantine bar: the block's items return
                            // to the pool for the other units.
                            st.remaining += pend.items;
                            let failure = TaskFailure {
                                task_id: pend.task,
                                pu,
                                items: pend.items,
                                attempt: pend.attempt,
                                at: st.clock,
                                reason: FailureReason::Panicked,
                            };
                            policy.on_task_failed(&mut st, &failure);
                        }
                        continue;
                    }
                    st.consec_failures[pu.0] = 0;
                    st.trace
                        .record_task(pu, pend.task, pend.items, pend.start, pend.xfer, pend.proc);
                    st.events.record(
                        st.clock,
                        Some(pu.0),
                        EventKind::TaskFinish {
                            task: pend.task.0,
                            items: pend.items,
                            xfer_s: pend.xfer,
                            proc_s: pend.proc,
                        },
                    );
                    let info = TaskInfo {
                        task_id: pend.task,
                        pu,
                        items: pend.items,
                        xfer_time: pend.xfer,
                        proc_time: pend.proc,
                        start: pend.start,
                        finish: st.clock,
                    };
                    policy.on_task_finished(&mut st, &info);
                }
                EventPayload::Perturb(idx) => {
                    match self.perturbations[idx].kind {
                        PerturbationKind::SetSlowdown(pu, f) => {
                            st.cluster.device_mut(pu).set_slowdown(f);
                            st.events.record(
                                st.clock,
                                Some(pu.0),
                                EventKind::SlowdownSet { factor: f },
                            );
                            // In-flight tasks keep their original times:
                            // the slowdown applies from the next kernel,
                            // like a contended cloud node would behave
                            // between scheduling rounds.
                        }
                        PerturbationKind::Fail(pu) => {
                            st.cluster.device_mut(pu).fail();
                            st.handles[pu.0].available = false;
                            if let Some(pend) = st.inflight[pu.0].take() {
                                // The lost task's items return to the pool.
                                st.remaining += pend.items;
                                st.events.record(
                                    st.clock,
                                    Some(pu.0),
                                    EventKind::TaskFailed {
                                        task: pend.task.0,
                                        items: pend.items,
                                        attempt: pend.attempt,
                                        reason: FailureReason::WorkerLost.name().to_string(),
                                    },
                                );
                            }
                            st.events
                                .record(st.clock, Some(pu.0), EventKind::DeviceFailed);
                            policy.on_device_lost(&mut st, pu);
                            if st.remaining > 0
                                && !st.handles.iter().any(|h| h.available)
                                && !Self::restore_pending(&st, &self.perturbations)
                            {
                                // The last unit just died with no restore
                                // scheduled: report the stall immediately
                                // with the partial event stream attached.
                                return Err(Self::stall(
                                    &mut st,
                                    &mut self.last_trace,
                                    &mut self.last_events,
                                ));
                            }
                        }
                        PerturbationKind::Restore(pu) => {
                            st.cluster.device_mut(pu).restore();
                            st.handles[pu.0].available = true;
                            st.consec_failures[pu.0] = 0;
                            st.events
                                .record(st.clock, Some(pu.0), EventKind::DeviceRestored);
                            policy.on_device_restored(&mut st, pu);
                        }
                    }
                }
            }
        }

        st.events.record(
            st.clock,
            None,
            EventKind::RunEnd {
                makespan_s: st.trace.makespan(),
                total_items,
            },
        );
        let names: Vec<String> = st.handles.iter().map(|h| h.name.clone()).collect();
        let mut report = RunReport::from_trace(
            policy.name(),
            &st.trace,
            &names,
            policy.block_distribution(),
        );
        for (i, pu) in report.pus.iter_mut().enumerate() {
            pu.bytes_in = st.registry.bytes_into(MemNode::of_pu(i));
        }
        report.events = st.events.counters();
        report.rebalances = report.events.rebalances as usize;
        self.last_trace = Some(st.trace);
        self.last_events = Some(st.events);
        Ok(report)
    }

    /// The full trace of the most recent successful `run` (for Gantt
    /// rendering and idle-time analysis).
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// The structured event stream of the most recent `run` — also
    /// populated on a stalled run, so post-mortems can see what the
    /// policy last did. See [`crate::events`].
    pub fn last_events(&self) -> Option<&EventSink> {
        self.last_events.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedBlockPolicy;
    use plb_hetsim::cluster::ClusterOptions;
    use plb_hetsim::workload::LinearCost;
    use plb_hetsim::{cluster_scenario, Scenario};

    fn make_cluster(s: Scenario) -> ClusterSim {
        ClusterSim::build(
            &cluster_scenario(s, false),
            &ClusterOptions {
                noise_sigma: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn fixed_policy_processes_everything() {
        let mut cluster = make_cluster(Scenario::Two);
        let cost = LinearCost::generic();
        let mut policy = FixedBlockPolicy { block: 1000 };
        let report = SimEngine::new(&mut cluster, &cost)
            .run(&mut policy, 100_000)
            .unwrap();
        assert_eq!(report.total_items, 100_000);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn zero_items_finishes_immediately() {
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let mut policy = FixedBlockPolicy { block: 10 };
        let report = SimEngine::new(&mut cluster, &cost)
            .run(&mut policy, 0)
            .unwrap();
        assert_eq!(report.total_items, 0);
        assert_eq!(report.makespan, 0.0);
    }

    #[test]
    fn stalled_policy_detected() {
        struct LazyPolicy;
        impl Policy for LazyPolicy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn on_start(&mut self, _ctx: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
        }
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let err = SimEngine::new(&mut cluster, &cost)
            .run(&mut LazyPolicy, 100)
            .unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 100, .. }));
    }

    #[test]
    fn failure_recredit_items_and_completes() {
        let mut cluster = make_cluster(Scenario::Two);
        let cost = LinearCost::generic();
        let mut policy = FixedBlockPolicy { block: 5_000 };
        let report = SimEngine::new(&mut cluster, &cost)
            .with_perturbations(vec![Perturbation {
                at: 1e-5,
                kind: PerturbationKind::Fail(PuId(0)),
            }])
            .run(&mut policy, 200_000)
            .unwrap();
        // All items still processed by the surviving units.
        assert_eq!(report.total_items, 200_000);
        // The failed unit processed nothing (its first task was lost
        // before completion).
        assert_eq!(report.pus[0].items, 0);
    }

    #[test]
    fn slowdown_perturbation_changes_future_tasks() {
        let cost = LinearCost::generic();
        let mut c1 = make_cluster(Scenario::One);
        let base = SimEngine::new(&mut c1, &cost)
            .run(&mut FixedBlockPolicy { block: 10_000 }, 500_000)
            .unwrap();
        let mut c2 = make_cluster(Scenario::One);
        let slowed = SimEngine::new(&mut c2, &cost)
            .with_perturbations(vec![Perturbation {
                at: 0.0,
                kind: PerturbationKind::SetSlowdown(PuId(1), 10.0),
            }])
            .run(&mut FixedBlockPolicy { block: 10_000 }, 500_000)
            .unwrap();
        assert!(slowed.makespan > base.makespan);
    }

    #[test]
    fn all_failed_units_is_no_units() {
        let mut cluster = make_cluster(Scenario::One);
        for id in cluster.ids().collect::<Vec<_>>() {
            cluster.device_mut(id).fail();
        }
        let cost = LinearCost::generic();
        let err = SimEngine::new(&mut cluster, &cost)
            .run(&mut FixedBlockPolicy { block: 10 }, 100)
            .unwrap_err();
        assert_eq!(err, RunError::NoUnits);
    }

    #[test]
    fn assign_clamps_to_remaining() {
        struct GreedyOnce;
        impl Policy for GreedyOnce {
            fn name(&self) -> &str {
                "once"
            }
            fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
                let got = ctx.assign(PuId(0), u64::MAX);
                assert_eq!(got, ctx.total_items());
                // Second assign on a busy unit returns 0.
                assert_eq!(ctx.assign(PuId(0), 10), 0);
            }
            fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
        }
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let report = SimEngine::new(&mut cluster, &cost)
            .run(&mut GreedyOnce, 777)
            .unwrap();
        assert_eq!(report.total_items, 777);
        assert_eq!(report.tasks, 1);
    }

    #[test]
    fn run_records_event_stream() {
        let mut cluster = make_cluster(Scenario::Two);
        let cost = LinearCost::generic();
        let mut engine = SimEngine::new(&mut cluster, &cost).with_perturbations(vec![
            Perturbation {
                at: 1e-4,
                kind: PerturbationKind::SetSlowdown(PuId(1), 2.0),
            },
            Perturbation {
                at: 2e-4,
                kind: PerturbationKind::Fail(PuId(0)),
            },
        ]);
        let report = engine
            .run(&mut FixedBlockPolicy { block: 5_000 }, 100_000)
            .unwrap();
        let sink = engine.last_events().expect("events recorded");
        let events = sink.events();
        assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::RunEnd { .. }
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SlowdownSet { .. })));
        assert!(events.iter().any(|e| e.kind == EventKind::DeviceFailed));
        // Counters on the report agree with the stream.
        assert_eq!(report.events.tasks_finished, report.tasks as u64);
        assert_eq!(report.events.perturbations, 2);
        assert_eq!(report.events.device_failures, 1);
        // Per-PU timestamps are monotone after clamping.
        let mut last: std::collections::HashMap<usize, f64> = Default::default();
        for e in &events {
            if let Some(p) = e.pu {
                let prev = last.entry(p).or_insert(f64::NEG_INFINITY);
                assert!(e.t >= *prev, "event time regressed on pu {p}");
                *prev = e.t;
            }
        }
    }

    #[test]
    fn stalled_run_preserves_events() {
        struct LazyPolicy;
        impl Policy for LazyPolicy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn on_start(&mut self, _ctx: &mut dyn SchedulerCtx) {}
            fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
        }
        let mut cluster = make_cluster(Scenario::One);
        let cost = LinearCost::generic();
        let mut engine = SimEngine::new(&mut cluster, &cost);
        let err = engine.run(&mut LazyPolicy, 42).unwrap_err();
        assert!(matches!(err, RunError::Stalled { remaining: 42, .. }));
        let events = engine.last_events().expect("post-mortem events").events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Stalled { remaining: 42 })));
    }

    #[test]
    fn deterministic_across_runs() {
        let cost = LinearCost::generic();
        let run = || {
            let mut cluster = ClusterSim::build(
                &cluster_scenario(Scenario::Three, false),
                &ClusterOptions {
                    noise_sigma: 0.05,
                    seed: 9,
                    ..Default::default()
                },
            );
            SimEngine::new(&mut cluster, &cost)
                .run(&mut FixedBlockPolicy { block: 3_000 }, 300_000)
                .unwrap()
                .makespan
        };
        assert_eq!(run(), run());
    }
}
