//! Execution traces: Gantt segments and per-unit time accounting.
//!
//! The paper's Fig. 3 is a Gantt chart of tasks with a rebalancing
//! synchronization, and Fig. 7 reports per-unit idle-time percentages.
//! Both are computed from the segment stream recorded here.

use crate::task::TaskId;
use plb_hetsim::PuId;
use serde::{Deserialize, Serialize};

/// What a unit was doing during a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Moving input/result data.
    Transfer,
    /// Executing the kernel.
    Compute,
}

/// One busy interval of one unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The unit.
    pub pu: usize,
    /// The task occupying it.
    pub task: u64,
    /// Transfer or compute.
    pub kind: SegmentKind,
    /// Interval start, seconds.
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// Items in the task's block.
    pub items: u64,
}

impl Segment {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The recorded trace of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    segments: Vec<Segment>,
    n_pus: usize,
}

impl Trace {
    /// Create a trace for `n_pus` units.
    pub fn new(n_pus: usize) -> Trace {
        Trace {
            segments: Vec::new(),
            n_pus,
        }
    }

    /// Rebuild a trace from previously exported segments (e.g. a parsed
    /// JSONL trace — see [`crate::events::TraceData`]).
    pub fn from_segments(n_pus: usize, segments: Vec<Segment>) -> Trace {
        let max_pu = segments.iter().map(|s| s.pu + 1).max().unwrap_or(0);
        Trace {
            segments,
            n_pus: n_pus.max(max_pu),
        }
    }

    /// Record the two segments (transfer then compute) of a completed
    /// task.
    pub fn record_task(
        &mut self,
        pu: PuId,
        task: TaskId,
        items: u64,
        start: f64,
        xfer_time: f64,
        proc_time: f64,
    ) {
        debug_assert!(xfer_time >= 0.0 && proc_time >= 0.0);
        if xfer_time > 0.0 {
            self.segments.push(Segment {
                pu: pu.0,
                task: task.0,
                kind: SegmentKind::Transfer,
                start,
                end: start + xfer_time,
                items,
            });
        }
        self.segments.push(Segment {
            pu: pu.0,
            task: task.0,
            kind: SegmentKind::Compute,
            start: start + xfer_time,
            end: start + xfer_time + proc_time,
            items,
        });
    }

    /// All segments in recording order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of units the trace covers.
    pub fn n_pus(&self) -> usize {
        self.n_pus
    }

    /// Makespan: latest segment end (0 for an empty trace).
    pub fn makespan(&self) -> f64 {
        self.segments.iter().fold(0.0f64, |m, s| m.max(s.end))
    }

    /// Total busy time of one unit.
    pub fn busy_time(&self, pu: PuId) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.pu == pu.0)
            .map(Segment::duration)
            .sum()
    }

    /// Idle fraction of one unit over the whole run: the quantity of
    /// Fig. 7. Returns 0 for an empty trace.
    pub fn idle_fraction(&self, pu: PuId) -> f64 {
        let ms = self.makespan();
        if ms <= 0.0 {
            return 0.0;
        }
        ((ms - self.busy_time(pu)) / ms).max(0.0)
    }

    /// Items processed per unit (indexed by unit id). Transfer segments
    /// are not double-counted: only compute segments contribute.
    pub fn items_per_pu(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.n_pus];
        for s in &self.segments {
            if s.kind == SegmentKind::Compute {
                v[s.pu] += s.items;
            }
        }
        v
    }

    /// Export the trace in Chrome trace-event format (the JSON array
    /// flavour): open in `chrome://tracing` or [Perfetto] for an
    /// interactive timeline. Each unit is a "thread"; transfer and
    /// compute segments become complete ("X") events with microsecond
    /// timestamps.
    ///
    /// [Perfetto]: https://ui.perfetto.dev
    // Serializing a Vec of serde_json::Value cannot fail; the expect is
    // unreachable rather than an error path (audited in
    // crates/xtask/allowlists/panic-freedom.txt).
    pub fn to_chrome_trace(&self, names: &[String]) -> String {
        let mut events = Vec::with_capacity(self.segments.len() + self.n_pus);
        for (i, name) in names.iter().enumerate().take(self.n_pus) {
            events.push(serde_json::json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": i,
                "args": {"name": name},
            }));
        }
        for s in &self.segments {
            let kind = match s.kind {
                SegmentKind::Compute => "compute",
                SegmentKind::Transfer => "transfer",
            };
            events.push(serde_json::json!({
                "name": format!("{kind} T{} ({} items)", s.task, s.items),
                "cat": kind,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": (s.end - s.start) * 1e6,
                "pid": 1,
                "tid": s.pu,
            }));
        }
        serde_json::to_string_pretty(&events).expect("trace events serialize")
    }

    /// Render a coarse ASCII Gantt chart (for examples and the Fig. 3
    /// reproduction): one row per unit, `width` columns spanning the
    /// makespan, `#` = compute, `-` = transfer, `.` = idle.
    pub fn ascii_gantt(&self, names: &[String], width: usize) -> String {
        let ms = self.makespan();
        if ms <= 0.0 || width == 0 {
            return String::new();
        }
        let name_w = names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
        let mut out = String::new();
        for pu in 0..self.n_pus {
            let mut row = vec!['.'; width];
            for s in self.segments.iter().filter(|s| s.pu == pu) {
                let a = ((s.start / ms) * width as f64).floor() as usize;
                let b = (((s.end / ms) * width as f64).ceil() as usize).min(width);
                let ch = match s.kind {
                    SegmentKind::Compute => '#',
                    SegmentKind::Transfer => '-',
                };
                for c in row.iter_mut().take(b).skip(a.min(width)) {
                    // Compute overwrites transfer if they round onto the
                    // same cell; never overwrite compute with transfer.
                    if *c != '#' {
                        *c = ch;
                    }
                }
            }
            let name = names.get(pu).map(String::as_str).unwrap_or("?");
            out.push_str(&format!("{name:<name_w$} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(2);
        t.record_task(PuId(0), TaskId(0), 100, 0.0, 0.5, 1.5); // busy 0..2
        t.record_task(PuId(1), TaskId(1), 50, 0.0, 0.0, 1.0); // busy 0..1
        t.record_task(PuId(1), TaskId(2), 50, 1.0, 0.0, 2.0); // busy 1..3
        t
    }

    #[test]
    fn makespan_is_latest_end() {
        assert_eq!(sample_trace().makespan(), 3.0);
        assert_eq!(Trace::new(1).makespan(), 0.0);
    }

    #[test]
    fn busy_time_sums_segments() {
        let t = sample_trace();
        assert!((t.busy_time(PuId(0)) - 2.0).abs() < 1e-12);
        assert!((t.busy_time(PuId(1)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_fraction_complements_busy() {
        let t = sample_trace();
        assert!((t.idle_fraction(PuId(0)) - 1.0 / 3.0).abs() < 1e-12);
        assert!(t.idle_fraction(PuId(1)).abs() < 1e-12);
    }

    #[test]
    fn items_counted_once_per_task() {
        let t = sample_trace();
        assert_eq!(t.items_per_pu(), vec![100, 100]);
    }

    #[test]
    fn zero_transfer_records_single_segment() {
        let mut t = Trace::new(1);
        t.record_task(PuId(0), TaskId(0), 10, 0.0, 0.0, 1.0);
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.segments()[0].kind, SegmentKind::Compute);
    }

    #[test]
    fn ascii_gantt_shape() {
        let t = sample_trace();
        let names = vec!["cpu".to_string(), "gpu".to_string()];
        let g = t.ascii_gantt(&names, 30);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('-')); // the transfer prefix
        assert!(lines[0].ends_with('|'));
        // PU0 idle in the last third: at least one '.' near the end.
        assert!(lines[0].contains('.'));
    }

    #[test]
    fn empty_gantt_is_empty() {
        assert_eq!(Trace::new(2).ascii_gantt(&[], 10), "");
    }

    #[test]
    fn chrome_trace_roundtrips_as_json() {
        let t = sample_trace();
        let names = vec!["cpu".to_string(), "gpu".to_string()];
        let json = t.to_chrome_trace(&names);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // 2 thread-name metadata events + 4 segments (one task has a
        // transfer prefix).
        assert_eq!(events.len(), 2 + t.segments().len());
        let xs: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(xs.len(), t.segments().len());
        for e in xs {
            assert!(e["ts"].as_f64().unwrap() >= 0.0);
            assert!(e["dur"].as_f64().unwrap() > 0.0);
        }
    }
}
