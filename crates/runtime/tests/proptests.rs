//! Property-based tests for the runtime: work conservation and trace
//! invariants under arbitrary workload shapes and block sizes.

use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::workload::LinearCost;
use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_runtime::{Policy, SchedulerCtx, SimEngine, TaskInfo};
use proptest::prelude::*;

// FixedBlockPolicy lives behind the policy module; re-exported for tests.
use plb_runtime::policy::FixedBlockPolicy as Fixed;
use plb_runtime::{DisjointError, DisjointOutput, WorkPool};

fn cost() -> LinearCost {
    LinearCost {
        label: "prop".into(),
        flops_per_item: 5e4,
        in_bytes_per_item: 32.0,
        out_bytes_per_item: 8.0,
        threads_per_item: 16.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn work_is_conserved_for_any_block_size(
        total in 1u64..300_000,
        block in 1u64..50_000,
        seed in 0u64..100,
    ) {
        let machines = cluster_scenario(Scenario::Two, false);
        let opts = ClusterOptions { seed, noise_sigma: 0.03, ..Default::default() };
        let mut cluster = ClusterSim::build(&machines, &opts);
        let c = cost();
        let mut policy = Fixed { block };
        let report = SimEngine::new(&mut cluster, &c).run(&mut policy, total).unwrap();
        prop_assert_eq!(report.total_items, total);
        let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
        prop_assert_eq!(per_pu, total);
    }

    #[test]
    fn trace_segments_never_overlap_per_unit(
        total in 1000u64..100_000,
        block in 100u64..20_000,
    ) {
        let machines = cluster_scenario(Scenario::One, false);
        let opts = ClusterOptions { seed: 7, noise_sigma: 0.02, ..Default::default() };
        let mut cluster = ClusterSim::build(&machines, &opts);
        let c = cost();
        let mut policy = Fixed { block };
        let mut engine = SimEngine::new(&mut cluster, &c);
        let report = engine.run(&mut policy, total).unwrap();
        let trace = engine.last_trace().unwrap();

        for pu in 0..trace.n_pus() {
            let mut segs: Vec<(f64, f64)> = trace
                .segments()
                .iter()
                .filter(|s| s.pu == pu)
                .map(|s| (s.start, s.end))
                .collect();
            segs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in segs.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0 + 1e-12,
                    "unit {pu}: segment [{:.6},{:.6}] overlaps [{:.6},{:.6}]",
                    w[0].0, w[0].1, w[1].0, w[1].1
                );
            }
        }
        // Makespan is the latest segment end.
        let max_end = trace.segments().iter().fold(0.0f64, |m, s| m.max(s.end));
        prop_assert_eq!(report.makespan.to_bits(), max_end.to_bits());
    }

    #[test]
    fn idle_fractions_are_valid_probabilities(
        total in 1000u64..50_000,
        block in 50u64..5_000,
        seed in 0u64..50,
    ) {
        let machines = cluster_scenario(Scenario::Three, false);
        let opts = ClusterOptions { seed, noise_sigma: 0.05, ..Default::default() };
        let mut cluster = ClusterSim::build(&machines, &opts);
        let c = cost();
        let mut policy = Fixed { block };
        let report = SimEngine::new(&mut cluster, &c).run(&mut policy, total).unwrap();
        for pu in &report.pus {
            prop_assert!((0.0..=1.0).contains(&pu.idle_fraction), "{}", pu.idle_fraction);
            prop_assert!(pu.busy_s <= report.makespan * (1.0 + 1e-9));
        }
    }

    #[test]
    fn overhead_charges_delay_but_never_lose_work(
        total in 1000u64..50_000,
        overhead_s in 0.0f64..2.0,
    ) {
        /// Charges a fixed overhead at start, then behaves greedily.
        struct Charging {
            inner: Fixed,
            overhead: f64,
        }
        impl Policy for Charging {
            fn name(&self) -> &str {
                "charging"
            }
            fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
                ctx.charge_overhead(self.overhead);
                self.inner.on_start(ctx);
            }
            fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, d: &TaskInfo) {
                self.inner.on_task_finished(ctx, d);
            }
        }
        let machines = cluster_scenario(Scenario::One, false);
        let opts = ClusterOptions { seed: 2, noise_sigma: 0.0, ..Default::default() };
        let c = cost();

        let mut cl = ClusterSim::build(&machines, &opts);
        let base = SimEngine::new(&mut cl, &c)
            .run(&mut Charging { inner: Fixed { block: 1000 }, overhead: 0.0 }, total)
            .unwrap();
        let mut cl = ClusterSim::build(&machines, &opts);
        let delayed = SimEngine::new(&mut cl, &c)
            .run(&mut Charging { inner: Fixed { block: 1000 }, overhead: overhead_s }, total)
            .unwrap();
        prop_assert_eq!(delayed.total_items, total);
        prop_assert!(delayed.makespan >= base.makespan - 1e-12);
        prop_assert!(
            (delayed.makespan - base.makespan - overhead_s).abs() < 1e-6 + 0.1 * overhead_s,
            "expected ~{overhead_s}s delay, got {}",
            delayed.makespan - base.makespan
        );
    }
}

// Properties of the safe disjoint-output abstraction the app kernels
// write through (see `docs/SOUNDNESS.md`).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A second claim is accepted exactly when it does not overlap a
    /// live one, and a dropped claim is always reclaimable.
    #[test]
    fn disjoint_output_rejects_exactly_the_overlapping_claims(
        len in 16usize..256,
        s1 in 0usize..255,
        l1 in 1usize..64,
        s2 in 0usize..255,
        l2 in 1usize..64,
    ) {
        prop_assume!(s1 < len && s2 < len);
        let e1 = (s1 + l1).min(len);
        let e2 = (s2 + l2).min(len);
        let out = DisjointOutput::new(0u32, len);
        let w1 = out.try_writer(s1..e1);
        prop_assert!(w1.is_ok(), "first claim on a fresh output must succeed");
        let overlaps = s2 < e1 && s1 < e2;
        match out.try_writer(s2..e2) {
            Ok(_) => prop_assert!(!overlaps, "overlapping claim was admitted"),
            Err(DisjointError::Overlap { .. }) => {
                prop_assert!(overlaps, "disjoint claim was rejected")
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
        drop(w1);
        prop_assert!(
            out.try_writer(s1..e1).is_ok(),
            "a dropped claim must be released"
        );
    }

    /// Writing the blocks in an arbitrary order through disjoint
    /// writers produces bit-identical contents to a sequential fill.
    #[test]
    fn permuted_disjoint_writes_match_sequential_fill(
        blocks in 1usize..24,
        width in 1usize..16,
        perm_seed in 0u64..1_000,
    ) {
        let len = blocks * width;
        let expect: Vec<u64> = (0..len as u64).map(|i| i * 31 + 7).collect();

        // Deterministic Fisher-Yates permutation of the block order.
        let mut order: Vec<usize> = (0..blocks).collect();
        let mut state = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }

        let out = DisjointOutput::new(0u64, len);
        for &blk in &order {
            let lo = blk * width;
            let mut w = out.writer(lo..lo + width);
            for (k, slot) in w.iter_mut().enumerate() {
                *slot = (lo + k) as u64 * 31 + 7;
            }
        }
        prop_assert_eq!(out.into_vec(), expect);
    }
}

// Properties of the undistributed-item pool both engines dispatch from:
// the disjoint-cover invariant must survive any interleaving of claims,
// completions, and failure re-credits (the checkpoint/resume layer
// additionally snapshots and rebuilds these covers).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under an arbitrary claim/complete/fail schedule no item is ever
    /// in two live assignments, and the final completed cover is exactly
    /// `0..total` with no gaps and no overlaps.
    #[test]
    fn workpool_cover_is_disjoint_under_arbitrary_interleavings(
        total in 1u64..5_000,
        ops in proptest::collection::vec((0u8..4, 1u64..997), 1..200),
    ) {
        let mut pool = WorkPool::new(total);
        let mut inflight: Vec<(u64, u64)> = Vec::new();
        let mut done: Vec<(u64, u64)> = Vec::new();
        for (op, arg) in ops {
            match op {
                // Claim a block (two arms: claims should dominate the
                // schedule or nothing ever gets in flight).
                0 | 1 => {
                    if let Some((off, got)) = pool.take(arg) {
                        prop_assert!(got >= 1 && got <= arg);
                        for &(o, l) in inflight.iter().chain(done.iter()) {
                            prop_assert!(
                                off + got <= o || o + l <= off,
                                "claim [{off},{}) overlaps live/completed [{o},{})",
                                off + got, o + l
                            );
                        }
                        inflight.push((off, got));
                    }
                }
                // Complete an arbitrary in-flight block.
                2 => {
                    if !inflight.is_empty() {
                        let i = (arg as usize) % inflight.len();
                        done.push(inflight.swap_remove(i));
                    }
                }
                // Fail an arbitrary in-flight block: re-credit.
                _ => {
                    if !inflight.is_empty() {
                        let i = (arg as usize) % inflight.len();
                        let (off, len) = inflight.swap_remove(i);
                        pool.reclaim(off, len);
                    }
                }
            }
        }
        // Drain: everything still in the pool completes, as does
        // everything left in flight.
        while let Some(r) = pool.take(1009) {
            done.push(r);
        }
        done.append(&mut inflight);
        done.sort_unstable();
        let mut expect = 0u64;
        for (off, len) in done {
            prop_assert_eq!(off, expect, "gap or overlap in the final cover");
            expect = off + len;
        }
        prop_assert_eq!(expect, total);
        prop_assert!(pool.try_close());
    }

    /// A resumed pool hands out exactly the complement of the
    /// checkpointed cover: completed ∪ resumed-claims == `0..total`,
    /// disjointly.
    #[test]
    fn workpool_resume_serves_exactly_the_complement(
        total in 1u64..5_000,
        cuts in proptest::collection::vec((0u64..200, 1u64..200), 0..20),
        want in 1u64..997,
    ) {
        let mut completed: Vec<(u64, u64)> = Vec::new();
        let mut cursor = 0u64;
        for (skip, len) in cuts {
            let off = cursor + skip;
            if off + len > total {
                break;
            }
            completed.push((off, len));
            cursor = off + len;
        }
        let mut pool = WorkPool::resume(total, &completed).unwrap();
        let mut cover = completed.clone();
        while let Some(r) = pool.take(want) {
            cover.push(r);
        }
        cover.sort_unstable();
        let mut expect = 0u64;
        for (off, len) in cover {
            prop_assert_eq!(off, expect, "gap or overlap after resume");
            expect = off + len;
        }
        prop_assert_eq!(expect, total);
        prop_assert!(pool.try_close());
    }
}
