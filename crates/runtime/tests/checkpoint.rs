//! Integration tests for run-level durability on the simulator engine:
//! periodic snapshots, the resume path, and its rejection rules.
//!
//! Note on accounting: a resumed run's [`RunReport`] covers only the
//! items processed *in that process* (its trace starts at the resume),
//! while the checkpoint's `completed` cover and `tasks_done` are
//! lifetime totals across resumes. The assertions below are explicit
//! about which side of that line they sit on.

use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::workload::LinearCost;
use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_runtime::checkpoint::{load, save};
use plb_runtime::policy::FixedBlockPolicy;
use plb_runtime::{
    Checkpoint, CheckpointConfig, EventCounters, PuState, RunError, SimEngine, WorkloadId,
    CHECKPOINT_FORMAT_VERSION,
};
use std::path::PathBuf;

fn cost() -> LinearCost {
    LinearCost {
        label: "ckpt-it".into(),
        flops_per_item: 5e4,
        in_bytes_per_item: 32.0,
        out_bytes_per_item: 8.0,
        threads_per_item: 16.0,
    }
}

fn cluster() -> ClusterSim {
    let machines = cluster_scenario(Scenario::One, false); // 2 units
    let opts = ClusterOptions {
        seed: 11,
        noise_sigma: 0.02,
        ..Default::default()
    };
    ClusterSim::build(&machines, &opts)
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("plb-ckpt-it-{}-{name}", std::process::id()));
    p
}

/// A healthy unit record for hand-built snapshots.
fn healthy(name: &str) -> PuState {
    PuState {
        name: name.into(),
        dispatches: 0,
        consecutive_failures: 0,
        rate_ewma: None,
        quarantined: false,
        lost: false,
    }
}

/// A mid-run-style snapshot: 500 of 1000 items done in two ranges,
/// five snapshots already written, some carried event counts.
fn midrun_snapshot(total: u64) -> Checkpoint {
    let mut counters = EventCounters::default();
    counters.checkpoints = 5;
    counters.tasks_finished = 4;
    Checkpoint {
        version: CHECKPOINT_FORMAT_VERSION,
        workload: WorkloadId {
            policy: "fixed-block".into(),
            total_items: total,
            n_pus: 2,
            total_cost: total,
            nodes: Vec::new(),
        },
        seq: 4,
        at: 0.75,
        tasks_done: 4,
        next_task: 6,
        completed: vec![(0, 200), (500, 300)],
        units: vec![healthy("cpu"), healthy("gpu")],
        counters,
        policy_state: None,
    }
}

/// A checkpointed run leaves one final, loadable snapshot whose cover
/// is the entire workload, and counts its own snapshot writes.
#[test]
fn checkpointed_run_writes_a_complete_final_snapshot() {
    let path = tmp_file("final");
    let total = 20_000u64;
    let mut cl = cluster();
    let c = cost();
    let mut policy = FixedBlockPolicy { block: 1024 };
    let report = SimEngine::new(&mut cl, &c)
        .with_checkpoint(CheckpointConfig::new(&path).with_interval(1))
        .run(&mut policy, total)
        .unwrap();
    assert_eq!(report.total_items, total);
    assert!(report.events.checkpoints >= 1, "no snapshots recorded");
    assert_eq!(report.events.resumes, 0);

    let ckpt = load(&path).unwrap();
    assert_eq!(
        ckpt.completed,
        vec![(0, total)],
        "final cover must be total"
    );
    assert_eq!(ckpt.completed_items(), total);
    assert_eq!(ckpt.tasks_done, report.tasks as u64);
    assert_eq!(ckpt.workload.policy, "fixed-block");
    assert_eq!(ckpt.workload.total_items, total);
    assert_eq!(ckpt.workload.n_pus, 2);
    // Every snapshot before the final one logged a checkpoint_written
    // event, and the final one is stamped with the next sequence number.
    assert_eq!(ckpt.counters.checkpoints, ckpt.seq);
    assert_eq!(report.events.checkpoints, ckpt.seq + 1);
    std::fs::remove_file(&path).unwrap();
}

/// Resuming a mid-run snapshot processes exactly the complement of the
/// checkpointed cover, carries lifetime counters forward, and its own
/// final snapshot covers the full workload.
#[test]
fn resume_processes_the_complement_and_completes_the_cover() {
    let src = tmp_file("resume-src");
    let dst = tmp_file("resume-dst");
    let total = 1_000u64;
    let ckpt = midrun_snapshot(total);
    let carried_tasks = ckpt.tasks_done;
    let remaining = total - ckpt.completed_items();
    save(&src, &ckpt).unwrap();

    let mut cl = cluster();
    let c = cost();
    let mut policy = FixedBlockPolicy { block: 128 };
    let report = SimEngine::new(&mut cl, &c)
        .with_checkpoint(CheckpointConfig::new(&dst).with_interval(1))
        .resume_from(load(&src).unwrap())
        .run(&mut policy, total)
        .unwrap();

    // In-process accounting: only the uncovered items ran here.
    assert_eq!(report.total_items, remaining);
    let per_pu: u64 = report.pus.iter().map(|p| p.items).sum();
    assert_eq!(per_pu, remaining);
    assert_eq!(report.events.resumes, 1);
    // Carried counters folded into the lifetime totals.
    assert!(report.events.checkpoints > 5, "carried checkpoints lost");
    assert!(report.events.tasks_finished > 4, "carried tasks lost");

    // Lifetime accounting: the resumed run's own final snapshot.
    let fin = load(&dst).unwrap();
    assert_eq!(fin.completed, vec![(0, total)]);
    assert!(
        fin.seq >= ckpt.seq + 1,
        "sequence must continue, not restart"
    );
    assert!(fin.tasks_done > carried_tasks);
    assert_eq!(fin.counters.resumes, 1);

    std::fs::remove_file(&src).unwrap();
    std::fs::remove_file(&dst).unwrap();
}

/// A snapshot from a different workload (policy name here) is rejected
/// with a typed error before any work is dispatched.
#[test]
fn resume_rejects_a_mismatched_workload() {
    let total = 1_000u64;
    let mut ckpt = midrun_snapshot(total);
    ckpt.workload.policy = "plb-hec".into();

    let mut cl = cluster();
    let c = cost();
    let mut policy = FixedBlockPolicy { block: 128 };
    let err = SimEngine::new(&mut cl, &c)
        .resume_from(ckpt)
        .run(&mut policy, total)
        .unwrap_err();
    match err {
        RunError::Checkpoint { detail } => {
            assert!(detail.contains("different workload"), "{detail}");
        }
        other => panic!("expected RunError::Checkpoint, got {other}"),
    }

    // Wrong item count is equally fatal.
    let mut cl = cluster();
    let err = SimEngine::new(&mut cl, &c)
        .resume_from(midrun_snapshot(total))
        .run(&mut policy, total + 1)
        .unwrap_err();
    assert!(matches!(err, RunError::Checkpoint { .. }), "{err}");
}

/// A unit recorded as lost stays written off after the resume: the
/// survivors finish the complement without it.
#[test]
fn resume_keeps_lost_units_out_of_the_run() {
    let total = 2_000u64;
    let mut ckpt = midrun_snapshot(total);
    ckpt.completed = vec![(0, 100)];
    ckpt.units[1].lost = true;

    let mut cl = cluster();
    let c = cost();
    let mut policy = FixedBlockPolicy { block: 256 };
    let report = SimEngine::new(&mut cl, &c)
        .resume_from(ckpt)
        .run(&mut policy, total)
        .unwrap();
    assert_eq!(report.total_items, total - 100);
    assert_eq!(report.pus[1].items, 0, "lost unit must not receive work");
    assert_eq!(report.pus[0].items, total - 100);
    assert_eq!(report.events.resumes, 1);
}
