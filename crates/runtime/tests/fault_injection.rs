//! Fault-injection suite: deterministic chaos for both engines.
//!
//! Exercises the failure semantics documented in
//! `docs/FAULT_TOLERANCE.md`: panic isolation, in-place retry with
//! backoff, quarantine with redistribution, the host watchdog's
//! deadline path, probation restores, and the accounting invariants
//! (`RunReport` counters, trace coverage) that must survive all of it.

use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::workload::LinearCost;
use plb_hetsim::{cluster_scenario, ClusterSim, PuId, PuKind, Scenario};
use plb_runtime::{
    Codelet, EventKind, Fault, FaultKind, FaultPlan, FaultToleranceConfig, FixedBlockPolicy,
    FnCodelet, HostEngine, HostPu, Policy, RunError, SchedulerCtx, SimEngine, TaskFailure,
    TaskInfo,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn quiet_cluster(s: Scenario) -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(s, false),
        &ClusterOptions {
            noise_sigma: 0.0,
            ..Default::default()
        },
    )
}

fn panic_on(pu: usize, nth: u64) -> FaultPlan {
    FaultPlan::new(vec![Fault {
        pu,
        kind: FaultKind::PanicOnAttempt { nth },
    }])
}

fn flaky(pu: usize, attempts: u64) -> FaultPlan {
    FaultPlan::new(vec![Fault {
        pu,
        kind: FaultKind::FlakyUntil { attempts },
    }])
}

/// A fixed-block policy that also re-dispatches re-credited items: on
/// every callback it tops up each idle available unit. This is the
/// minimal "fault-aware" policy shape the engines are designed around.
struct RedispatchPolicy {
    block: u64,
}

impl RedispatchPolicy {
    fn pump(&self, ctx: &mut dyn SchedulerCtx) {
        let ids: Vec<PuId> = ctx
            .pus()
            .iter()
            .filter(|p| p.available)
            .map(|p| p.id)
            .collect();
        for id in ids {
            if ctx.remaining_items() == 0 {
                break;
            }
            if !ctx.is_busy(id) {
                ctx.assign(id, self.block);
            }
        }
    }
}

impl Policy for RedispatchPolicy {
    fn name(&self) -> &str {
        "redispatch"
    }
    fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
        self.pump(ctx);
    }
    fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, _done: &TaskInfo) {
        self.pump(ctx);
    }
    fn on_device_lost(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_device_restored(&mut self, ctx: &mut dyn SchedulerCtx, _pu: PuId) {
        self.pump(ctx);
    }
    fn on_task_failed(&mut self, ctx: &mut dyn SchedulerCtx, _failure: &TaskFailure) {
        self.pump(ctx);
    }
}

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

#[test]
fn sim_panic_is_retried_then_succeeds() {
    let mut cluster = quiet_cluster(Scenario::Two);
    let cost = LinearCost::generic();
    let report = SimEngine::new(&mut cluster, &cost)
        .with_faults(panic_on(0, 0))
        .run(&mut FixedBlockPolicy { block: 5_000 }, 100_000)
        .expect("one panic must not sink the run");
    assert_eq!(report.total_items, 100_000);
    assert_eq!(report.events.task_failures, 1);
    assert_eq!(report.events.task_retries, 1);
    assert_eq!(report.events.quarantines, 0);
    // The unit survived its one bad attempt and kept working.
    assert!(report.pus[0].items > 0);
}

#[test]
fn sim_retry_event_carries_backoff() {
    let mut cluster = quiet_cluster(Scenario::Two);
    let cost = LinearCost::generic();
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(panic_on(1, 0));
    engine
        .run(&mut FixedBlockPolicy { block: 5_000 }, 100_000)
        .expect("run completes");
    let events = engine.last_events().expect("events recorded").events();
    let retry = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::TaskRetry {
                attempt, backoff_s, ..
            } => Some((attempt, backoff_s)),
            _ => None,
        })
        .expect("a retry event must be recorded");
    assert_eq!(retry.0, 1, "first retry is attempt 1");
    assert!(retry.1 > 0.0, "retry backs off");
    // The failure precedes its retry in the stream.
    let fail_pos = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::TaskFailed { .. }))
        .expect("failure recorded");
    let retry_pos = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::TaskRetry { .. }))
        .expect("retry recorded");
    assert!(fail_pos < retry_pos);
}

#[test]
fn sim_flaky_unit_is_quarantined_and_work_redistributed() {
    let mut cluster = quiet_cluster(Scenario::Two);
    let cost = LinearCost::generic();
    // The unit panics on its first 10 attempts; with the default
    // quarantine threshold of 3 consecutive failures it never gets that
    // far: attempt 0 fails, two in-place retries fail, quarantine.
    let report = SimEngine::new(&mut cluster, &cost)
        .with_faults(flaky(0, 10))
        .run(&mut FixedBlockPolicy { block: 5_000 }, 100_000)
        .expect("survivors absorb the flaky unit's work");
    assert_eq!(report.total_items, 100_000);
    assert_eq!(report.events.task_failures, 3);
    assert_eq!(report.events.task_retries, 2);
    assert_eq!(report.events.quarantines, 1);
    assert_eq!(report.events.device_failures, 1);
    assert_eq!(report.pus[0].items, 0, "quarantined unit completed nothing");
}

#[test]
fn sim_all_units_quarantined_stalls_with_partial_events() {
    let mut cluster = quiet_cluster(Scenario::One);
    let n_pus = cluster.ids().count();
    let cost = LinearCost::generic();
    let plan = FaultPlan::new(
        (0..n_pus)
            .map(|pu| Fault {
                pu,
                kind: FaultKind::FlakyUntil { attempts: u64::MAX },
            })
            .collect(),
    );
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(plan);
    let err = engine
        .run(&mut FixedBlockPolicy { block: 1_000 }, 50_000)
        .expect_err("no unit can make progress");
    assert!(matches!(err, RunError::Stalled { remaining, .. } if remaining > 0));
    // The post-mortem stream shows what happened: every unit was
    // quarantined and the run stalled immediately, not after a replay
    // of the remaining event queue.
    let sink = engine.last_events().expect("post-mortem events");
    let events = sink.events();
    let quarantines = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PuQuarantined { .. }))
        .count();
    assert_eq!(quarantines, n_pus);
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Stalled { .. })));
}

#[test]
fn sim_injected_delay_stretches_makespan() {
    let cost = LinearCost::generic();
    let mut base_cluster = quiet_cluster(Scenario::One);
    let base = SimEngine::new(&mut base_cluster, &cost)
        .run(&mut FixedBlockPolicy { block: 10_000 }, 200_000)
        .expect("baseline run")
        .makespan;
    let mut slow_cluster = quiet_cluster(Scenario::One);
    let slowed = SimEngine::new(&mut slow_cluster, &cost)
        .with_faults(FaultPlan::new(vec![Fault {
            pu: 0,
            kind: FaultKind::Delay {
                from: 0,
                attempts: 5,
                seconds: 0.5,
            },
        }]))
        .run(&mut FixedBlockPolicy { block: 10_000 }, 200_000)
        .expect("delayed run completes");
    assert_eq!(slowed.total_items, 200_000);
    // The first delayed task alone pins the makespan at >= 0.5s.
    assert!(
        slowed.makespan >= 0.5 && slowed.makespan > base,
        "injected delays must show up in the makespan: {base} -> {}",
        slowed.makespan
    );
}

#[test]
fn sim_faulty_runs_are_deterministic() {
    let cost = LinearCost::generic();
    let run = || {
        let mut cluster = ClusterSim::build(
            &cluster_scenario(Scenario::Two, false),
            &ClusterOptions {
                noise_sigma: 0.05,
                seed: 11,
                ..Default::default()
            },
        );
        let report = SimEngine::new(&mut cluster, &cost)
            .with_faults(flaky(1, 10))
            .run(&mut FixedBlockPolicy { block: 3_000 }, 150_000)
            .expect("run completes");
        (
            report.makespan,
            report.events.task_failures,
            report.events.task_retries,
            report.events.quarantines,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn sim_trace_times_stay_monotone_under_faults() {
    let mut cluster = quiet_cluster(Scenario::Two);
    let cost = LinearCost::generic();
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(flaky(0, 10));
    engine
        .run(&mut FixedBlockPolicy { block: 5_000 }, 100_000)
        .expect("run completes");
    let events = engine.last_events().expect("events recorded").events();
    let mut last: std::collections::HashMap<usize, f64> = Default::default();
    for e in &events {
        if let Some(p) = e.pu {
            let prev = last.entry(p).or_insert(f64::NEG_INFINITY);
            assert!(e.t >= *prev, "event time regressed on pu {p}");
            *prev = e.t;
        }
    }
    // Compute segments on one unit never overlap.
    let trace = engine.last_trace().expect("trace recorded");
    let n = trace.n_pus();
    for pu in 0..n {
        let mut segs: Vec<_> = trace.segments().iter().filter(|s| s.pu == pu).collect();
        segs.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in segs.windows(2) {
            assert!(
                w[1].start >= w[0].end - 1e-9,
                "overlapping segments on pu {pu}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Host engine
// ---------------------------------------------------------------------

fn host_pus() -> Vec<HostPu> {
    vec![
        HostPu {
            name: "wide".into(),
            kind: PuKind::Gpu,
            threads: 2,
        },
        HostPu {
            name: "narrow".into(),
            kind: PuKind::Cpu,
            threads: 1,
        },
    ]
}

#[test]
fn host_panic_mid_block_is_retried_and_nothing_is_lost() {
    // Injected panics fire *before* the kernel body, so every item is
    // executed exactly once even under retries — assert the exact
    // disjoint cover.
    use parking_lot::Mutex;
    let ranges = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&ranges);
    let codelet = Arc::new(FnCodelet::new("collect", move |r, _| {
        r2.lock().push(r);
    }));
    let mut engine = HostEngine::new(host_pus()).with_faults(panic_on(1, 0));
    let report = engine
        .run(&mut RedispatchPolicy { block: 100 }, codelet, 1_000)
        .expect("a single panic must not sink the run");
    assert_eq!(report.total_items, 1_000);
    assert!(report.events.task_failures >= 1);
    assert!(report.events.task_retries >= 1);
    assert_eq!(report.events.quarantines, 0);
    let mut got = ranges.lock().clone();
    got.sort_by_key(|r| r.start);
    let mut expect = 0;
    for r in got {
        assert_eq!(r.start, expect, "gap or overlap in executed ranges");
        expect = r.end;
    }
    assert_eq!(expect, 1_000);
}

#[test]
fn host_deadline_blowout_loses_unit_and_survivors_finish() {
    // The narrow unit completes its first block (establishing a rate
    // estimate), then hangs inside the kernel on its second. The
    // watchdog declares it lost at the deadline; its block re-runs on
    // the survivor. The wedged thread is detached, so the run must end
    // long before the injected 30s sleep does.
    let touched = Arc::new(AtomicU64::new(0));
    let t2 = Arc::clone(&touched);
    // Per-item busy work keeps blocks slow enough that the pool cannot
    // drain before the narrow unit receives its second (hanging) block.
    let codelet = Arc::new(FnCodelet::new("spin-count", move |r, _| {
        let mut acc = 0u64;
        for i in r.clone() {
            for k in 0..3_000u64 {
                acc = acc.wrapping_add(i ^ k).rotate_left(5);
            }
        }
        std::hint::black_box(acc);
        t2.fetch_add(r.end - r.start, Ordering::Relaxed);
    }));
    let plan = FaultPlan::new(vec![Fault {
        pu: 1,
        kind: FaultKind::Delay {
            from: 1,
            attempts: 1,
            seconds: 30.0,
        },
    }]);
    let ft = FaultToleranceConfig::default()
        .with_min_deadline(0.2)
        .with_deadline_factor(5.0);
    let t0 = std::time::Instant::now();
    let mut engine = HostEngine::new(host_pus())
        .with_faults(plan)
        .with_fault_tolerance(ft);
    let report = engine
        .run(&mut RedispatchPolicy { block: 100 }, codelet, 1_000)
        .expect("the survivor absorbs the hung unit's block");
    assert!(
        t0.elapsed().as_secs_f64() < 20.0,
        "the watchdog, not the hung kernel, must end the wait"
    );
    assert_eq!(report.total_items, 1_000);
    // At least one deadline failure and the device loss are on record.
    assert!(report.events.task_failures >= 1);
    assert!(report.events.device_failures >= 1);
    let events = engine.last_events().expect("events recorded").events();
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EventKind::TaskFailed { reason, .. } if reason == "deadline"
        )),
        "the blown deadline must be attributed as such"
    );
    // Everything completed at least once (the wedged worker is still
    // asleep at assert time, so no double-execution has happened yet —
    // but >= keeps the assertion honest if scheduling is slow).
    assert!(touched.load(Ordering::Relaxed) >= 1_000);
}

#[test]
fn host_flaky_unit_recovers_after_probation() {
    // A single-unit engine: the unit panics its first three attempts
    // (one dispatch + two retries), is quarantined, sits out the 200ms
    // probation with the engine idling, is restored, and finishes the
    // whole workload healthy.
    let touched = Arc::new(AtomicU64::new(0));
    let t2 = Arc::clone(&touched);
    let codelet = Arc::new(FnCodelet::new("count", move |r, _| {
        t2.fetch_add(r.end - r.start, Ordering::Relaxed);
    }));
    let mut engine = HostEngine::new(vec![HostPu {
        name: "solo".into(),
        kind: PuKind::Cpu,
        threads: 1,
    }])
    .with_faults(flaky(0, 3))
    .with_fault_tolerance(
        FaultToleranceConfig::default()
            .with_backoff_base(0.005)
            .with_probation(0.2),
    );
    let report = engine
        .run(&mut RedispatchPolicy { block: 500 }, codelet, 1_000)
        .expect("the unit must come back from probation and finish");
    assert_eq!(report.total_items, 1_000);
    assert_eq!(touched.load(Ordering::Relaxed), 1_000);
    assert_eq!(report.events.quarantines, 1);
    assert_eq!(report.events.task_failures, 3);
    assert_eq!(report.events.task_retries, 2);
    let events = engine.last_events().expect("events recorded").events();
    let restored = events
        .iter()
        .position(|e| e.kind == EventKind::DeviceRestored)
        .expect("probation must restore the unit");
    let quarantined = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::PuQuarantined { .. }))
        .expect("quarantine recorded");
    assert!(quarantined < restored);
}

#[test]
fn host_last_healthy_unit_completes_everything() {
    let touched = Arc::new(AtomicU64::new(0));
    let t2 = Arc::clone(&touched);
    let codelet = Arc::new(FnCodelet::new("count", move |r, _| {
        t2.fetch_add(r.end - r.start, Ordering::Relaxed);
    }));
    // The wide unit never succeeds; no probation, so its quarantine is
    // permanent and the narrow unit does everything.
    let mut engine = HostEngine::new(host_pus()).with_faults(flaky(0, u64::MAX));
    let report = engine
        .run(&mut RedispatchPolicy { block: 250 }, codelet, 2_000)
        .expect("the last healthy unit carries the run");
    assert_eq!(report.total_items, 2_000);
    assert_eq!(touched.load(Ordering::Relaxed), 2_000);
    assert_eq!(report.events.quarantines, 1);
    assert_eq!(report.pus[0].items, 0, "the flaky unit completed nothing");
    assert_eq!(report.pus[1].items, 2_000);
}

#[test]
fn host_all_units_failed_stalls_with_partial_events() {
    // Both units flaky forever, no probation: once both are
    // quarantined the engine must report the stall immediately instead
    // of hanging, and keep the partial event stream for post-mortems.
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("noop", |_, _| {}));
    let plan = FaultPlan::new(
        (0..2)
            .map(|pu| Fault {
                pu,
                kind: FaultKind::FlakyUntil { attempts: u64::MAX },
            })
            .collect(),
    );
    let mut engine = HostEngine::new(host_pus()).with_faults(plan);
    let err = engine
        .run(&mut RedispatchPolicy { block: 100 }, codelet, 1_000)
        .expect_err("no healthy unit remains");
    assert!(matches!(err, RunError::Stalled { remaining, .. } if remaining > 0));
    let events = engine.last_events().expect("post-mortem events").events();
    assert!(matches!(events[0].kind, EventKind::RunStart { .. }));
    let quarantines = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PuQuarantined { .. }))
        .count();
    assert_eq!(quarantines, 2);
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Stalled { .. })));
}

#[test]
fn host_retry_accounting_matches_between_report_and_stream() {
    let codelet: Arc<dyn Codelet> = Arc::new(FnCodelet::new("noop", |_, _| {}));
    let mut engine = HostEngine::new(host_pus()).with_faults(FaultPlan::new(vec![
        Fault {
            pu: 0,
            kind: FaultKind::PanicOnAttempt { nth: 1 },
        },
        Fault {
            pu: 1,
            kind: FaultKind::PanicOnAttempt { nth: 0 },
        },
    ]));
    let report = engine
        .run(&mut RedispatchPolicy { block: 100 }, codelet, 1_000)
        .expect("isolated panics are retried");
    let events = engine.last_events().expect("events recorded").events();
    let failures = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskFailed { .. }))
        .count() as u64;
    let retries = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskRetry { .. }))
        .count() as u64;
    assert_eq!(report.events.task_failures, failures);
    assert_eq!(report.events.task_retries, retries);
    assert_eq!(failures, 2);
    assert_eq!(retries, 2);
    assert_eq!(report.total_items, 1_000);
}

#[test]
fn sim_report_counters_are_a_retally_of_the_event_stream_under_faults() {
    // The full-width invariant behind the previous test: every counter
    // the report carries — not just failures and retries — must equal a
    // recount over the surviving event stream, even when faults drove
    // retries, a quarantine, and redistribution mid-run.
    let mut cluster = quiet_cluster(Scenario::Two);
    let cost = LinearCost::generic();
    let mut engine = SimEngine::new(&mut cluster, &cost).with_faults(flaky(1, u64::MAX));
    let report = engine
        .run(&mut RedispatchPolicy { block: 5_000 }, 200_000)
        .expect("survivors complete the run");
    let sink = engine.last_events().expect("events recorded");
    let mut recount = plb_runtime::EventCounters::from_events(sink.events().iter());
    recount.dropped = sink.dropped();
    assert_eq!(report.events, recount);
    // The invariant must not hold vacuously: the faults really fired.
    assert!(recount.task_failures >= 1);
    assert_eq!(recount.quarantines, 1);
}
