//! Exhaustive loom models of the host engine's concurrency protocols
//! (`plb_runtime::protocol`).
//!
//! This target only builds under `--cfg loom`, and `loom` itself is not
//! a manifest dependency (the container image and default builds stay
//! loom-free). To run the models:
//!
//! ```sh
//! cargo add loom@0.7 --dev -p plb-runtime
//! RUSTFLAGS="--cfg loom" cargo test -p plb-runtime --release --test loom_models
//! git checkout crates/runtime/Cargo.toml Cargo.lock   # drop the dep again
//! ```
//!
//! The CI `loom` job does exactly this (see `.github/workflows/ci.yml`
//! and `docs/SOUNDNESS.md`). Under `--cfg loom` the runtime's sync shim
//! re-exports loom's modeled primitives, so the `AttemptSlot`,
//! `UnitGate`, and `CompletionLatch` exercised here are built on the
//! same atomics the production engine uses — loom explores every
//! interleaving of the racy protocols PR 2 introduced:
//!
//! * result-arrival vs. watchdog-deadline (`AttemptSlot`),
//! * quarantine / probation-restore vs. permanent loss (`UnitGate`),
//! * failed-block re-credit vs. run completion (`CompletionLatch`).
#![cfg(loom)]

use loom::thread;
use plb_runtime::protocol::{AttemptOutcome, AttemptSlot, CompletionLatch, UnitGate};
use plb_runtime::sync::Arc;

/// Result-arrival vs. watchdog-deadline: a completing worker and the
/// engine's watchdog race for the attempt's claim word; exactly one
/// wins, and the recorded outcome matches the winner.
#[test]
fn attempt_claim_has_exactly_one_winner() {
    loom::model(|| {
        let slot = Arc::new(AttemptSlot::new());
        let s2 = Arc::clone(&slot);
        let worker = thread::spawn(move || s2.try_complete());
        let watchdog_won = slot.try_timeout();
        let worker_won = worker.join().expect("worker thread");
        assert_ne!(worker_won, watchdog_won, "claims must be exclusive");
        let expect = if worker_won {
            AttemptOutcome::Completed
        } else {
            AttemptOutcome::TimedOut
        };
        assert_eq!(slot.outcome(), Some(expect));
    });
}

/// Same race, with the worker reporting a caught kernel panic instead
/// of a completion.
#[test]
fn failed_attempt_claim_has_exactly_one_winner() {
    loom::model(|| {
        let slot = Arc::new(AttemptSlot::new());
        let s2 = Arc::clone(&slot);
        let worker = thread::spawn(move || s2.try_fail());
        let watchdog_won = slot.try_timeout();
        let worker_won = worker.join().expect("worker thread");
        assert_ne!(worker_won, watchdog_won, "claims must be exclusive");
        let expect = if worker_won {
            AttemptOutcome::Failed
        } else {
            AttemptOutcome::TimedOut
        };
        assert_eq!(slot.outcome(), Some(expect));
    });
}

/// Probation-restore vs. permanent loss: whatever the interleaving, a
/// unit marked lost ends lost — a restore can win the race only by
/// linearizing *before* the loss, never by resurrecting it after.
#[test]
fn lost_unit_is_never_resurrected_by_probation() {
    loom::model(|| {
        let gate = Arc::new(UnitGate::new());
        assert!(gate.try_quarantine());
        let g2 = Arc::clone(&gate);
        let loser = thread::spawn(move || g2.mark_lost());
        let restored = gate.try_restore();
        let newly_lost = loser.join().expect("loss thread");
        assert!(newly_lost, "first mark_lost always reports the transition");
        assert!(gate.is_lost(), "loss is absorbing");
        assert!(!gate.is_active());
        // If the restore won, it strictly preceded the loss; it can
        // never observe success while the gate reads Lost.
        let _ = restored;
    });
}

/// Quarantine (worker-failure path) vs. loss (watchdog path) racing on
/// a healthy unit: loss absorbs either way, and the newly-lost edge is
/// reported exactly once.
#[test]
fn quarantine_and_loss_race_resolves_to_loss() {
    loom::model(|| {
        let gate = Arc::new(UnitGate::new());
        let g2 = Arc::clone(&gate);
        let q = thread::spawn(move || g2.try_quarantine());
        let newly_lost = gate.mark_lost();
        let _quarantined = q.join().expect("quarantine thread");
        assert!(newly_lost);
        assert!(gate.is_lost());
        assert!(!gate.try_restore(), "no path back from lost");
    });
}

/// Failed-block re-credit vs. run completion: with the pool drained and
/// one block's fate undecided, a reclaiming watchdog and a closing
/// engine cannot both win — either the re-credit lands (close fails,
/// run continues) or the close lands (re-credit refused).
#[test]
fn recredit_and_close_cannot_both_win() {
    loom::model(|| {
        let latch = Arc::new(CompletionLatch::new(1));
        assert_eq!(latch.take(1), 1);
        let l2 = Arc::clone(&latch);
        let reclaimer = thread::spawn(move || l2.recredit(1));
        let closed = latch.try_close();
        let recredited = reclaimer.join().expect("reclaim thread");
        assert_ne!(closed, recredited, "exactly one racer wins");
        if closed {
            assert!(latch.is_closed());
            assert_eq!(latch.remaining(), 0);
        } else {
            assert!(!latch.is_closed());
            assert_eq!(latch.remaining(), 1);
        }
    });
}

/// Item conservation under concurrent take and re-credit: no
/// interleaving loses or double-counts items.
#[test]
fn concurrent_take_and_recredit_conserve_items() {
    loom::model(|| {
        let latch = Arc::new(CompletionLatch::new(4));
        let l2 = Arc::clone(&latch);
        let taker = thread::spawn(move || l2.take(3));
        let recredited = latch.recredit(2);
        let took = taker.join().expect("taker thread");
        assert!(recredited, "run is open: re-credit always lands");
        assert_eq!(took, 3, "pool never drops below the request here");
        assert_eq!(latch.remaining(), 4 + 2 - took);
    });
}

/// Composition of the two protocols on the full timeout path: the last
/// in-flight block either completes (worker wins the slot, the run
/// closes) or blows its deadline (watchdog wins, the items are
/// re-credited) — never both, never neither.
#[test]
fn timeout_reclaim_never_races_run_completion() {
    loom::model(|| {
        let latch = Arc::new(CompletionLatch::new(2));
        assert_eq!(latch.take(2), 2);
        let slot = Arc::new(AttemptSlot::new());
        let (s2, l2) = (Arc::clone(&slot), Arc::clone(&latch));
        let worker = thread::spawn(move || {
            // Engine-side handling of a delivered completion: the run
            // drains and closes.
            if s2.try_complete() {
                l2.try_close()
            } else {
                false
            }
        });
        // Watchdog side: deadline blown — reclaim the block's items.
        let reclaimed = if slot.try_timeout() {
            latch.recredit(2)
        } else {
            false
        };
        let closed = worker.join().expect("worker thread");
        assert_ne!(closed, reclaimed, "exactly one side of the race acts");
        if closed {
            assert!(latch.is_closed());
            assert_eq!(latch.remaining(), 0);
        } else {
            assert!(!latch.is_closed());
            assert_eq!(latch.remaining(), 2, "lost block fully re-credited");
        }
    });
}
