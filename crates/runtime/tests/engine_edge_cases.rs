//! Edge cases of the discrete-event engine: perturbation ordering,
//! restoration, cancelled completions, and overhead interactions.

use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::workload::LinearCost;
use plb_hetsim::{cluster_scenario, ClusterSim, PuId, Scenario};
use plb_runtime::policy::FixedBlockPolicy;
use plb_runtime::{
    Perturbation, PerturbationKind, Policy, RunError, SchedulerCtx, SimEngine, TaskInfo,
};

fn cluster() -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(Scenario::Two, false),
        &ClusterOptions {
            seed: 11,
            noise_sigma: 0.0,
            ..Default::default()
        },
    )
}

fn cost() -> LinearCost {
    LinearCost {
        label: "edge".into(),
        flops_per_item: 1e5,
        in_bytes_per_item: 32.0,
        out_bytes_per_item: 8.0,
        threads_per_item: 32.0,
    }
}

#[test]
fn perturbation_at_time_zero_applies_before_first_completion() {
    let mut c = cluster();
    let cost = cost();
    let mut p = FixedBlockPolicy { block: 10_000 };
    let report = SimEngine::new(&mut c, &cost)
        .with_perturbations(vec![Perturbation {
            at: 0.0,
            kind: PerturbationKind::Fail(PuId(0)),
        }])
        .run(&mut p, 200_000)
        .unwrap();
    assert_eq!(report.total_items, 200_000);
    // The failed unit's initial task was cancelled; it processed nothing.
    assert_eq!(report.pus[0].items, 0);
}

#[test]
fn fail_then_restore_lets_greedy_like_policies_resume_via_reassignment() {
    /// A policy that retries every unit on each completion (so a
    /// restored unit gets picked up again).
    struct RetryAll {
        block: u64,
    }
    impl Policy for RetryAll {
        fn name(&self) -> &str {
            "retry-all"
        }
        fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
            let ids: Vec<PuId> = ctx.pus().iter().map(|p| p.id).collect();
            for id in ids {
                ctx.assign(id, self.block);
            }
        }
        fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {
            let ids: Vec<PuId> = ctx.pus().iter().map(|p| p.id).collect();
            for id in ids {
                ctx.assign(id, self.block);
            }
        }
    }
    let mut c = cluster();
    let cost = cost();
    let mut p = RetryAll { block: 5_000 };
    let report = SimEngine::new(&mut c, &cost)
        .with_perturbations(vec![
            Perturbation {
                at: 1e-6,
                kind: PerturbationKind::Fail(PuId(1)),
            },
            Perturbation {
                at: 0.05,
                kind: PerturbationKind::Restore(PuId(1)),
            },
        ])
        .run(&mut p, 500_000)
        .unwrap();
    assert_eq!(report.total_items, 500_000);
    // The restored unit came back and did real work.
    assert!(report.pus[1].items > 0, "restored unit never rejoined");
}

#[test]
fn multiple_simultaneous_failures_at_same_timestamp() {
    let mut c = cluster();
    let cost = cost();
    let mut p = FixedBlockPolicy { block: 4_000 };
    let report = SimEngine::new(&mut c, &cost)
        .with_perturbations(vec![
            Perturbation {
                at: 0.01,
                kind: PerturbationKind::Fail(PuId(2)),
            },
            Perturbation {
                at: 0.01,
                kind: PerturbationKind::Fail(PuId(3)),
            },
            Perturbation {
                at: 0.01,
                kind: PerturbationKind::Fail(PuId(4)),
            },
        ])
        .run(&mut p, 300_000)
        .unwrap();
    assert_eq!(report.total_items, 300_000);
    let survivors: u64 = report.pus[..2].iter().map(|p| p.items).sum();
    assert_eq!(
        survivors,
        300_000 - report.pus[2..].iter().map(|p| p.items).sum::<u64>()
    );
}

#[test]
fn failing_every_unit_midrun_stalls_with_remaining_work() {
    let mut c = cluster();
    let cost = cost();
    let mut p = FixedBlockPolicy { block: 1_000 };
    let n = c.len();
    let perturbations: Vec<Perturbation> = (0..n)
        .map(|i| Perturbation {
            at: 1e-6,
            kind: PerturbationKind::Fail(PuId(i)),
        })
        .collect();
    let err = SimEngine::new(&mut c, &cost)
        .with_perturbations(perturbations)
        .run(&mut p, 1_000_000)
        .unwrap_err();
    match err {
        RunError::Stalled { remaining, .. } => assert!(remaining > 0),
        other => panic!("expected stall, got {other}"),
    }
}

#[test]
fn slowdown_then_speedup_round_trip() {
    let cost = cost();
    let run = |perturbations: Vec<Perturbation>| {
        let mut c = cluster();
        SimEngine::new(&mut c, &cost)
            .with_perturbations(perturbations)
            .run(&mut FixedBlockPolicy { block: 5_000 }, 400_000)
            .unwrap()
            .makespan
    };
    let base = run(vec![]);
    // Slow down then restore to nominal: strictly between base and the
    // permanently slowed run.
    let bounce = run(vec![
        Perturbation {
            at: 0.0,
            kind: PerturbationKind::SetSlowdown(PuId(1), 8.0),
        },
        Perturbation {
            at: 0.05,
            kind: PerturbationKind::SetSlowdown(PuId(1), 1.0),
        },
    ]);
    let slowed = run(vec![Perturbation {
        at: 0.0,
        kind: PerturbationKind::SetSlowdown(PuId(1), 8.0),
    }]);
    assert!(base < bounce, "{base} !< {bounce}");
    assert!(bounce < slowed, "{bounce} !< {slowed}");
}

#[test]
fn zero_item_assignments_are_ignored() {
    struct ZeroFirst;
    impl Policy for ZeroFirst {
        fn name(&self) -> &str {
            "zero-first"
        }
        fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
            assert_eq!(ctx.assign(PuId(0), 0), 0, "zero-size assign must no-op");
            assert_eq!(ctx.assign(PuId(0), 100), 100);
            assert_eq!(ctx.assign(PuId(1), u64::MAX), ctx.total_items() - 100);
        }
        fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
    }
    let mut c = cluster();
    let cost = cost();
    let report = SimEngine::new(&mut c, &cost)
        .run(&mut ZeroFirst, 10_000)
        .unwrap();
    assert_eq!(report.total_items, 10_000);
    assert_eq!(report.tasks, 2);
}

#[test]
fn assignments_to_unknown_or_failed_units_return_zero() {
    struct Probe;
    impl Policy for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
            // Unit 0 was failed before start via the cluster, so the
            // handle is unavailable.
            assert_eq!(ctx.assign(PuId(0), 10), 0);
            assert!(ctx.assign(PuId(1), 10_000) > 0);
        }
        fn on_task_finished(&mut self, ctx: &mut dyn SchedulerCtx, d: &TaskInfo) {
            if ctx.remaining_items() > 0 {
                ctx.assign(d.pu, 10_000);
            }
        }
    }
    let mut c = cluster();
    c.device_mut(PuId(0)).fail();
    let cost = cost();
    let report = SimEngine::new(&mut c, &cost)
        .run(&mut Probe, 50_000)
        .unwrap();
    assert_eq!(report.total_items, 50_000);
    assert_eq!(report.pus[0].items, 0);
}

#[test]
fn charge_overhead_with_nonfinite_values_is_ignored() {
    struct BadCharge;
    impl Policy for BadCharge {
        fn name(&self) -> &str {
            "bad-charge"
        }
        fn on_start(&mut self, ctx: &mut dyn SchedulerCtx) {
            ctx.charge_overhead(f64::NAN);
            ctx.charge_overhead(f64::INFINITY);
            ctx.charge_overhead(-5.0);
            ctx.assign(PuId(0), u64::MAX);
        }
        fn on_task_finished(&mut self, _ctx: &mut dyn SchedulerCtx, _d: &TaskInfo) {}
    }
    let mut c = cluster();
    let cost = cost();
    let report = SimEngine::new(&mut c, &cost)
        .run(&mut BadCharge, 1_000)
        .unwrap();
    assert!(report.makespan.is_finite());
}

#[test]
fn byte_accounting_reflects_block_and_broadcast_data() {
    use plb_hetsim::workload::CostModel;
    struct Bcast;
    impl CostModel for Bcast {
        fn name(&self) -> &str {
            "bcast"
        }
        fn flops(&self, items: u64) -> f64 {
            1e6 * items as f64
        }
        fn bytes_in(&self, items: u64) -> f64 {
            10.0 * items as f64
        }
        fn bytes_out(&self, items: u64) -> f64 {
            2.0 * items as f64
        }
        fn threads(&self, items: u64) -> f64 {
            64.0 * items as f64
        }
        fn broadcast_bytes(&self) -> f64 {
            1_000_000.0
        }
    }
    let mut c = cluster();
    let cost = Bcast;
    let mut p = FixedBlockPolicy { block: 5_000 };
    let report = SimEngine::new(&mut c, &cost).run(&mut p, 100_000).unwrap();
    let total_block_bytes: u64 = report.pus.iter().map(|p| p.bytes_in).sum();
    // Every unit that processed anything staged the 1 MB broadcast once
    // plus 10 B per item.
    let busy_units = report.pus.iter().filter(|p| p.items > 0).count() as u64;
    assert_eq!(total_block_bytes, 100_000 * 10 + busy_units * 1_000_000);
    for pu in &report.pus {
        if pu.items > 0 {
            assert!(pu.bytes_in >= 1_000_000 + pu.items * 10 - 10);
        }
    }
}
