//! Structural invariants of execution traces and event streams: the
//! guarantees `docs/OBSERVABILITY.md` documents for trace consumers.
//!
//! * Per-PU Gantt segments never overlap (a unit runs one task at a
//!   time) and carry non-negative durations.
//! * Event timestamps are non-decreasing per PU.
//! * `RunReport::from_trace` accounting is self-consistent:
//!   `item_share` sums to 1 and `idle_fraction` complements
//!   `busy / makespan`.
//! * The JSONL export round-trips losslessly through
//!   `TraceData::parse_jsonl`.

use std::collections::HashMap;

use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::workload::LinearCost;
use plb_hetsim::{cluster_scenario, ClusterSim, PuId, Scenario};
use plb_runtime::policy::FixedBlockPolicy;
use plb_runtime::{
    write_jsonl, EventSink, RunReport, SimEngine, Trace, TraceData, TraceHeader,
    TRACE_FORMAT_VERSION,
};

fn cluster() -> ClusterSim {
    ClusterSim::build(
        &cluster_scenario(Scenario::Two, false),
        &ClusterOptions {
            seed: 7,
            noise_sigma: 0.01,
            ..Default::default()
        },
    )
}

fn cost() -> LinearCost {
    LinearCost {
        label: "invariants".into(),
        flops_per_item: 1e5,
        in_bytes_per_item: 32.0,
        out_bytes_per_item: 8.0,
        threads_per_item: 32.0,
    }
}

/// One instrumented run: the report, its trace, and its event stream.
fn run() -> (RunReport, Trace, EventSink) {
    let mut c = cluster();
    let cost = cost();
    let mut p = FixedBlockPolicy { block: 20_000 };
    let mut engine = SimEngine::new(&mut c, &cost);
    let report = engine.run(&mut p, 400_000).expect("run completes");
    let trace = engine.last_trace().expect("trace recorded").clone();
    let events = engine.last_events().expect("events recorded").clone();
    (report, trace, events)
}

#[test]
fn per_pu_segments_never_overlap() {
    let (_, trace, _) = run();
    let mut by_pu: HashMap<usize, Vec<(f64, f64)>> = HashMap::new();
    for s in trace.segments() {
        assert!(s.end >= s.start, "segment with negative duration: {s:?}");
        by_pu.entry(s.pu).or_default().push((s.start, s.end));
    }
    assert!(!by_pu.is_empty(), "run produced no segments");
    for (pu, mut spans) in by_pu {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1 - 1e-12,
                "pu {pu}: segment {:?} overlaps {:?}",
                w[1],
                w[0]
            );
        }
    }
}

#[test]
fn event_timestamps_monotone_per_pu() {
    let (_, _, events) = run();
    let mut last: HashMap<Option<usize>, f64> = HashMap::new();
    let mut last_seq = None;
    for e in events.events() {
        let prev = last.entry(e.pu).or_insert(f64::NEG_INFINITY);
        assert!(
            e.t >= *prev,
            "pu {:?}: timestamp {} < {} at seq {}",
            e.pu,
            e.t,
            prev,
            e.seq
        );
        *prev = e.t;
        if let Some(s) = last_seq {
            assert!(e.seq > s, "sequence numbers must strictly increase");
        }
        last_seq = Some(e.seq);
    }
}

#[test]
fn report_accounting_is_consistent() {
    let (report, trace, _) = run();
    let share_sum: f64 = report.pus.iter().map(|p| p.item_share).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "item shares sum to {share_sum}"
    );
    for (i, pu) in report.pus.iter().enumerate() {
        let busy = trace.busy_time(PuId(i));
        assert!((pu.busy_s - busy).abs() < 1e-12);
        let expect_idle = 1.0 - busy / report.makespan;
        assert!(
            (pu.idle_fraction - expect_idle).abs() < 1e-9,
            "pu {i}: idle {} vs 1 - busy/makespan {}",
            pu.idle_fraction,
            expect_idle
        );
        assert!((0.0..=1.0).contains(&pu.idle_fraction));
    }
    // Rebuilding the report from the same trace reproduces it.
    let names: Vec<String> = report.pus.iter().map(|p| p.name.clone()).collect();
    let rebuilt = RunReport::from_trace(&report.policy, &trace, &names, None);
    assert_eq!(rebuilt.total_items, report.total_items);
    assert_eq!(rebuilt.tasks, report.tasks);
    assert_eq!(rebuilt.makespan, report.makespan);
}

#[test]
fn jsonl_round_trip_is_lossless() {
    let (report, trace, events) = run();
    let header = TraceHeader {
        version: TRACE_FORMAT_VERSION,
        policy: report.policy.clone(),
        pu_names: report.pus.iter().map(|p| p.name.clone()).collect(),
    };
    let stream = events.events();
    let text = write_jsonl(&header, trace.segments(), &stream);

    let parsed = TraceData::parse_jsonl(&text).expect("valid JSONL parses");
    assert_eq!(parsed.header, header);
    assert_eq!(parsed.segments, trace.segments());
    assert_eq!(parsed.events, stream);
    assert_eq!(parsed.counters(), events.counters());

    // The re-derived trace preserves the Gantt accounting.
    let rebuilt = parsed.to_trace();
    assert_eq!(rebuilt.n_pus(), trace.n_pus());
    assert!((rebuilt.makespan() - trace.makespan()).abs() < 1e-12);
    assert_eq!(rebuilt.items_per_pu(), trace.items_per_pu());

    // And the summary renders without panicking, mentioning every unit.
    let summary = parsed.summarize();
    for p in &report.pus {
        assert!(summary.contains(&p.name), "summary omits {}", p.name);
    }
}
