//! Criterion bench regenerating the Fig. 5 measurements: Black-Scholes
//! simulated execution under each policy across scenario sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plb_bench::harness::{run_once, App, PolicyKind};
use plb_hetsim::Scenario;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for scenario in [Scenario::One, Scenario::Four] {
        for kind in PolicyKind::ALL {
            let id = format!("bs250k-m{}-{}", scenario.machines(), kind.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &kind, |b, &kind| {
                b.iter(|| run_once(App::BlackScholes(250_000), scenario, false, kind, 0, vec![]))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
