//! Criterion bench: the real host kernels (matmul column, Black-Scholes
//! pricing, GRN conditional entropy) — the per-item costs the host
//! backend measures.

use criterion::{criterion_group, criterion_main, Criterion};
use plb_apps::blackscholes::{price, BsData};
use plb_apps::grn::{conditional_entropy, GrnData};
use plb_apps::matmul::{MatMulCodelet, MatMulData};
use plb_hetsim::PuKind;
use plb_runtime::{Codelet, PuResources};
use std::sync::Arc;

fn bench_matmul_column(c: &mut Criterion) {
    let n = 256;
    let data = Arc::new(MatMulData::generate(n, 1));
    let codelet = MatMulCodelet::new(data);
    let res = PuResources {
        threads: 1,
        kind: PuKind::Cpu,
    };
    c.bench_function("matmul_column_256", |b| {
        b.iter(|| codelet.execute(0..1, &res))
    });
}

fn bench_blackscholes_price(c: &mut Criterion) {
    let data = BsData::generate(1024, 2);
    c.bench_function("blackscholes_price_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for o in &data.options {
                let (call, put) = price(o);
                acc += call + put;
            }
            acc
        })
    });
}

fn bench_grn_entropy(c: &mut Criterion) {
    let data = GrnData::generate(32, 50, 3);
    c.bench_function("grn_conditional_entropy", |b| {
        b.iter(|| conditional_entropy(&data, 0, 1, 2))
    });
}

criterion_group!(
    benches,
    bench_matmul_column,
    bench_blackscholes_price,
    bench_grn_entropy
);
criterion_main!(benches);
