//! Criterion bench regenerating the Fig. 4 measurements: MM and GRN
//! simulated execution under each policy (one representative size per
//! app family and machine scenario; the full sweep is the `repro fig4`
//! binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plb_bench::harness::{run_once, App, PolicyKind};
use plb_hetsim::Scenario;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for app in [App::MatMul(16384), App::Grn(60_000)] {
        for kind in PolicyKind::ALL {
            let id = format!("{}-{}", app.label().replace(' ', "_"), kind.label());
            group.bench_with_input(BenchmarkId::from_parameter(id), &kind, |b, &kind| {
                b.iter(|| run_once(app, Scenario::Four, false, kind, 0, vec![]))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
