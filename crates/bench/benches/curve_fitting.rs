//! Criterion bench: the performance-modeling phase's least-squares fits
//! — per-curve cost of the best-subset model selection and the affine
//! transfer fit, across sample counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plb_numerics::{fit_best_model, fit_linear};

fn samples(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let x = 100.0 * (i + 1) as f64;
            // GPU-flavored curve: overhead + linear + saturating term.
            let y = 0.05 + 2e-4 * x + 0.4 * (x / 100.0).ln();
            (x, y * (1.0 + 0.01 * ((i * 37 % 11) as f64 - 5.0) / 5.0))
        })
        .collect()
}

fn bench_best_subset(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_best_model");
    for n in [4usize, 8, 16, 64, 256] {
        let s = samples(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            b.iter(|| fit_best_model(s).unwrap())
        });
    }
    group.finish();
}

fn bench_transfer_fit(c: &mut Criterion) {
    let s: Vec<(f64, f64)> = (1..=32)
        .map(|i| (i as f64 * 50.0, 1e-3 + 2e-6 * i as f64 * 50.0))
        .collect();
    c.bench_function("fit_linear_transfer", |b| {
        b.iter(|| fit_linear(&s).unwrap())
    });
}

criterion_group!(benches, bench_best_subset, bench_transfer_fit);
criterion_main!(benches);
