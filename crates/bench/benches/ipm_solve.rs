//! Criterion bench: cost of the interior-point block-size solve as the
//! number of processing units grows (the paper's Section V statistic —
//! IPOPT took 170 ms ± 32.3 ms on its 4-machine / MM 65536 scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plb_ipm::nlp::FnCurve;
use plb_ipm::{solve, BlockPartitionNlp, BoxedCurve, IpmOptions};

fn curves(n: usize) -> Vec<BoxedCurve> {
    (0..n)
        .map(|i| {
            let rate = 1.0 + i as f64;
            let overhead = 0.01 * (1 + i % 3) as f64;
            Box::new(FnCurve::new(
                move |x: f64| overhead + x / rate + 0.05 * x * x,
                move |x: f64| 1.0 / rate + 0.1 * x,
                |_| 0.1,
            )) as BoxedCurve
        })
        .collect()
}

fn bench_ipm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipm_block_partition");
    for n in [2usize, 4, 8, 10, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || BlockPartitionNlp::new(curves(n)),
                |nlp| solve(&nlp, &IpmOptions::default()).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_barrier_strategies(c: &mut Criterion) {
    use plb_ipm::BarrierStrategy;
    let mut group = c.benchmark_group("ipm_barrier_strategy");
    for (name, strategy) in [
        ("monotone", BarrierStrategy::Monotone),
        ("adaptive", BarrierStrategy::Adaptive),
    ] {
        group.bench_function(name, |b| {
            let opts = IpmOptions {
                barrier: strategy,
                ..Default::default()
            };
            b.iter_batched(
                || BlockPartitionNlp::new(curves(10)),
                |nlp| solve(&nlp, &opts).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ipm, bench_barrier_strategies);
criterion_main!(benches);
