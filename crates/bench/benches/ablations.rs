//! Criterion bench for the DESIGN.md ablations: PLB-HeC with each knob
//! flipped, on the occupancy-ramp workload where the knobs matter.

use criterion::{criterion_group, criterion_main, Criterion};
use plb_hec::{FitMode, PlbHecPolicy, PolicyConfig, ProbeSchedule, SolverChoice};
use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::workload::LinearCost;
use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_runtime::SimEngine;

fn ramp_cost() -> LinearCost {
    LinearCost {
        label: "ramp".into(),
        flops_per_item: 2e5,
        in_bytes_per_item: 64.0,
        out_bytes_per_item: 8.0,
        threads_per_item: 1.0,
    }
}

fn run_with(cfg: &PolicyConfig) -> f64 {
    let machines = cluster_scenario(Scenario::Four, false);
    let opts = ClusterOptions {
        seed: 0,
        noise_sigma: 0.02,
        ..Default::default()
    };
    let mut cluster = ClusterSim::build(&machines, &opts);
    let cost = ramp_cost();
    let mut policy = PlbHecPolicy::new(cfg);
    SimEngine::new(&mut cluster, &cost)
        .run(&mut policy, 400_000)
        .unwrap()
        .makespan
}

fn bench_ablations(c: &mut Criterion) {
    let base = PolicyConfig {
        initial_block: 400,
        ..Default::default()
    };
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("baseline", |b| b.iter(|| run_with(&base)));
    group.bench_function("fit_linear_only", |b| {
        let cfg = PolicyConfig {
            fit_mode: FitMode::LinearOnly,
            ..base.clone()
        };
        b.iter(|| run_with(&cfg))
    });
    group.bench_function("fit_log_only", |b| {
        let cfg = PolicyConfig {
            fit_mode: FitMode::LogOnly,
            ..base.clone()
        };
        b.iter(|| run_with(&cfg))
    });
    group.bench_function("solver_fixed_point", |b| {
        let cfg = PolicyConfig {
            solver: SolverChoice::FixedPointOnly,
            ..base.clone()
        };
        b.iter(|| run_with(&cfg))
    });
    group.bench_function("solver_rate_proportional", |b| {
        let cfg = PolicyConfig {
            solver: SolverChoice::RateProportionalOnly,
            ..base.clone()
        };
        b.iter(|| run_with(&cfg))
    });
    group.bench_function("probe_equal", |b| {
        let cfg = PolicyConfig {
            probe_schedule: ProbeSchedule::ExponentialEqual,
            ..base.clone()
        };
        b.iter(|| run_with(&cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
