//! Criterion bench regenerating the Fig. 6 measurement: the block-size
//! distribution runs (8 processing units, one GPU per machine) for the
//! three estimating policies.

use criterion::{criterion_group, criterion_main, Criterion};
use plb_bench::harness::{run_once, App, PolicyKind};
use plb_hetsim::Scenario;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_distribution");
    group.sample_size(10);
    for kind in [PolicyKind::Acosta, PolicyKind::Hdss, PolicyKind::PlbHec] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let o = run_once(App::MatMul(16384), Scenario::Four, true, kind, 0, vec![]);
                o.report.block_distribution
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
