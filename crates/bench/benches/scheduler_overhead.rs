//! Criterion bench: end-to-end scheduler overhead — full simulated runs
//! of each policy on a fixed mid-size workload. Differences here are the
//! policies' own bookkeeping (the virtual workload is identical).

use criterion::{criterion_group, criterion_main, Criterion};
use plb_bench::harness::{run_once, App, PolicyKind};
use plb_hetsim::Scenario;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run_scheduler_overhead");
    group.sample_size(20);
    for kind in PolicyKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                run_once(
                    App::BlackScholes(100_000),
                    Scenario::Two,
                    false,
                    kind,
                    0,
                    vec![],
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
