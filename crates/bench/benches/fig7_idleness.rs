//! Criterion bench regenerating the Fig. 7 measurement: idle-fraction
//! accounting for PLB-HeC vs HDSS.

use criterion::{criterion_group, criterion_main, Criterion};
use plb_bench::harness::{run_once, App, PolicyKind};
use plb_hetsim::Scenario;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_idleness");
    group.sample_size(10);
    for kind in [PolicyKind::PlbHec, PolicyKind::Hdss] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let o = run_once(App::Grn(60_000), Scenario::Four, true, kind, 0, vec![]);
                o.report.mean_idle_fraction()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
