//! End-to-end tests of the `plb` and `repro` binaries.

use std::process::Command;

fn plb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_plb"))
}

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn plb_cluster_lists_table1() {
    let out = plb().args(["cluster", "--machines", "4"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["Tesla K20c", "GTX 295", "GTX 680", "GTX Titan"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn plb_run_emits_report_and_artifacts() {
    let dir = std::env::temp_dir().join("plb_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("run.json");
    let svg = dir.join("run.svg");
    let out = plb()
        .args([
            "run",
            "--app",
            "bs",
            "--size",
            "50000",
            "--machines",
            "2",
            "--policy",
            "plb-hec",
            "--json",
        ])
        .arg(&json)
        .arg("--gantt")
        .arg(&svg)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("makespan"));
    assert!(text.contains("A/gpu0"));
    // Artifacts exist and parse.
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(parsed["total_items"], 50_000);
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg"));
}

#[test]
fn plb_profile_then_static_run_roundtrip() {
    let dir = std::env::temp_dir().join("plb_cli_profile_test");
    std::fs::create_dir_all(&dir).unwrap();
    let profiles = dir.join("profiles.json");
    let out = plb()
        .args([
            "profile",
            "--app",
            "grn",
            "--size",
            "80000",
            "--machines",
            "2",
            "--profiles",
        ])
        .arg(&profiles)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = plb()
        .args([
            "run",
            "--app",
            "grn",
            "--size",
            "80000",
            "--machines",
            "2",
            "--policy",
            "static",
            "--profiles",
        ])
        .arg(&profiles)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("static-profile"));
    assert!(text.contains("items     : 80000"));
}

#[test]
fn plb_rejects_bad_arguments() {
    let out = plb().args(["run", "--app", "nonsense"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--app must be"));
}

#[test]
fn repro_generates_table1() {
    let dir = std::env::temp_dir().join("plb_cli_repro_test");
    let out = repro()
        .args(["table1", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let md = std::fs::read_to_string(dir.join("table1.md")).unwrap();
    assert!(md.contains("Tesla K20c"));
    assert!(std::fs::metadata(dir.join("table1.csv")).is_ok());
}

#[test]
fn repro_fig5_quick_run_has_speedup_table() {
    let dir = std::env::temp_dir().join("plb_cli_repro_fig5");
    let out = repro()
        .args(["fig5", "--seeds", "1", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let md = std::fs::read_to_string(dir.join("fig5.md")).unwrap();
    assert!(md.contains("speedup vs greedy"));
    assert!(md.contains("BS 500000"));
}
