#![warn(missing_docs)]

//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures from the simulator.
//!
//! * [`harness`] — the scenario runner: (application, machine scenario,
//!   policy, seed) → run reports, repeated over the paper's 10-run
//!   protocol.
//! * [`figures`] — one generator per table/figure of the paper
//!   (Table I, Fig. 1, Fig. 3–7, plus the interior-point cost statistic
//!   from Section V and the ablation studies from DESIGN.md).
//! * [`report`] — markdown/CSV emitters for `results/`.
//!
//! The `repro` binary drives all of this:
//! `cargo run -p plb-bench --bin repro --release -- all`.

pub mod figures;
pub mod harness;
pub mod report;
pub mod viz;

pub use harness::{
    default_initial_block, run_many, run_once, Aggregate, App, PolicyKind, RunOutcome,
};
pub use report::{write_results, Table};
pub use viz::{gantt_svg, grouped_bars_svg, line_chart_svg, Series};
