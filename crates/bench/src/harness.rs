//! The scenario runner.

use plb_hec::{AcostaPolicy, GreedyPolicy, HdssPolicy, PlbHecPolicy, PolicyConfig};
use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::{cluster_scenario, ClusterSim, CostModel, Scenario};
use plb_runtime::{EventSink, Perturbation, RunReport, SimEngine, Trace, Weights};
use std::sync::Arc;

/// An evaluation application at a given input size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum App {
    /// Matrix multiplication of the given order.
    MatMul(u64),
    /// GRN inference over the given gene count.
    Grn(u64),
    /// Black-Scholes over the given option count.
    BlackScholes(u64),
    /// Dense NN-layer inference over the given batch size (extension
    /// app; fixed 16384x16384 layer = 1 GB of broadcast weights).
    NnLayer(u64),
    /// Sparse matrix–vector multiply: the irregular-workload extension
    /// app. Rows follow a seeded power-law length distribution; the run
    /// carries per-row [`Weights`] so work is balanced by nonzeros.
    Spmv {
        /// Matrix order (items = rows).
        rows: u64,
        /// Power-law exponent (see [`plb_apps::spmv::SKEW_RANGE`]).
        skew: f64,
        /// Matrix generator seed.
        seed: u64,
    },
}

impl App {
    /// The generated SpMV application for a [`App::Spmv`] variant.
    /// Panics on parameters outside [`plb_apps::spmv::SKEW_RANGE`] —
    /// the CLI validates before constructing the variant.
    fn spmv_app(rows: u64, skew: f64, seed: u64) -> plb_apps::Spmv {
        plb_apps::Spmv::new(rows, skew, seed).expect("spmv parameters validated by caller")
    }

    /// The simulator cost model.
    pub fn cost(&self) -> Box<dyn CostModel> {
        match *self {
            App::MatMul(n) => Box::new(plb_apps::MatMul::new(n).cost()),
            App::Grn(n) => Box::new(plb_apps::GrnInference::new(n).cost()),
            App::BlackScholes(n) => Box::new(plb_apps::BlackScholes::new(n).cost()),
            App::NnLayer(n) => Box::new(plb_apps::NnLayer::new(n, 16384, 16384).cost()),
            App::Spmv { rows, skew, seed } => Box::new(Self::spmv_app(rows, skew, seed).cost()),
        }
    }

    /// Total work items.
    pub fn total_items(&self) -> u64 {
        match *self {
            App::MatMul(n) => n,
            App::Grn(n) => n,
            App::BlackScholes(n) => n,
            App::NnLayer(n) => n,
            App::Spmv { rows, .. } => rows,
        }
    }

    /// The run's work weights: per-row nonzero costs for SpMV, uniform
    /// for the regular apps (for which cost ≡ item count).
    pub fn weights(&self) -> Arc<Weights> {
        match *self {
            App::Spmv { rows, skew, seed } => Self::spmv_app(rows, skew, seed).weights(),
            _ => Weights::uniform(),
        }
    }

    /// Total workload weight in cost units (equals [`App::total_items`]
    /// for the uniform apps): the quantity block-size heuristics should
    /// scale with.
    pub fn total_cost(&self) -> u64 {
        self.weights().total_cost(self.total_items())
    }

    /// Short family name ("MM", "GRN", "BS").
    pub fn family(&self) -> &'static str {
        match self {
            App::MatMul(_) => "MM",
            App::Grn(_) => "GRN",
            App::BlackScholes(_) => "BS",
            App::NnLayer(_) => "NN",
            App::Spmv { .. } => "SPMV",
        }
    }

    /// Display label, e.g. `"MM 16384"`.
    pub fn label(&self) -> String {
        match *self {
            App::MatMul(n) => format!("MM {n}"),
            App::Grn(n) => format!("GRN {n}"),
            App::BlackScholes(n) => format!("BS {n}"),
            App::NnLayer(n) => format!("NN {n}"),
            App::Spmv { rows, skew, .. } => format!("SPMV {rows} a={skew}"),
        }
    }
}

/// The four scheduling algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// StarPU-style greedy dispatch (the speedup baseline).
    Greedy,
    /// Acosta et al. relative-power balancing.
    Acosta,
    /// HDSS two-phase weighting.
    Hdss,
    /// PLB-HeC.
    PlbHec,
}

impl PolicyKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::PlbHec,
        PolicyKind::Acosta,
        PolicyKind::Hdss,
        PolicyKind::Greedy,
    ];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Greedy => "greedy",
            PolicyKind::Acosta => "acosta",
            PolicyKind::Hdss => "hdss",
            PolicyKind::PlbHec => "plb-hec",
        }
    }
}

/// One run's full outcome.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The runtime's report (makespan, per-unit shares, idleness).
    pub report: RunReport,
    /// The execution trace (for Gantt rendering).
    pub trace: Trace,
    /// PLB-HeC only: wall-clock seconds of each block-size solve.
    pub solve_times: Vec<f64>,
    /// Rebalance / share-update events the policy performed.
    pub rebalances: usize,
    /// The structured decision-event stream of the run (see
    /// [`plb_runtime::events`]).
    pub events: EventSink,
}

/// The paper's `initialBlockSize` heuristic: chosen "empirically, so
/// that the initial phase of the algorithm would take about 10% of the
/// application execution time", with the same block used by every
/// algorithm. The modeling phase's duration is dominated by the fastest
/// unit's probe blocks (slow units get `t_f/t_k`-rescaled ones), and
/// the first (unscaled) round is dominated by the *slowest* unit, so the
/// budget works out near `initial ≈ 0.001 · total` on the Table I
/// spread.
///
/// The floor reflects practice: a kernel launch must expose enough
/// fine-grained parallelism to be worth dispatching at all (~10⁵
/// threads), so items that carry little parallelism each (options) get a
/// higher floor than items that are already wide (matrix columns). Tiny
/// inputs end up with blocks that are a visible fraction of the data —
/// exactly where the paper reports "large fluctuation".
pub fn default_initial_block(total_items: u64, cost: &dyn plb_hetsim::CostModel) -> u64 {
    let threads_per_item = cost.threads(1).max(1.0);
    let floor = ((1e5 / threads_per_item).ceil() as u64).clamp(32, total_items.max(1));
    let b = (total_items as f64 * 0.001).ceil().max(1.0) as u64;
    b.max(floor)
}

/// Run one (application, scenario, policy, seed) combination.
pub fn run_once(
    app: App,
    scenario: Scenario,
    single_gpu: bool,
    kind: PolicyKind,
    seed: u64,
    perturbations: Vec<Perturbation>,
) -> RunOutcome {
    let machines = cluster_scenario(scenario, single_gpu);
    let opts = ClusterOptions {
        seed,
        noise_sigma: 0.02,
        ..Default::default()
    };
    let mut cluster = ClusterSim::build(&machines, &opts);
    let n_units = cluster.len();
    let total = app.total_items();
    let cost = app.cost();
    let cfg = PolicyConfig {
        // Block sizes are cost budgets, so the heuristic scales with
        // the workload's weight, not its item count (identical for the
        // uniform apps).
        initial_block: default_initial_block(app.total_cost(), cost.as_ref()),
        seed,
        ..Default::default()
    };
    let _ = n_units;
    let mut engine = SimEngine::new(&mut cluster, cost.as_ref())
        .with_weights(app.weights())
        .with_perturbations(perturbations);

    let (report, solve_times, rebalances) = match kind {
        PolicyKind::Greedy => {
            let mut p = GreedyPolicy::new(&cfg);
            let r = engine.run(&mut p, total).expect("greedy run completes");
            (r, Vec::new(), 0)
        }
        PolicyKind::Acosta => {
            let mut p = AcostaPolicy::new(&cfg);
            let r = engine.run(&mut p, total).expect("acosta run completes");
            let reb = p.rebalances();
            (r, Vec::new(), reb)
        }
        PolicyKind::Hdss => {
            let mut p = HdssPolicy::new(&cfg);
            let r = engine.run(&mut p, total).expect("hdss run completes");
            (r, Vec::new(), 0)
        }
        PolicyKind::PlbHec => {
            let mut p = PlbHecPolicy::new(&cfg);
            let r = engine.run(&mut p, total).expect("plb-hec run completes");
            let st = p.selections().iter().map(|s| s.solve_seconds).collect();
            let reb = p.rebalances();
            (r, st, reb)
        }
    };
    let trace = engine.last_trace().expect("trace recorded").clone();
    let events = engine.last_events().cloned().unwrap_or_default();
    RunOutcome {
        report,
        trace,
        solve_times,
        rebalances,
        events,
    }
}

/// Aggregate over the paper's 10-run protocol.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Mean makespan, seconds.
    pub mean_makespan: f64,
    /// Sample standard deviation of the makespan.
    pub std_makespan: f64,
    /// Per-seed outcomes (seed i at index i).
    pub runs: Vec<RunOutcome>,
}

impl Aggregate {
    /// Two-sided 95% confidence half-width of the mean makespan
    /// (Student-t on the 10-run protocol).
    pub fn makespan_ci95(&self) -> f64 {
        let makespans: Vec<f64> = self.runs.iter().map(|r| r.report.makespan).collect();
        plb_numerics::stats::confidence95_half_width(&makespans)
    }

    /// Mean of the per-unit item shares across runs (Fig. 6's bars).
    pub fn mean_item_shares(&self) -> Vec<f64> {
        let n = self.runs[0].report.pus.len();
        let mut m = vec![0.0; n];
        for r in &self.runs {
            for (i, pu) in r.report.pus.iter().enumerate() {
                m[i] += pu.item_share;
            }
        }
        for v in &mut m {
            *v /= self.runs.len() as f64;
        }
        m
    }

    /// Mean of the policies' declared block distributions (Fig. 6), when
    /// available.
    pub fn mean_block_distribution(&self) -> Option<Vec<f64>> {
        let dists: Vec<&Vec<f64>> = self
            .runs
            .iter()
            .filter_map(|r| r.report.block_distribution.as_ref())
            .collect();
        if dists.is_empty() {
            return None;
        }
        let n = dists[0].len();
        let mut m = vec![0.0; n];
        for d in &dists {
            for (i, v) in d.iter().enumerate() {
                m[i] += v;
            }
        }
        for v in &mut m {
            *v /= dists.len() as f64;
        }
        Some(m)
    }

    /// Per-unit standard deviation of the block distributions (the error
    /// bars of Fig. 6).
    pub fn std_block_distribution(&self) -> Option<Vec<f64>> {
        let mean = self.mean_block_distribution()?;
        let dists: Vec<&Vec<f64>> = self
            .runs
            .iter()
            .filter_map(|r| r.report.block_distribution.as_ref())
            .collect();
        if dists.len() < 2 {
            return Some(vec![0.0; mean.len()]);
        }
        let mut var = vec![0.0; mean.len()];
        for d in &dists {
            for (i, v) in d.iter().enumerate() {
                var[i] += (v - mean[i]) * (v - mean[i]);
            }
        }
        Some(
            var.iter()
                .map(|v| (v / (dists.len() - 1) as f64).sqrt())
                .collect(),
        )
    }

    /// Mean idle fraction per unit (Fig. 7's bars).
    pub fn mean_idle_fractions(&self) -> Vec<f64> {
        let n = self.runs[0].report.pus.len();
        let mut m = vec![0.0; n];
        for r in &self.runs {
            for (i, pu) in r.report.pus.iter().enumerate() {
                m[i] += pu.idle_fraction;
            }
        }
        for v in &mut m {
            *v /= self.runs.len() as f64;
        }
        m
    }
}

/// Run `seeds` repetitions (the paper uses 10).
pub fn run_many(
    app: App,
    scenario: Scenario,
    single_gpu: bool,
    kind: PolicyKind,
    seeds: u64,
) -> Aggregate {
    assert!(seeds > 0);
    let runs: Vec<RunOutcome> = (0..seeds)
        .map(|s| run_once(app, scenario, single_gpu, kind, s, Vec::new()))
        .collect();
    let makespans: Vec<f64> = runs.iter().map(|r| r.report.makespan).collect();
    Aggregate {
        mean_makespan: plb_numerics::mean(&makespans),
        std_makespan: plb_numerics::stats::sample_stddev(&makespans),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_block_heuristic() {
        // Wide items (matmul columns): floor is the 32-item minimum.
        let mm = App::MatMul(150_000).cost();
        assert_eq!(default_initial_block(150_000, mm.as_ref()), 150);
        // Narrow items (options, 128 threads each): floor ≈ 782 items.
        let bs = App::BlackScholes(500_000).cost();
        assert_eq!(default_initial_block(500_000, bs.as_ref()), 782);
        // Floor never exceeds the input itself.
        let bs_small = App::BlackScholes(100).cost();
        assert_eq!(default_initial_block(100, bs_small.as_ref()), 100);
    }

    #[test]
    fn run_once_all_policies_complete() {
        for kind in PolicyKind::ALL {
            let o = run_once(
                App::BlackScholes(50_000),
                Scenario::Two,
                false,
                kind,
                0,
                Vec::new(),
            );
            assert_eq!(o.report.total_items, 50_000, "{kind:?}");
            assert!(o.report.makespan > 0.0);
        }
    }

    #[test]
    fn nn_extension_app_runs_and_streams_weights() {
        // The 1 GB weight matrix overflows the small GPUs: their shares
        // must come out below a proportional-by-core-count split.
        let o = run_once(
            App::NnLayer(50_000),
            Scenario::Four,
            false,
            PolicyKind::PlbHec,
            0,
            vec![],
        );
        assert_eq!(o.report.total_items, 50_000);
        // B's GTX 295 halves (0.44 GB memory) stream hardest; each gets
        // only a sliver of the batch.
        let b_gpu_share = o.report.pus[3].item_share + o.report.pus[4].item_share;
        assert!(
            b_gpu_share < 0.15,
            "streaming GPUs should be de-prioritized, got {b_gpu_share}"
        );
    }

    #[test]
    fn aggregate_statistics() {
        let agg = run_many(
            App::BlackScholes(30_000),
            Scenario::One,
            false,
            PolicyKind::Greedy,
            3,
        );
        assert_eq!(agg.runs.len(), 3);
        assert!(agg.mean_makespan > 0.0);
        assert!(agg.std_makespan >= 0.0);
        assert!(agg.makespan_ci95() >= 0.0);
        let shares = agg.mean_item_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plb_records_solve_times() {
        let o = run_once(
            App::MatMul(8192),
            Scenario::Two,
            false,
            PolicyKind::PlbHec,
            1,
            Vec::new(),
        );
        assert!(!o.solve_times.is_empty());
    }

    #[test]
    fn outcomes_carry_event_streams() {
        let o = run_once(
            App::BlackScholes(50_000),
            Scenario::Two,
            false,
            PolicyKind::PlbHec,
            0,
            Vec::new(),
        );
        let c = o.events.counters();
        assert!(c.probes > 0 && c.curve_fits > 0 && c.solves > 0);
        assert_eq!(c.tasks_finished, o.report.tasks as u64);
    }
}
