//! Generators for every table and figure of the paper's evaluation.
//!
//! Each function returns the rendered markdown plus machine-readable
//! tables; the `repro` binary writes them under `results/`.

use crate::harness::{default_initial_block, run_many, run_once, App, PolicyKind};
use crate::report::{fmt_secs, Table};
use plb_hec::{FitMode, PlbHecPolicy, PolicyConfig, ProbeSchedule, SolverChoice};
use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::{cluster_scenario, machine_a, ClusterSim, DevicePerf, PuId, Scenario};
use plb_numerics::fit_best_model;
use plb_runtime::{Perturbation, PerturbationKind, SimEngine};

/// The sizes plotted per app family in Figs. 6 and 7 ("two different
/// input sizes for each").
const FIG67_APPS: [App; 6] = [
    App::MatMul(4096),
    App::MatMul(65536),
    App::Grn(60_000),
    App::Grn(140_000),
    App::BlackScholes(100_000),
    App::BlackScholes(500_000),
];

/// Table I: the machine configurations.
pub fn table1() -> (String, Vec<Table>) {
    let mut t = Table::new(
        "Table I — machine configurations",
        &[
            "Machine",
            "CPU",
            "Cores/Clock",
            "RAM",
            "GPU",
            "Cores/SMs",
            "Mem BW",
            "GPU Mem",
        ],
    );
    for m in cluster_scenario(Scenario::Four, false) {
        for (gi, g) in m.gpus.iter().enumerate() {
            t.push_row(vec![
                if gi == 0 {
                    m.name.clone()
                } else {
                    String::new()
                },
                if gi == 0 {
                    m.cpu.name.clone()
                } else {
                    String::new()
                },
                if gi == 0 {
                    format!("{} cores @ {} GHz", m.cpu.cores, m.cpu.clock_ghz)
                } else {
                    String::new()
                },
                if gi == 0 {
                    format!("{} GB", m.cpu.ram_gb)
                } else {
                    String::new()
                },
                g.name.clone(),
                format!("{} / {} SMs", g.cuda_cores, g.sms),
                format!("{} GB/s", g.mem_bandwidth_gbs),
                format!("{} GB", g.mem_gb),
            ]);
        }
    }
    (t.to_markdown(), vec![t])
}

/// Fig. 1: measured execution times and fitted performance models for
/// the Black-Scholes and MM kernels on machine A's CPU and GPU.
pub fn fig1() -> (String, Vec<Table>) {
    let mut md = String::from("## Fig. 1 — execution times and performance models\n\n");
    let mut tables = Vec::new();
    let machine = machine_a();
    let apps: [(&str, App, Vec<u64>); 2] = [
        (
            "Black-Scholes",
            App::BlackScholes(500_000),
            vec![
                1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
            ],
        ),
        (
            "Matrix multiplication (n=16384)",
            App::MatMul(16384),
            vec![64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192],
        ),
    ];
    for (label, app, sizes) in apps {
        let cost = app.cost();
        for (dev_label, perf) in [
            ("CPU", DevicePerf::for_cpu(&machine.cpu)),
            ("GPU", DevicePerf::for_gpu(&machine.gpus[0])),
        ] {
            let samples: Vec<(f64, f64)> = sizes
                .iter()
                .map(|&b| {
                    let t = perf.kernel_time(cost.flops(b), cost.bytes_touched(b), cost.threads(b));
                    (b as f64, t)
                })
                .collect();
            let fit = fit_best_model(&samples).expect("clean curves fit");
            let mut t = Table::new(
                &format!("{label} on {dev_label} ({})", fit.describe()),
                &["block size", "measured time", "model time"],
            );
            for &(x, y) in &samples {
                t.push_row(vec![format!("{x:.0}"), fmt_secs(y), fmt_secs(fit.eval(x))]);
            }
            md.push_str(&t.to_markdown());
            tables.push(t);
        }
    }
    md.push_str(
        "GPU curves are sub-linear at small blocks (occupancy ramp) and the \
         CPU curves near-affine, matching the paper's Fig. 1 shapes.\n",
    );
    (md, tables)
}

/// Fig. 3: the rebalancing Gantt chart. A mid-run slowdown on one unit
/// trips the 10 % threshold; the chart shows the synchronization and the
/// new block sizes afterward.
pub fn fig3() -> (String, Vec<Table>) {
    let app = App::MatMul(16384);
    let machines = cluster_scenario(Scenario::Two, true);
    let opts = ClusterOptions {
        seed: 0,
        noise_sigma: 0.01,
        ..Default::default()
    };
    let mut cluster = ClusterSim::build(&machines, &opts);
    let cost = app.cost();
    // Smaller execution rounds than the default: QoS drift is detected
    // when the slowed unit's current block completes, so finer blocks
    // give the demo a timely detection (the trade-off the paper's
    // threshold discussion describes).
    let cfg = PolicyConfig {
        initial_block: default_initial_block(app.total_items(), cost.as_ref()),
        ..Default::default()
    }
    .with_round_fraction(0.12);
    // Baseline run to size the drift time: the perturbation must land
    // mid-execution (inside modeling it is absorbed into the fits; near
    // the end nothing is left to redistribute).
    let baseline = {
        let mut c = ClusterSim::build(&machines, &opts);
        let mut p = PlbHecPolicy::new(&cfg);
        SimEngine::new(&mut c, cost.as_ref())
            .run(&mut p, app.total_items())
            .expect("baseline run completes")
            .makespan
    };
    let mut policy = PlbHecPolicy::new(&cfg);
    let mut engine =
        SimEngine::new(&mut cluster, cost.as_ref()).with_perturbations(vec![Perturbation {
            at: 0.45 * baseline,
            kind: PerturbationKind::SetSlowdown(PuId(1), 5.0),
        }]);
    let report = engine
        .run(&mut policy, app.total_items())
        .expect("fig3 run completes");
    let trace = engine.last_trace().expect("trace recorded");
    let names: Vec<String> = report.pus.iter().map(|p| p.name.clone()).collect();
    let gantt = trace.ascii_gantt(&names, 100);

    let mut md = String::from("## Fig. 3 — execution and rebalancing Gantt\n\n");
    md.push_str(&format!(
        "Machine scenario {{A, B}} (one GPU each), MM 16384. At t = {:.2} s \
         (mid-execution) the A/gpu0 unit slows 5x (QoS drift); its next \
         block overshoots the fitted model by far more than the 10% \
         threshold and PLB-HeC rebalances ({} rebalance(s) performed).\n\n\
         ```text\n{}```\n\n(`#` compute, `-` transfer, `.` idle)\n",
        0.45 * baseline,
        policy.rebalances(),
        gantt
    ));
    let mut t = Table::new("Fig. 3 run summary", &["metric", "value"]);
    t.push_row(vec!["makespan".into(), fmt_secs(report.makespan)]);
    t.push_row(vec!["rebalances".into(), policy.rebalances().to_string()]);
    t.push_row(vec![
        "selections".into(),
        policy.selections().len().to_string(),
    ]);
    md.push_str(&t.to_markdown());
    (md, vec![t])
}

/// Shared machinery for Figs. 4 and 5: execution time and speedup
/// tables over (sizes × scenarios × policies).
fn exec_time_figure(title: &str, apps: &[App], seeds: u64) -> (String, Vec<Table>) {
    let mut md = format!("## {title}\n\n");
    let mut tables = Vec::new();
    let mut time_table = Table::new(
        &format!("{title}: mean execution time over {seeds} runs"),
        &["app", "machines", "plb-hec", "acosta", "hdss", "greedy"],
    );
    let mut speedup_table = Table::new(
        &format!("{title}: speedup vs greedy"),
        &["app", "machines", "plb-hec", "acosta", "hdss"],
    );
    for &app in apps {
        for scenario in Scenario::ALL {
            let mut means = std::collections::HashMap::new();
            for kind in PolicyKind::ALL {
                let agg = run_many(app, scenario, false, kind, seeds);
                means.insert(kind.label(), agg.mean_makespan);
            }
            let greedy = means["greedy"];
            time_table.push_row(vec![
                app.label(),
                scenario.machines().to_string(),
                fmt_secs(means["plb-hec"]),
                fmt_secs(means["acosta"]),
                fmt_secs(means["hdss"]),
                fmt_secs(greedy),
            ]);
            speedup_table.push_row(vec![
                app.label(),
                scenario.machines().to_string(),
                format!("{:.2}", greedy / means["plb-hec"]),
                format!("{:.2}", greedy / means["acosta"]),
                format!("{:.2}", greedy / means["hdss"]),
            ]);
        }
    }
    md.push_str(&time_table.to_markdown());
    md.push_str(&speedup_table.to_markdown());
    tables.push(time_table);
    tables.push(speedup_table);
    (md, tables)
}

/// Fig. 4: MM and GRN execution times and speedups.
pub fn fig4(seeds: u64) -> (String, Vec<Table>) {
    let apps: Vec<App> = plb_apps::paper_inputs::MM_SIZES
        .iter()
        .map(|&n| App::MatMul(n))
        .chain(
            plb_apps::paper_inputs::GRN_SIZES
                .iter()
                .map(|&n| App::Grn(n)),
        )
        .collect();
    exec_time_figure("Fig. 4 — MM and GRN execution time / speedup", &apps, seeds)
}

/// Fig. 5: Black-Scholes execution times and speedups.
pub fn fig5(seeds: u64) -> (String, Vec<Table>) {
    let apps: Vec<App> = plb_apps::paper_inputs::BS_SIZES
        .iter()
        .map(|&n| App::BlackScholes(n))
        .collect();
    exec_time_figure(
        "Fig. 5 — Black-Scholes execution time / speedup",
        &apps,
        seeds,
    )
}

/// Fig. 6: block-size distribution across the 8 processing units
/// (4 machines × CPU+GPU) for Acosta, HDSS and PLB-HeC.
pub fn fig6(seeds: u64) -> (String, Vec<Table>) {
    let mut md = String::from(
        "## Fig. 6 — block size distribution per processing unit\n\n\
         Machines A-D, one GPU each; values are each unit's fraction of \
         one distribution step (mean ± sample σ over seeds).\n\n",
    );
    let mut tables = Vec::new();
    for &app in &FIG67_APPS {
        let mut t = Table::new(
            &format!("{} block distribution", app.label()),
            &[
                "policy", "A/cpu", "A/gpu", "B/cpu", "B/gpu", "C/cpu", "C/gpu", "D/cpu", "D/gpu",
            ],
        );
        for kind in [PolicyKind::Acosta, PolicyKind::Hdss, PolicyKind::PlbHec] {
            let agg = run_many(app, Scenario::Four, true, kind, seeds);
            let mean = agg
                .mean_block_distribution()
                .unwrap_or_else(|| agg.mean_item_shares());
            let std = agg
                .std_block_distribution()
                .unwrap_or_else(|| vec![0.0; mean.len()]);
            let mut row = vec![kind.label().to_string()];
            for i in 0..mean.len() {
                row.push(format!("{:.3} ± {:.3}", mean[i], std[i]));
            }
            t.push_row(row);
        }
        md.push_str(&t.to_markdown());
        tables.push(t);
    }
    (md, tables)
}

/// Fig. 7: per-unit idle time as a fraction of total execution, PLB-HeC
/// vs HDSS.
pub fn fig7(seeds: u64) -> (String, Vec<Table>) {
    let mut md = String::from("## Fig. 7 — processing unit idle time (fraction of makespan)\n\n");
    let mut tables = Vec::new();
    for &app in &FIG67_APPS {
        let mut t = Table::new(
            &format!("{} idle fractions", app.label()),
            &[
                "policy", "A/cpu", "A/gpu", "B/cpu", "B/gpu", "C/cpu", "C/gpu", "D/cpu", "D/gpu",
                "mean",
            ],
        );
        for kind in [PolicyKind::PlbHec, PolicyKind::Hdss] {
            let agg = run_many(app, Scenario::Four, true, kind, seeds);
            let idle = agg.mean_idle_fractions();
            let mean_idle: f64 = idle.iter().sum::<f64>() / idle.len() as f64;
            let mut row = vec![kind.label().to_string()];
            for v in &idle {
                row.push(format!("{:.1}%", v * 100.0));
            }
            row.push(format!("{:.1}%", mean_idle * 100.0));
            t.push_row(row);
        }
        md.push_str(&t.to_markdown());
        tables.push(t);
    }
    (md, tables)
}

/// The Section V statistic: cost of the interior-point block-size
/// calculation (paper: 170 ms ± 32.3 ms, 4 machines, MM 65536).
pub fn ipmcost(seeds: u64) -> (String, Vec<Table>) {
    let mut solve_times = Vec::new();
    for seed in 0..seeds {
        let o = run_once(
            App::MatMul(65536),
            Scenario::Four,
            false,
            PolicyKind::PlbHec,
            seed,
            vec![],
        );
        solve_times.extend(o.solve_times);
    }
    let mean = plb_numerics::mean(&solve_times);
    let std = plb_numerics::stats::sample_stddev(&solve_times);
    let mut t = Table::new(
        "Interior-point solve cost (4 machines, MM 65536)",
        &["metric", "this reproduction", "paper (IPOPT)"],
    );
    t.push_row(vec!["mean".into(), fmt_secs(mean), "170 ms".into()]);
    t.push_row(vec!["std".into(), fmt_secs(std), "32.3 ms".into()]);
    t.push_row(vec![
        "samples".into(),
        solve_times.len().to_string(),
        "-".into(),
    ]);
    let md = format!(
        "## Interior-point solve cost\n\n{}The absolute numbers differ (a from-scratch dense \
         solver on a small NLP vs IPOPT with its full machinery), but both are orders of \
         magnitude below the multi-second application makespans, matching the paper's \
         conclusion that the better distribution amortizes the solver cost.\n",
        t.to_markdown()
    );
    (md, vec![t])
}

/// Ablation studies called out in DESIGN.md.
pub fn ablations(seeds: u64) -> (String, Vec<Table>) {
    let mut md = String::from(
        "## Ablations\n\nWorkload: a synthetic kernel whose execution blocks sit on the \
         GPU occupancy ramp — the regime where curve quality and solver \
         quality actually change the distribution (fully saturated \
         workloads linearize and are insensitive to both, which is \
         itself an ablation finding recorded here).\n\n",
    );
    let mut tables = Vec::new();
    // One thread per item and substantial per-item work: execution
    // blocks of ~10-20k items expose only 10-20k threads, well below
    // the big GPUs' ~40k-thread half-occupancy points.
    let ramp_cost = || plb_hetsim::workload::LinearCost {
        label: "ramp".into(),
        flops_per_item: 2e5,
        in_bytes_per_item: 64.0,
        out_bytes_per_item: 8.0,
        threads_per_item: 1.0,
    };
    let scenario = Scenario::Four;
    let total: u64 = 400_000;

    let run_cfg = |cfg: PolicyConfig, perturb: Vec<Perturbation>| -> (f64, usize) {
        let mut makespans = Vec::new();
        let mut rebalances = 0;
        for seed in 0..seeds {
            let machines = cluster_scenario(scenario, false);
            let opts = ClusterOptions {
                seed,
                noise_sigma: 0.02,
                ..Default::default()
            };
            let mut cluster = ClusterSim::build(&machines, &opts);
            let cost = ramp_cost();
            let mut policy = PlbHecPolicy::new(&cfg);
            let mut engine =
                SimEngine::new(&mut cluster, &cost).with_perturbations(perturb.clone());
            let r = engine
                .run(&mut policy, total)
                .expect("ablation run completes");
            makespans.push(r.makespan);
            rebalances += policy.rebalances();
        }
        (plb_numerics::mean(&makespans), rebalances)
    };

    // The thread-aware floor of `default_initial_block` would demand
    // 100k-item probes here (one thread per item); the ramp workload
    // deliberately underfills devices, so size probes by data instead.
    let base = PolicyConfig {
        initial_block: (total / 1000).max(1),
        ..Default::default()
    };

    // 1. Curve-family ablation.
    let mut t = Table::new(
        "Ablation: model curve family (occupancy-ramp workload, 4 machines)",
        &["fit mode", "mean makespan"],
    );
    for (label, mode) in [
        ("best-subset (paper)", FitMode::BestSubset),
        ("linear only", FitMode::LinearOnly),
        ("log only (HDSS-style)", FitMode::LogOnly),
    ] {
        let cfg = PolicyConfig {
            fit_mode: mode,
            ..base.clone()
        };
        let (m, _) = run_cfg(cfg, vec![]);
        t.push_row(vec![label.into(), fmt_secs(m)]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    // 2. Solver ablation.
    let mut t = Table::new(
        "Ablation: block-size solver (occupancy-ramp workload, 4 machines)",
        &["solver", "mean makespan"],
    );
    for (label, solver) in [
        ("interior point (paper)", SolverChoice::Auto),
        ("fixed-point equalization", SolverChoice::FixedPointOnly),
        (
            "rate-proportional (Acosta-style)",
            SolverChoice::RateProportionalOnly,
        ),
    ] {
        let cfg = PolicyConfig {
            solver,
            ..base.clone()
        };
        let (m, _) = run_cfg(cfg, vec![]);
        t.push_row(vec![label.into(), fmt_secs(m)]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    // 3. Probe-schedule ablation.
    let mut t = Table::new(
        "Ablation: probe schedule (occupancy-ramp workload, 4 machines)",
        &["schedule", "mean makespan"],
    );
    for (label, sched) in [
        (
            "exponential + t_f/t_k rescale (paper)",
            ProbeSchedule::ExponentialRescaled,
        ),
        ("exponential, equal sizes", ProbeSchedule::ExponentialEqual),
    ] {
        let cfg = PolicyConfig {
            probe_schedule: sched,
            ..base.clone()
        };
        let (m, _) = run_cfg(cfg, vec![]);
        t.push_row(vec![label.into(), fmt_secs(m)]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    // 4. Static (prior-profile) vs dynamic distribution under stale
    //    profiles — the paper's Section II argument against its own
    //    ancestor [17].
    {
        use plb_hec::{PerfProfile, StaticProfilePolicy, UnitModel};
        let machines = cluster_scenario(scenario, false);
        // A saturated workload: the static-vs-dynamic question is about
        // *staleness*, so both sides should have good curve shapes (on
        // the ramp workload PLB's own small probes are the bottleneck,
        // which is ablation 3's finding, not this one's).
        let saturated = || plb_hetsim::workload::LinearCost {
            label: "saturated".into(),
            flops_per_item: 1e5,
            in_bytes_per_item: 64.0,
            out_bytes_per_item: 16.0,
            threads_per_item: 64.0,
        };
        let static_cfg = PolicyConfig {
            initial_block: 1_000,
            ..Default::default()
        };
        let cost_for_profiles = saturated();
        let record = |cluster: &mut ClusterSim| -> Vec<UnitModel> {
            cluster
                .ids()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|id| {
                    let mut p = PerfProfile::new();
                    for &b in &[500u64, 1000, 2000, 4000, 8000, 16000] {
                        let d = cluster.device_mut(id);
                        let xfer = d.transfer_time(&cost_for_profiles, b);
                        let proc = d.proc_time(&cost_for_profiles, b);
                        p.record(b, proc, xfer);
                    }
                    p.fit().expect("offline profiles fit")
                })
                .collect()
        };
        let mut t = Table::new(
            "Ablation: static prior-profile distribution [17] vs dynamic PLB-HeC              (profiles recorded on a healthy cluster; the A GPU has since slowed 4x)",
            &["policy", "mean makespan"],
        );
        let mut static_means = Vec::new();
        let mut dynamic_means = Vec::new();
        for seed in 0..seeds {
            let opts = ClusterOptions {
                seed,
                noise_sigma: 0.02,
                ..Default::default()
            };
            let mut profile_cluster = ClusterSim::build(&machines, &opts);
            let models = record(&mut profile_cluster);

            let degraded = || {
                let mut c = ClusterSim::build(&machines, &opts);
                c.device_mut(PuId(1)).set_slowdown(4.0);
                c
            };
            let mut c = degraded();
            let cost = saturated();
            let mut sp = StaticProfilePolicy::from_profiles(&static_cfg, models);
            static_means.push(
                SimEngine::new(&mut c, &cost)
                    .run(&mut sp, total)
                    .expect("static run")
                    .makespan,
            );
            let mut c = degraded();
            let mut dp = PlbHecPolicy::new(&static_cfg);
            dynamic_means.push(
                SimEngine::new(&mut c, &cost)
                    .run(&mut dp, total)
                    .expect("dynamic run")
                    .makespan,
            );
        }
        t.push_row(vec![
            "static-profile [17]".into(),
            fmt_secs(plb_numerics::mean(&static_means)),
        ]);
        t.push_row(vec![
            "plb-hec (dynamic)".into(),
            fmt_secs(plb_numerics::mean(&dynamic_means)),
        ]);
        md.push_str(&t.to_markdown());
        tables.push(t);
    }

    // 5. Probing data budget (the paper's 20% cap) — how much data may
    //    the modeling phase consume before returns diminish?
    let mut t = Table::new(
        "Ablation: modeling data budget (occupancy-ramp workload, 4 machines)",
        &["modeling cap", "mean makespan"],
    );
    for cap in [0.05, 0.10, 0.20, 0.40] {
        let cfg = PolicyConfig {
            modeling_cap_fraction: cap,
            ..base.clone()
        };
        let (m, _) = run_cfg(cfg, vec![]);
        t.push_row(vec![format!("{:.0}%", cap * 100.0), fmt_secs(m)]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    // 6. Execution round granularity: one-shot distribution vs finer
    //    rounds (drift detectability traded against per-task constants).
    let mut t = Table::new(
        "Ablation: execution round fraction (occupancy-ramp workload, 4 machines)",
        &["round fraction", "mean makespan"],
    );
    for rf in [0.1, 0.2, 0.33, 0.5, 1.0] {
        let cfg = PolicyConfig {
            round_fraction: rf,
            ..base.clone()
        };
        let (m, _) = run_cfg(cfg, vec![]);
        t.push_row(vec![format!("{rf:.2}"), fmt_secs(m)]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    // 7. Rebalance-threshold sweep under QoS drift.
    // Size the drift to land mid-execution.
    let (baseline, _) = run_cfg(base.clone(), vec![]);
    let drift = vec![Perturbation {
        at: 0.4 * baseline,
        kind: PerturbationKind::SetSlowdown(PuId(1), 1.5),
    }];
    let mut t = Table::new(
        "Ablation: rebalance threshold under QoS drift (GPU slows 1.5x mid-run)",
        &["threshold", "mean makespan", "total rebalances"],
    );
    for thr in [0.02, 0.05, 0.10, 0.25, 0.50] {
        let cfg = PolicyConfig {
            rebalance_threshold: thr,
            ..base.clone()
        };
        let (m, reb) = run_cfg(cfg, drift.clone());
        t.push_row(vec![
            format!("{:.0}%", thr * 100.0),
            fmt_secs(m),
            reb.to_string(),
        ]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    (md, tables)
}

/// Generate SVG renderings of the reproduced figures (Gantt for Fig. 3,
/// line charts for Figs. 4/5, grouped bars for Figs. 6/7). Returns
/// `(file stem, svg body)` pairs.
pub fn svgs(seeds: u64) -> Vec<(String, String)> {
    use crate::viz::{gantt_svg, grouped_bars_svg, line_chart_svg, Series};
    let mut out = Vec::new();

    // Fig. 3 Gantt: reuse the same drifted scenario.
    {
        let app = App::MatMul(16384);
        let machines = cluster_scenario(Scenario::Two, true);
        let opts = ClusterOptions {
            seed: 0,
            noise_sigma: 0.01,
            ..Default::default()
        };
        let cost = app.cost();
        let cfg = PolicyConfig {
            initial_block: default_initial_block(app.total_items(), cost.as_ref()),
            ..Default::default()
        }
        .with_round_fraction(0.12);
        let baseline = {
            let mut c = ClusterSim::build(&machines, &opts);
            let mut p = PlbHecPolicy::new(&cfg);
            SimEngine::new(&mut c, cost.as_ref())
                .run(&mut p, app.total_items())
                .unwrap()
                .makespan
        };
        let mut cluster = ClusterSim::build(&machines, &opts);
        let mut policy = PlbHecPolicy::new(&cfg);
        let mut engine =
            SimEngine::new(&mut cluster, cost.as_ref()).with_perturbations(vec![Perturbation {
                at: 0.45 * baseline,
                kind: PerturbationKind::SetSlowdown(PuId(1), 5.0),
            }]);
        let report = engine.run(&mut policy, app.total_items()).unwrap();
        let names: Vec<String> = report.pus.iter().map(|p| p.name.clone()).collect();
        out.push((
            "fig3_gantt".to_string(),
            gantt_svg(
                engine.last_trace().unwrap(),
                &names,
                "Fig. 3 — PLB-HeC rebalancing after mid-run QoS drift (MM 16384, machines A+B)",
            ),
        ));
    }

    // Figs. 4/5 line charts: execution time vs input size, 4 machines.
    let line = |title: &str, apps: &[App], seeds: u64| -> String {
        let x_labels: Vec<String> = apps.iter().map(|a| a.total_items().to_string()).collect();
        let series: Vec<Series> = PolicyKind::ALL
            .iter()
            .map(|&kind| Series {
                label: kind.label().to_string(),
                values: apps
                    .iter()
                    .map(|&a| run_many(a, Scenario::Four, false, kind, seeds).mean_makespan)
                    .collect(),
            })
            .collect();
        line_chart_svg(title, &x_labels, &series, "execution time (s)")
    };
    let mm: Vec<App> = plb_apps::paper_inputs::MM_SIZES
        .iter()
        .map(|&n| App::MatMul(n))
        .collect();
    out.push((
        "fig4_mm".to_string(),
        line("Fig. 4 — MM execution time, 4 machines", &mm, seeds),
    ));
    let grn: Vec<App> = plb_apps::paper_inputs::GRN_SIZES
        .iter()
        .map(|&n| App::Grn(n))
        .collect();
    out.push((
        "fig4_grn".to_string(),
        line("Fig. 4 — GRN execution time, 4 machines", &grn, seeds),
    ));
    let bs: Vec<App> = plb_apps::paper_inputs::BS_SIZES
        .iter()
        .map(|&n| App::BlackScholes(n))
        .collect();
    out.push((
        "fig5_bs".to_string(),
        line(
            "Fig. 5 — Black-Scholes execution time, 4 machines",
            &bs,
            seeds,
        ),
    ));

    // Fig. 6: block-size distribution bars (MM 65536).
    {
        let cats: Vec<String> = [
            "A/cpu", "A/gpu", "B/cpu", "B/gpu", "C/cpu", "C/gpu", "D/cpu", "D/gpu",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let series: Vec<Series> = [PolicyKind::Acosta, PolicyKind::Hdss, PolicyKind::PlbHec]
            .iter()
            .map(|&kind| {
                let agg = run_many(App::MatMul(65536), Scenario::Four, true, kind, seeds);
                Series {
                    label: kind.label().to_string(),
                    values: agg
                        .mean_block_distribution()
                        .unwrap_or_else(|| agg.mean_item_shares()),
                }
            })
            .collect();
        out.push((
            "fig6_distribution".to_string(),
            grouped_bars_svg(
                "Fig. 6 — block size distribution (MM 65536, one GPU per machine)",
                &cats,
                &series,
                "fraction of one step",
            ),
        ));
    }

    // Fig. 7: idle-fraction bars (MM 65536).
    {
        let cats: Vec<String> = [
            "A/cpu", "A/gpu", "B/cpu", "B/gpu", "C/cpu", "C/gpu", "D/cpu", "D/gpu",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let series: Vec<Series> = [PolicyKind::PlbHec, PolicyKind::Hdss]
            .iter()
            .map(|&kind| {
                let agg = run_many(App::MatMul(65536), Scenario::Four, true, kind, seeds);
                Series {
                    label: kind.label().to_string(),
                    values: agg.mean_idle_fractions(),
                }
            })
            .collect();
        out.push((
            "fig7_idleness".to_string(),
            grouped_bars_svg(
                "Fig. 7 — processing unit idle fraction (MM 65536, one GPU per machine)",
                &cats,
                &series,
                "idle fraction of makespan",
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_machines() {
        let (md, tables) = table1();
        for m in ["A", "B", "C", "D"] {
            assert!(md.contains(&format!("| {m} |")), "missing machine {m}");
        }
        // 6 GPU rows: A(1) + B(2) + C(2) + D(1).
        assert_eq!(tables[0].rows.len(), 6);
    }

    #[test]
    fn fig1_produces_four_model_tables() {
        let (md, tables) = fig1();
        assert_eq!(tables.len(), 4);
        assert!(md.contains("R^2"));
    }

    #[test]
    fn fig3_shows_rebalance() {
        let (md, _) = fig3();
        assert!(md.contains("```text"));
        assert!(md.contains("rebalances"));
    }

    #[test]
    fn ipmcost_reports_statistics() {
        let (md, tables) = ipmcost(2);
        assert!(md.contains("170 ms"));
        assert_eq!(tables[0].rows.len(), 3);
    }
}

#[cfg(test)]
mod generator_tests {
    use super::*;

    #[test]
    fn fig4_and_fig5_tables_have_full_grids() {
        let (_, tables) = fig4(1);
        // 10 apps × 4 scenarios rows in each of the two tables.
        assert_eq!(tables[0].rows.len(), 40);
        assert_eq!(tables[1].rows.len(), 40);
        let (_, tables) = fig5(1);
        assert_eq!(tables[0].rows.len(), 20);
    }

    #[test]
    fn fig6_distributions_are_normalized() {
        let (_, tables) = fig6(1);
        assert_eq!(tables.len(), 6); // two sizes per app family
        for t in &tables {
            for row in &t.rows {
                // Columns 1.. hold "mean ± σ" strings; the means must sum
                // to ~1.
                let sum: f64 = row[1..]
                    .iter()
                    .map(|c| c.split('±').next().unwrap().trim().parse::<f64>().unwrap())
                    .sum();
                assert!((sum - 1.0).abs() < 0.02, "{}: sums to {sum}", row[0]);
            }
        }
    }

    #[test]
    fn fig7_idle_fractions_are_percentages() {
        let (_, tables) = fig7(1);
        for t in &tables {
            for row in &t.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                    assert!((0.0..=100.0).contains(&v), "{cell}");
                }
            }
        }
    }

    #[test]
    fn svgs_are_wellformed() {
        for (stem, svg) in svgs(1) {
            assert!(svg.starts_with("<svg"), "{stem}");
            assert!(svg.ends_with("</svg>\n"), "{stem}");
        }
    }
}

/// A one-page summary of the headline reproduced results: the numbers
/// EXPERIMENTS.md discusses, regenerated in one call.
pub fn summary(seeds: u64) -> (String, Vec<Table>) {
    let mut md = String::from("# Reproduction summary\n\n");

    // Headline: MM 65536 on 4 machines, all four policies.
    let mut t = Table::new(
        "Headline case — MM 65536, 4 machines (paper: PLB-HeC 2.2x, HDSS 1.2x, Acosta 1.04x vs greedy)",
        &["policy", "mean makespan", "95% CI (±)", "speedup vs greedy"],
    );
    let mut greedy_mean = 0.0;
    let mut rows = Vec::new();
    for kind in [
        PolicyKind::Greedy,
        PolicyKind::Acosta,
        PolicyKind::Hdss,
        PolicyKind::PlbHec,
    ] {
        let agg = run_many(App::MatMul(65536), Scenario::Four, false, kind, seeds);
        if kind == PolicyKind::Greedy {
            greedy_mean = agg.mean_makespan;
        }
        rows.push((kind.label(), agg.mean_makespan, agg.makespan_ci95()));
    }
    for (label, mean, ci) in rows {
        t.push_row(vec![
            label.into(),
            fmt_secs(mean),
            fmt_secs(ci),
            format!("{:.2}x", greedy_mean / mean),
        ]);
    }
    md.push_str(&t.to_markdown());
    let mut tables = vec![t];

    // Crossover: PLB-HeC speedup across MM sizes (greedy wins small,
    // loses big).
    let mut t = Table::new(
        "Crossover — PLB-HeC speedup vs greedy across MM sizes, 4 machines",
        &["matrix order", "speedup"],
    );
    for &n in &plb_apps::paper_inputs::MM_SIZES {
        let plb = run_many(
            App::MatMul(n),
            Scenario::Four,
            false,
            PolicyKind::PlbHec,
            seeds,
        );
        let greedy = run_many(
            App::MatMul(n),
            Scenario::Four,
            false,
            PolicyKind::Greedy,
            seeds,
        );
        t.push_row(vec![
            n.to_string(),
            format!("{:.2}x", greedy.mean_makespan / plb.mean_makespan),
        ]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    // Scaling: PLB-HeC makespan by machine count (BS 500k).
    let mut t = Table::new(
        "Cluster scaling — PLB-HeC makespan, Black-Scholes 500k options",
        &["machines", "mean makespan"],
    );
    for s in Scenario::ALL {
        let agg = run_many(
            App::BlackScholes(500_000),
            s,
            false,
            PolicyKind::PlbHec,
            seeds,
        );
        t.push_row(vec![s.machines().to_string(), fmt_secs(agg.mean_makespan)]);
    }
    md.push_str(&t.to_markdown());
    tables.push(t);

    md.push_str(
        "See `EXPERIMENTS.md` for the full paper-vs-measured discussion and \
         `results/fig*.md` for every table and figure.\n",
    );
    (md, tables)
}
