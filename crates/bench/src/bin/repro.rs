//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [all|table1|fig1|fig3|fig4|fig5|fig6|fig7|ipmcost|ablations]
//!       [--seeds N] [--out DIR]
//! ```
//!
//! Results land under `results/` as markdown plus CSV.

use plb_bench::figures;
use plb_bench::report::write_results;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut seeds = 10u64;
    let mut out = PathBuf::from("results");

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage("--out needs a path")));
            }
            "-h" | "--help" => usage(""),
            other if !other.starts_with('-') => what = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let jobs: Vec<&str> = if what == "all" {
        vec![
            "table1",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "ipmcost",
            "ablations",
            "svgs",
        ]
    } else {
        vec![what.as_str()]
    };

    for job in jobs {
        let t0 = Instant::now();
        if job == "svgs" {
            std::fs::create_dir_all(&out).expect("create results dir");
            for (stem, svg) in figures::svgs(seeds.min(3)) {
                std::fs::write(out.join(format!("{stem}.svg")), svg).expect("write svg");
            }
            println!(
                "[svgs] done in {:.2}s -> {}/fig*.svg",
                t0.elapsed().as_secs_f64(),
                out.display()
            );
            continue;
        }
        let (md, tables) = match job {
            "table1" => figures::table1(),
            "fig1" => figures::fig1(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(seeds),
            "fig5" => figures::fig5(seeds),
            "fig6" => figures::fig6(seeds),
            "fig7" => figures::fig7(seeds),
            "ipmcost" => figures::ipmcost(seeds),
            "summary" => figures::summary(seeds),
            "ablations" => figures::ablations(seeds),
            other => usage(&format!("unknown figure {other}")),
        };
        write_results(&out, job, &md, &tables).expect("write results");
        println!(
            "[{job}] done in {:.2}s -> {}/{job}.md",
            t0.elapsed().as_secs_f64(),
            out.display()
        );
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [all|table1|fig1|fig3|fig4|fig5|fig6|fig7|ipmcost|ablations|svgs|summary] \
         [--seeds N] [--out DIR]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
