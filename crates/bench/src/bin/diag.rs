use plb_bench::harness::{run_once, App, PolicyKind};
use plb_hetsim::Scenario;

fn main() {
    let app = App::MatMul(65536);
    for kind in PolicyKind::ALL {
        let o = run_once(app, Scenario::Four, false, kind, 0, vec![]);
        println!(
            "== {} makespan={:.1}s tasks={} rebal={}",
            o.report.policy, o.report.makespan, o.report.tasks, o.rebalances
        );
        for p in &o.report.pus {
            println!(
                "   {:8} items={:6} share={:.3} busy={:7.1}s idle={:.1}%",
                p.name,
                p.items,
                p.item_share,
                p.busy_s,
                p.idle_fraction * 100.0
            );
        }
        if let Some(d) = &o.report.block_distribution {
            println!(
                "   dist: {:?}",
                d.iter()
                    .map(|v| (v * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>()
            );
        }
        if !o.solve_times.is_empty() {
            println!("   solves: {:?}", o.solve_times);
        }
    }
}
