//! Regenerate the committed performance snapshots.
//!
//! ```text
//! cargo run -p plb-bench --bin perfbench --release -- [OPTIONS]
//!
//!   --sizes N,N,...   cluster sizes to measure   (default 10,100,1000,10000)
//!   --repeats N       structured-path samples    (default 5)
//!   --dense-max N     largest dense-oracle size  (default 1000)
//!   --out DIR         output directory           (default .)
//!   --solver-only     skip the driver measurements
//! ```
//!
//! Writes `BENCH_solver.json` and `BENCH_driver.json` into `--out`.
//! Always run `--release`; debug-mode numbers are meaningless. See
//! `docs/PERFORMANCE.md` for the methodology and the update protocol.

use plb_bench::perf::{driver_bench, solver_bench};
use std::path::PathBuf;

struct Args {
    sizes: Vec<usize>,
    repeats: usize,
    dense_max: usize,
    out: PathBuf,
    solver_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sizes: vec![10, 100, 1000, 10000],
        repeats: 5,
        dense_max: 1000,
        out: PathBuf::from("."),
        solver_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad size: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("bad --repeats: {e}"))?;
            }
            "--dense-max" => {
                args.dense_max = value("--dense-max")?
                    .parse()
                    .map_err(|e| format!("bad --dense-max: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--solver-only" => args.solver_only = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.sizes.is_empty() {
        return Err("--sizes must name at least one size".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfbench: {e}");
            std::process::exit(2);
        }
    };
    if cfg!(debug_assertions) {
        eprintln!("perfbench: warning: debug build — numbers will not be representative");
    }
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("perfbench: creating {}: {e}", args.out.display());
        std::process::exit(1);
    }

    println!("measuring solver trajectory at sizes {:?} ...", args.sizes);
    let solver = solver_bench(&args.sizes, args.repeats, args.dense_max);
    println!(
        "{:>8} {:>15} {:>15} {:>11} {:>11}",
        "n_pus", "structured_us", "dense_us", "cold_iters", "warm_iters"
    );
    for e in &solver.entries {
        let dense = e
            .dense_us
            .map(|d| format!("{d:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>8} {:>15.1} {:>15} {:>11} {:>11}",
            e.n_pus, e.structured_us, dense, e.cold_iters, e.warm_iters
        );
    }
    let solver_path = args.out.join("BENCH_solver.json");
    if let Err(e) = std::fs::write(&solver_path, solver.to_json()) {
        eprintln!("perfbench: writing {}: {e}", solver_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", solver_path.display());

    if !args.solver_only {
        println!("measuring driver hot path ...");
        let driver = driver_bench();
        println!(
            "  scheduler overhead: {:.2} us/task over {} tasks",
            driver.sched_overhead_us_per_task, driver.tasks_measured
        );
        println!(
            "  event sink: {:.2e} events/s over {} events",
            driver.events_per_sec, driver.events_measured
        );
        for e in &driver.claim {
            println!(
                "  pool claim @ {:>7} items: uniform {:.0} ns, weighted {:.0} ns",
                e.items, e.uniform_ns, e.weighted_ns
            );
        }
        let driver_path = args.out.join("BENCH_driver.json");
        if let Err(e) = std::fs::write(&driver_path, driver.to_json()) {
            eprintln!("perfbench: writing {}: {e}", driver_path.display());
            std::process::exit(1);
        }
        println!("wrote {}", driver_path.display());
    }
}
