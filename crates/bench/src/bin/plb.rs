//! `plb` — run heterogeneous load-balancing experiments from the
//! command line.
//!
//! ```text
//! plb run     --app mm --size 32768 --machines 4 --policy plb-hec
//!             [--seed N] [--single-gpu] [--noise SIGMA]
//!             [--json FILE] [--gantt FILE.svg] [--events FILE.jsonl]
//! plb compare --app bs --size 250000 --machines 4 [--seeds N]
//! plb cluster [--machines 1..4]
//! plb trace   --input FILE.jsonl
//! plb diag    [--app mm --size 65536 --machines 4 --seed 0]
//! ```
//!
//! `run` executes one simulated run and prints the report (optionally a
//! JSON dump, an SVG Gantt, and a structured JSONL event trace);
//! `compare` runs all four policies and prints their makespans and
//! speedups; `cluster` shows the Table I machine presets; `trace` loads
//! a JSONL trace written by `run --events` and prints per-PU Gantt
//! summaries, idle-time breakdowns, fit-quality timelines, and the
//! rebalance history (see docs/OBSERVABILITY.md for the file format);
//! `diag` runs every policy once on the same workload and prints a
//! compact side-by-side diagnostic (shares, distributions, solve times)
//! plus a PLB-HeC deep dive into its block-size selection.

use plb_bench::harness::{default_initial_block, run_once, App, PolicyKind};
use plb_bench::viz::gantt_svg;
use plb_hec::NodeDiffusionPolicy;
use plb_hec::{
    AcostaPolicy, GreedyPolicy, HdssPolicy, PerfProfile, PlbHecPolicy, PolicyConfig,
    StaticProfilePolicy, UnitModel,
};
use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::{cluster_scenario, ClusterSim, Scenario, Topology};
use plb_runtime::{
    equal_cost_shards, write_jsonl, CheckpointConfig, CheckpointError, ClusterEngine, EventSink,
    FaultPlan, NodeFaultPlan, Policy, RunReport, SegmentKind, SimEngine, SimNodeRunner, Trace,
    TraceData, TraceHeader,
};

struct Args {
    cmd: String,
    app: String,
    size: u64,
    skew: f64,
    machines: usize,
    policy: String,
    seed: u64,
    seeds: u64,
    single_gpu: bool,
    noise: f64,
    json: Option<String>,
    gantt: Option<String>,
    cluster_file: Option<String>,
    profiles: Option<String>,
    trace: Option<String>,
    events: Option<String>,
    input: Option<String>,
    faults: Option<String>,
    chaos: Option<u64>,
    chaos_elastic: usize,
    checkpoint: Option<String>,
    checkpoint_interval: Option<u64>,
    resume: bool,
    nodes: usize,
    topology: String,
    node_faults: Option<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        cmd: String::new(),
        app: "mm".into(),
        size: 16384,
        skew: 1.2,
        machines: 4,
        policy: "plb-hec".into(),
        seed: 0,
        seeds: 5,
        single_gpu: false,
        noise: 0.02,
        json: None,
        gantt: None,
        cluster_file: None,
        profiles: None,
        trace: None,
        events: None,
        input: None,
        faults: None,
        chaos: None,
        chaos_elastic: 0,
        checkpoint: None,
        checkpoint_interval: None,
        resume: false,
        nodes: 1,
        topology: "full".into(),
        node_faults: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "run" | "compare" | "cluster" | "profile" | "trace" | "diag" => a.cmd = arg.clone(),
            "--app" => a.app = next("--app"),
            "--size" => {
                a.size = next("--size")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --size"))
            }
            "--skew" => {
                a.skew = next("--skew")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --skew (expects a power-law exponent)"))
            }
            "--machines" => {
                a.machines = next("--machines")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --machines"))
            }
            "--policy" => a.policy = next("--policy"),
            "--seed" => {
                a.seed = next("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--seeds" => {
                a.seeds = next("--seeds")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seeds"))
            }
            "--single-gpu" => a.single_gpu = true,
            "--noise" => {
                a.noise = next("--noise")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --noise"))
            }
            "--json" => a.json = Some(next("--json")),
            "--gantt" => a.gantt = Some(next("--gantt")),
            "--cluster" => a.cluster_file = Some(next("--cluster")),
            "--profiles" => a.profiles = Some(next("--profiles")),
            "--trace" => a.trace = Some(next("--trace")),
            "--events" => a.events = Some(next("--events")),
            "--input" => a.input = Some(next("--input")),
            "--faults" => a.faults = Some(next("--faults")),
            "--chaos" => {
                a.chaos = Some(
                    next("--chaos")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --chaos seed")),
                )
            }
            "--chaos-elastic" => {
                a.chaos_elastic = next("--chaos-elastic")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --chaos-elastic intensity"))
            }
            "--checkpoint" => a.checkpoint = Some(next("--checkpoint")),
            "--checkpoint-interval" => {
                a.checkpoint_interval = Some(
                    next("--checkpoint-interval")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --checkpoint-interval")),
                )
            }
            "--resume" => a.resume = true,
            "--nodes" => {
                a.nodes = next("--nodes")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --nodes"))
            }
            "--topology" => a.topology = next("--topology"),
            "--node-faults" => a.node_faults = Some(next("--node-faults")),
            "-h" | "--help" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if a.cmd.is_empty() {
        usage("missing command");
    }
    a
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage:\n  plb run     --app mm|grn|bs|nn|spmv --size N --machines 1-4 --policy \
         plb-hec|greedy|acosta|hdss\n              [--seed N] [--skew A] [--single-gpu] [--noise SIGMA] \
         [--json FILE] [--gantt FILE.svg] [--trace FILE.json]\n              [--events \
         FILE.jsonl] [--cluster FILE.json] [--faults SPEC] [--chaos SEED] [--chaos-elastic N]\n\
              [--checkpoint FILE [--checkpoint-interval N] [--resume]]\n              [--nodes N \
         [--topology full|ring|star] [--node-faults SPEC]]\n  plb compare --app \
         mm|grn|bs|spmv --size N --machines 1-4 [--seeds N] [--single-gpu]\n  plb cluster \
         [--machines 1-4] [--cluster FILE.json]\n  plb profile --app mm|grn|bs|nn --size N \
         [--machines 1-4|--cluster FILE.json] --profiles OUT.json\n  plb trace   --input \
         FILE.jsonl\n  plb diag    [--app mm|grn|bs|nn|spmv] [--size N] [--machines 1-4] [--seed N] \
         [--single-gpu]\n\n`--app spmv` is the irregular workload: a sparse matrix whose \
         power-law row lengths are generated from --seed, with tail exponent --skew \
         (supported range [0.5, 4.0]); the run balances nonzeros, not rows. \
         A --cluster file is a \
         JSON array of machine specs (see docs/cluster.example.json); it replaces the Table I \
         presets. `plb profile` probes each unit offline and saves its fitted models; \
         `plb run --policy static --profiles FILE` reuses them without any online probing. \
         `plb run --events` captures the structured decision-event trace \
         (docs/OBSERVABILITY.md) that `plb trace` summarizes offline. \
         `plb run --faults` injects deterministic faults, e.g. \
         'panic:pu=1,nth=3; flaky:pu=2,n=4; delay:pu=0,from=2,n=5,s=0.1; \
         join:pu=3,after=40; drift:pu=1,kind=sin,from=0,period=16,amp=0.5', and \
         `--chaos SEED` adds a seeded random fault plan on top; \
         `--chaos-elastic N` extends it with N seeded hot-joins and \
         drift schedules (docs/FAULT_TOLERANCE.md, Elastic capacity). \
         `--checkpoint FILE` snapshots run state every N completed tasks \
         (default 32) so `--resume` can continue a killed run \
         (docs/FAULT_TOLERANCE.md). \
         `--nodes N` runs the multi-node cluster tier: N simulated nodes \
         (each a full --machines cluster running the intra-node --policy) \
         balanced by node-level diffusion over --topology, with \
         inter-node migration; `--node-faults` injects node fault \
         domains, e.g. 'node-crash:1,2; partition:0+1|2,0.5,2.0; \
         link-degrade:0-1,4.0,0.0,3.0' \
         (docs/FAULT_TOLERANCE.md, Node fault domains)."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Machines from a user JSON file, or the Table I presets.
fn machines_of(a: &Args) -> Vec<plb_hetsim::MachineSpec> {
    match &a.cluster_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
            serde_json::from_str(&text)
                .unwrap_or_else(|e| usage(&format!("bad cluster JSON in {path}: {e}")))
        }
        None => cluster_scenario(scenario_of(a.machines), a.single_gpu),
    }
}

fn scenario_of(machines: usize) -> Scenario {
    match machines {
        1 => Scenario::One,
        2 => Scenario::Two,
        3 => Scenario::Three,
        4 => Scenario::Four,
        _ => usage("--machines must be 1-4 (the paper's Table I)"),
    }
}

fn app_of(name: &str, size: u64, skew: f64, seed: u64) -> App {
    match name {
        "mm" | "matmul" => App::MatMul(size),
        "grn" => App::Grn(size),
        "bs" | "blackscholes" => App::BlackScholes(size),
        "nn" | "nnlayer" => App::NnLayer(size),
        "spmv" => {
            // Validate up front so bad parameters are a usage error, not
            // a panic deep inside the harness.
            if let Err(e) = plb_apps::Spmv::new(size, skew, seed) {
                usage(&e);
            }
            App::Spmv {
                rows: size,
                skew,
                seed,
            }
        }
        _ => usage("--app must be mm, grn, bs, nn or spmv"),
    }
}

fn policy_of(name: &str, cfg: &PolicyConfig, profiles: &Option<String>) -> Box<dyn Policy> {
    match name {
        "plb-hec" | "plb" => Box::new(PlbHecPolicy::new(cfg)),
        "greedy" => Box::new(GreedyPolicy::new(cfg)),
        "acosta" => Box::new(AcostaPolicy::new(cfg)),
        "hdss" => Box::new(HdssPolicy::new(cfg)),
        "static" => {
            let path = profiles
                .as_ref()
                .unwrap_or_else(|| usage("--policy static requires --profiles FILE.json"));
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
            let models: Vec<UnitModel> = serde_json::from_str(&text)
                .unwrap_or_else(|e| usage(&format!("bad profile JSON in {path}: {e}")));
            Box::new(StaticProfilePolicy::from_profiles(cfg, models))
        }
        _ => usage("--policy must be plb-hec, greedy, acosta, hdss or static"),
    }
}

fn print_report(report: &RunReport) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "policy    : {}", report.policy);
    let _ = writeln!(out, "makespan  : {:.6} s", report.makespan);
    let _ = writeln!(out, "tasks     : {}", report.tasks);
    let _ = writeln!(out, "items     : {}", report.total_items);
    let _ = writeln!(out, "per unit  :");
    for pu in &report.pus {
        let _ = writeln!(
            out,
            "  {:10} items={:>9} share={:>6.2}% busy={:>10.4}s idle={:>5.1}%",
            pu.name,
            pu.items,
            pu.item_share * 100.0,
            pu.busy_s,
            pu.idle_fraction * 100.0
        );
    }
    if let Some(d) = &report.block_distribution {
        let pretty: Vec<String> = d.iter().map(|f| format!("{:.3}", f)).collect();
        let _ = writeln!(out, "distribution: [{}]", pretty.join(", "));
    }
    let ev = &report.events;
    if ev.task_failures > 0 || ev.task_retries > 0 || ev.quarantines > 0 {
        let _ = writeln!(
            out,
            "faults    : {} failed, {} retried, {} quarantined, {} device losses",
            ev.task_failures, ev.task_retries, ev.quarantines, ev.device_failures
        );
    }
    if ev.migrations_sent > 0 || ev.node_quarantines > 0 || ev.node_joins > 0 {
        let _ = writeln!(
            out,
            "cluster   : {} migrations ({} retried), {} node quarantines, {} re-credits, {} joins",
            ev.migrations_sent,
            ev.migration_retries,
            ev.node_quarantines,
            ev.cover_recredits,
            ev.node_joins
        );
    }
    // Write in one shot, tolerating a closed pipe (e.g. `plb run | head`).
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
}

/// Shared `--json` / `--gantt` / `--trace` / `--events` emission for
/// the single-node and cluster run paths.
fn write_outputs(
    a: &Args,
    report: &RunReport,
    trace: Option<&Trace>,
    events: Option<&EventSink>,
    title: &str,
) {
    if let Some(path) = &a.json {
        let json = serde_json::to_string_pretty(report).expect("report serializes");
        std::fs::write(path, json).expect("write json");
        println!("wrote {path}");
    }
    let names: Vec<String> = report.pus.iter().map(|p| p.name.clone()).collect();
    if let Some(path) = &a.gantt {
        let svg = gantt_svg(trace.expect("trace recorded"), &names, title);
        std::fs::write(path, svg).expect("write gantt svg");
        println!("wrote {path}");
    }
    if let Some(path) = &a.trace {
        let json = trace.expect("trace recorded").to_chrome_trace(&names);
        std::fs::write(path, json).expect("write chrome trace");
        println!("wrote {path} (open in chrome://tracing)");
    }
    if let Some(path) = &a.events {
        let header = TraceHeader {
            version: plb_runtime::TRACE_FORMAT_VERSION,
            policy: report.policy.clone(),
            pu_names: names,
        };
        let segments = trace.expect("trace recorded").segments();
        let events = events.expect("events recorded").events();
        let jsonl = write_jsonl(&header, segments, &events);
        std::fs::write(path, jsonl).expect("write event trace");
        println!("wrote {path} (inspect with `plb trace --input {path}`)");
    }
}

/// `plb run --nodes N`: the multi-node cluster tier. Each node is a
/// full simulated machine cluster running the intra-node `--policy`;
/// the outer engine balances equal-cost home shards across the nodes by
/// diffusion over `--topology`, migrating chunks over the cluster link,
/// under the node fault domains of `--node-faults`.
fn run_cluster_tier(a: &Args) {
    let app = app_of(&a.app, a.size, a.skew, a.seed);
    let machines = machines_of(a);
    let n = a.nodes;
    let topology =
        Topology::parse(&a.topology).unwrap_or_else(|e| usage(&format!("bad --topology: {e}")));
    let node_plan = match &a.node_faults {
        Some(spec) => NodeFaultPlan::parse(spec, n)
            .unwrap_or_else(|e| usage(&format!("bad --node-faults spec: {e}"))),
        None => NodeFaultPlan::none(),
    };
    let chunk_plan = match &a.faults {
        Some(spec) => {
            FaultPlan::parse(spec, n).unwrap_or_else(|e| usage(&format!("bad --faults spec: {e}")))
        }
        None => FaultPlan::none(),
    };
    let cost = app.cost();
    let weights = app.weights();
    // Per-node seeds keep the nodes' noise streams independent while
    // the whole run stays reproducible from --seed.
    let clusters: Vec<ClusterSim> = (0..n)
        .map(|i| {
            let opts = ClusterOptions {
                seed: a.seed.wrapping_add(i as u64),
                noise_sigma: a.noise,
                ..Default::default()
            };
            ClusterSim::build(&machines, &opts)
        })
        .collect();
    // Intra-node chunks are shard-sized, not run-sized: scale the
    // probing block to the per-node share.
    let per_node_cost = (app.total_cost() / (n as u64).max(1)).max(1);
    let cfg = PolicyConfig {
        initial_block: default_initial_block(per_node_cost, cost.as_ref()),
        seed: a.seed,
        ..Default::default()
    };
    let policies: Vec<Box<dyn Policy>> = (0..n)
        .map(|_| policy_of(&a.policy, &cfg, &a.profiles))
        .collect();
    let names: Vec<String> = (0..n).map(|i| format!("node{i}")).collect();
    let mut runner = SimNodeRunner::new(cost.as_ref(), names, clusters, policies, weights.clone());
    let bounds = equal_cost_shards(app.total_items(), n, &weights);
    let mut outer = NodeDiffusionPolicy::new(topology, bounds.clone());
    let mut engine = ClusterEngine::new(&mut runner)
        .with_node_faults(node_plan)
        .with_weights(weights)
        .with_shard_bounds(bounds);
    if !chunk_plan.is_empty() {
        engine = engine.with_faults(chunk_plan);
    }
    if a.resume && a.checkpoint.is_none() {
        usage("--resume requires --checkpoint FILE");
    }
    if let Some(path) = &a.checkpoint {
        let mut ckpt_cfg = CheckpointConfig::new(path);
        if let Some(every) = a.checkpoint_interval {
            ckpt_cfg = ckpt_cfg.with_interval(every);
        }
        engine = engine.with_checkpoint(ckpt_cfg);
        if a.resume {
            match plb_runtime::checkpoint::load(std::path::Path::new(path)) {
                Ok(ckpt) => {
                    println!(
                        "resuming from {path}: snapshot #{}, {} of {} items already done",
                        ckpt.seq,
                        ckpt.completed_items(),
                        ckpt.workload.total_items,
                    );
                    engine = engine.resume_from(ckpt);
                }
                Err(CheckpointError::Io(_)) => {
                    println!("no checkpoint at {path}; starting fresh");
                }
                Err(e) => usage(&format!("cannot resume from {path}: {e}")),
            }
        }
    }
    let report = engine
        .run(&mut outer, app.total_items())
        .unwrap_or_else(|e| {
            eprintln!("run failed: {e}");
            std::process::exit(1)
        });
    print_report(&report);
    let title = format!(
        "{} on {} node(s) x {} machine(s) — {}",
        app.label(),
        n,
        a.machines,
        a.policy
    );
    write_outputs(
        a,
        &report,
        engine.last_trace(),
        engine.last_events(),
        &title,
    );
}

fn main() {
    let a = parse_args();
    match a.cmd.as_str() {
        "cluster" => {
            for m in machines_of(&a) {
                println!(
                    "{}: {} ({} cores @ {} GHz, {} GB RAM)",
                    m.name, m.cpu.name, m.cpu.cores, m.cpu.clock_ghz, m.cpu.ram_gb
                );
                for g in &m.gpus {
                    println!(
                        "   {} — {} cores / {} SMs, {} GB/s, {} GB",
                        g.name, g.cuda_cores, g.sms, g.mem_bandwidth_gbs, g.mem_gb
                    );
                }
            }
        }
        "run" => {
            if a.nodes > 1 {
                run_cluster_tier(&a);
                return;
            }
            if a.node_faults.is_some() {
                usage("--node-faults requires --nodes N (with N > 1)");
            }
            let app = app_of(&a.app, a.size, a.skew, a.seed);
            let machines = machines_of(&a);
            let opts = ClusterOptions {
                seed: a.seed,
                noise_sigma: a.noise,
                ..Default::default()
            };
            let mut cluster = ClusterSim::build(&machines, &opts);
            let n_units = cluster.ids().count();
            let cost = app.cost();
            let cfg = PolicyConfig {
                initial_block: default_initial_block(app.total_cost(), cost.as_ref()),
                seed: a.seed,
                ..Default::default()
            };
            let mut policy = policy_of(&a.policy, &cfg, &a.profiles);
            let mut engine =
                SimEngine::new(&mut cluster, cost.as_ref()).with_weights(app.weights());
            let mut plan = match &a.faults {
                Some(spec) => FaultPlan::parse(spec, n_units)
                    .unwrap_or_else(|e| usage(&format!("bad --faults spec: {e}"))),
                None => FaultPlan::none(),
            };
            if a.chaos.is_some() || a.chaos_elastic > 0 {
                // `--chaos-elastic N` grows the seeded plan with N
                // join/drift faults per unit dimension; without an
                // explicit `--chaos` seed it reuses the run seed.
                let seed = a.chaos.unwrap_or(a.seed);
                let chaos = FaultPlan::chaos_elastic(seed, n_units, 2 * n_units, a.chaos_elastic);
                println!(
                    "chaos seed {seed}: injecting {} faults (elastic intensity {})",
                    chaos.faults.len(),
                    a.chaos_elastic
                );
                plan.faults.extend(chaos.faults);
            }
            if !plan.is_empty() {
                engine = engine.with_faults(plan);
            }
            if a.resume && a.checkpoint.is_none() {
                usage("--resume requires --checkpoint FILE");
            }
            if let Some(path) = &a.checkpoint {
                let mut ckpt_cfg = CheckpointConfig::new(path);
                if let Some(n) = a.checkpoint_interval {
                    ckpt_cfg = ckpt_cfg.with_interval(n);
                }
                engine = engine.with_checkpoint(ckpt_cfg);
                if a.resume {
                    match plb_runtime::checkpoint::load(std::path::Path::new(path)) {
                        Ok(ckpt) => {
                            println!(
                                "resuming from {path}: snapshot #{}, {} of {} items already done",
                                ckpt.seq,
                                ckpt.completed_items(),
                                ckpt.workload.total_items,
                            );
                            engine = engine.resume_from(ckpt);
                        }
                        // A missing file is the normal cold-start case
                        // for idempotent invocations; anything else
                        // (corruption, wrong workload) is a hard error.
                        Err(CheckpointError::Io(_)) => {
                            println!("no checkpoint at {path}; starting fresh");
                        }
                        Err(e) => usage(&format!("cannot resume from {path}: {e}")),
                    }
                }
            }
            let report = engine
                .run(policy.as_mut(), app.total_items())
                .unwrap_or_else(|e| {
                    eprintln!("run failed: {e}");
                    std::process::exit(1)
                });
            print_report(&report);
            let title = format!(
                "{} on {} machine(s) — {}",
                app.label(),
                a.machines,
                report.policy
            );
            write_outputs(
                &a,
                &report,
                engine.last_trace(),
                engine.last_events(),
                &title,
            );
        }
        "trace" => {
            let path = a
                .input
                .as_ref()
                .unwrap_or_else(|| usage("trace needs --input FILE.jsonl"));
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
            let data = TraceData::parse_jsonl(&text)
                .unwrap_or_else(|e| usage(&format!("bad trace in {path}: {e}")));
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(data.summarize().as_bytes());
        }
        "profile" => {
            let out = a
                .profiles
                .as_ref()
                .unwrap_or_else(|| usage("profile needs --profiles OUT.json"));
            let app = app_of(&a.app, a.size, a.skew, a.seed);
            let machines = machines_of(&a);
            let opts = ClusterOptions {
                seed: a.seed,
                noise_sigma: a.noise,
                ..Default::default()
            };
            let mut cluster = ClusterSim::build(&machines, &opts);
            let cost = app.cost();
            // Probe each unit across a size sweep (offline profiling,
            // exactly what the static algorithm [17] requires).
            let base = default_initial_block(app.total_cost(), cost.as_ref()).max(1);
            let ids: Vec<_> = cluster.ids().collect();
            let models: Vec<UnitModel> = ids
                .into_iter()
                .map(|id| {
                    let mut p = PerfProfile::new();
                    for mult in [1u64, 2, 4, 8, 16, 32] {
                        let b = base.saturating_mul(mult);
                        let d = cluster.device_mut(id);
                        let xfer = d.transfer_time(cost.as_ref(), b);
                        let proc = d.proc_time(cost.as_ref(), b);
                        p.record(b, proc, xfer);
                    }
                    p.fit().unwrap_or_else(|e| {
                        eprintln!("profiling fit failed: {e}");
                        std::process::exit(1)
                    })
                })
                .collect();
            for (i, m) in models.iter().enumerate() {
                println!("unit {i}: F {}", m.f.describe());
            }
            let json = serde_json::to_string_pretty(&models).expect("models serialize");
            std::fs::write(out, json).expect("write profiles");
            println!("wrote {} unit profiles to {out}", models.len());
        }
        "compare" => {
            let app = app_of(&a.app, a.size, a.skew, a.seed);
            let scenario = scenario_of(a.machines);
            println!(
                "{} on {} machine(s), mean over {} seeds:",
                app.label(),
                a.machines,
                a.seeds
            );
            let mut greedy_mean = None;
            let mut rows = Vec::new();
            for kind in [
                PolicyKind::Greedy,
                PolicyKind::Acosta,
                PolicyKind::Hdss,
                PolicyKind::PlbHec,
            ] {
                let agg = plb_bench::harness::run_many(app, scenario, a.single_gpu, kind, a.seeds);
                if kind == PolicyKind::Greedy {
                    greedy_mean = Some(agg.mean_makespan);
                }
                rows.push((kind.label(), agg.mean_makespan, agg.std_makespan));
            }
            let g = greedy_mean.expect("greedy ran");
            println!(
                "{:<10} {:>14} {:>10} {:>9}",
                "policy", "makespan", "σ", "speedup"
            );
            for (label, mean, std) in rows {
                println!("{label:<10} {mean:>12.6}s {std:>9.6} {:>8.2}x", g / mean);
            }
        }
        "diag" => {
            let app = app_of(&a.app, a.size, a.skew, a.seed);
            let scenario = scenario_of(a.machines);
            println!(
                "diagnostics: {} on {} machine(s), seed {}",
                app.label(),
                a.machines,
                a.seed
            );
            for kind in PolicyKind::ALL {
                let o = run_once(app, scenario, a.single_gpu, kind, a.seed, vec![]);
                println!(
                    "== {:<10} makespan={:.6}s tasks={} rebalances={}",
                    o.report.policy, o.report.makespan, o.report.tasks, o.rebalances
                );
                for pu in &o.report.pus {
                    println!(
                        "   {:10} items={:>9} share={:>6.2}% busy={:>10.4}s idle={:>5.1}%",
                        pu.name,
                        pu.items,
                        pu.item_share * 100.0,
                        pu.busy_s,
                        pu.idle_fraction * 100.0
                    );
                }
                if let Some(d) = &o.report.block_distribution {
                    let pretty: Vec<String> = d.iter().map(|f| format!("{f:.3}")).collect();
                    println!("   distribution: [{}]", pretty.join(", "));
                }
                if !o.solve_times.is_empty() {
                    let pretty: Vec<String> = o
                        .solve_times
                        .iter()
                        .map(|s| format!("{:.2}ms", s * 1e3))
                        .collect();
                    println!("   solve times: [{}]", pretty.join(", "));
                }
            }
            // PLB-HeC deep dive: how the block-size selection came out and
            // whether any compute segment dominates the run (the two things
            // the old ad-hoc debug binaries existed to show).
            let machines = machines_of(&a);
            let opts = ClusterOptions {
                seed: a.seed,
                noise_sigma: a.noise,
                ..Default::default()
            };
            let mut cluster = ClusterSim::build(&machines, &opts);
            let cost = app.cost();
            let cfg = PolicyConfig {
                initial_block: default_initial_block(app.total_cost(), cost.as_ref()),
                seed: a.seed,
                ..Default::default()
            };
            println!(
                "-- plb-hec deep dive (initial_block = {})",
                cfg.initial_block
            );
            let mut policy = PlbHecPolicy::new(&cfg);
            let mut engine =
                SimEngine::new(&mut cluster, cost.as_ref()).with_weights(app.weights());
            let report = engine
                .run(&mut policy, app.total_items())
                .unwrap_or_else(|e| {
                    eprintln!("plb-hec deep-dive run failed: {e}");
                    std::process::exit(1)
                });
            if let Some(sel) = policy.selections().first() {
                println!(
                    "   selection: method {:?}, predicted makespan {:.6}s",
                    sel.method, sel.predicted_time
                );
                for ((pu, frac), block) in report.pus.iter().zip(&sel.fractions).zip(&sel.blocks) {
                    println!("   {:10} fraction={:.4} block={:>8}", pu.name, frac, block);
                }
            } else {
                println!("   no block-size selection recorded (run too small?)");
            }
            if let Some(trace) = engine.last_trace() {
                let threshold = report.makespan * 0.1;
                let mut shown = 0usize;
                for seg in trace.segments() {
                    if seg.kind == SegmentKind::Compute && seg.end - seg.start > threshold {
                        println!(
                            "   long compute: pu{} task{} items={} {:.1}..{:.1} ({:.1}s)",
                            seg.pu,
                            seg.task,
                            seg.items,
                            seg.start,
                            seg.end,
                            seg.end - seg.start
                        );
                        shown += 1;
                    }
                }
                if shown == 0 {
                    println!("   no compute segment exceeds 10% of the makespan");
                }
            }
        }
        _ => usage("unknown command"),
    }
}
