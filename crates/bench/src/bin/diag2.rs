use plb_bench::harness::default_initial_block;
use plb_hec::{PlbHecPolicy, PolicyConfig};
use plb_hetsim::cluster::ClusterOptions;
use plb_hetsim::{cluster_scenario, ClusterSim, Scenario};
use plb_runtime::SimEngine;

fn main() {
    let app = plb_apps::MatMul::new(65536);
    let cost = app.cost();
    let machines = cluster_scenario(Scenario::Four, false);
    let mut cluster = ClusterSim::build(
        &machines,
        &ClusterOptions {
            seed: 0,
            noise_sigma: 0.02,
            ..Default::default()
        },
    );
    let cfg = PolicyConfig {
        initial_block: default_initial_block(65536, &cost),
        ..Default::default()
    };
    println!("initial_block = {}", cfg.initial_block);
    let mut policy = PlbHecPolicy::new(&cfg);
    let mut engine = SimEngine::new(&mut cluster, &cost);
    let report = engine.run(&mut policy, 65536).unwrap();
    println!("makespan {:.1}s", report.makespan);
    let sel = &policy.selections()[0];
    println!(
        "method {:?} predicted_T {:.2}s",
        sel.method, sel.predicted_time
    );
    for (i, p) in report.pus.iter().enumerate() {
        println!(
            "{:8} frac={:.4} block={:5} busy={:6.1}s idle={:4.1}%",
            p.name,
            sel.fractions[i],
            sel.blocks[i],
            p.busy_s,
            p.idle_fraction * 100.0
        );
    }
    let trace = engine.last_trace().unwrap();
    for seg in trace.segments() {
        if seg.kind == plb_runtime::SegmentKind::Compute && seg.end - seg.start > 5.0 {
            println!(
                "pu{} task{} items={} {:.1}..{:.1} ({:.1}s)",
                seg.pu,
                seg.task,
                seg.items,
                seg.start,
                seg.end,
                seg.end - seg.start
            );
        }
    }
}
// (appended) — task-level dump via a second run
