//! Minimal SVG renderers for the reproduced figures: Gantt charts
//! (Fig. 3), grouped bar charts (Figs. 6 and 7), and line charts
//! (Figs. 4 and 5). Pure `std`; no drawing dependencies.

use plb_runtime::{SegmentKind, Trace};
use std::fmt::Write as _;

/// Categorical palette (colorblind-safe-ish).
const PALETTE: [&str; 6] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#b07aa1",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn svg_header(w: u32, h: u32, title: &str) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">
<rect width="{w}" height="{h}" fill="white"/>
<text x="{x}" y="22" font-size="15" text-anchor="middle" font-weight="bold">{t}</text>
"#,
        x = w / 2,
        t = esc(title)
    )
}

/// Render a run trace as a Gantt chart: one row per unit, compute
/// segments in the unit's colour, transfer segments hatched grey.
pub fn gantt_svg(trace: &Trace, names: &[String], title: &str) -> String {
    let makespan = trace.makespan().max(1e-12);
    let n = trace.n_pus().max(1);
    let label_w = 110.0;
    let plot_w = 760.0;
    let row_h = 26.0;
    let top = 40.0;
    let w = (label_w + plot_w + 20.0) as u32;
    let h = (top + n as f64 * row_h + 40.0) as u32;

    let mut out = svg_header(w, h, title);
    for (i, name) in names.iter().enumerate().take(n) {
        let y = top + i as f64 * row_h;
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            label_w - 8.0,
            y + row_h * 0.65,
            esc(name)
        );
        let _ = writeln!(
            out,
            r##"<rect x="{label_w}" y="{y:.1}" width="{plot_w}" height="{:.1}" fill="#f4f4f4"/>"##,
            row_h - 4.0
        );
    }
    for seg in trace.segments() {
        let x = label_w + seg.start / makespan * plot_w;
        let width = ((seg.end - seg.start) / makespan * plot_w).max(0.5);
        let y = top + seg.pu as f64 * row_h;
        let (fill, opacity) = match seg.kind {
            SegmentKind::Compute => (PALETTE[seg.pu % PALETTE.len()], "1.0"),
            SegmentKind::Transfer => ("#999999", "0.8"),
        };
        let _ = writeln!(
            out,
            r#"<rect x="{x:.2}" y="{y:.1}" width="{width:.2}" height="{:.1}" fill="{fill}" fill-opacity="{opacity}"/>"#,
            row_h - 4.0
        );
    }
    // Time axis.
    let axis_y = top + n as f64 * row_h + 14.0;
    for k in 0..=4 {
        let frac = k as f64 / 4.0;
        let x = label_w + frac * plot_w;
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{axis_y:.1}" font-size="10" text-anchor="middle">{:.2}s</text>"#,
            frac * makespan
        );
    }
    out.push_str("</svg>\n");
    out
}

/// One named series of a bar/line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per category / x-position.
    pub values: Vec<f64>,
}

/// Render grouped vertical bars: `categories` along the x axis, one bar
/// per series within each category (Figs. 6 and 7).
pub fn grouped_bars_svg(
    title: &str,
    categories: &[String],
    series: &[Series],
    y_label: &str,
) -> String {
    assert!(!categories.is_empty() && !series.is_empty());
    for s in series {
        assert_eq!(s.values.len(), categories.len(), "series arity mismatch");
    }
    let w = 900u32;
    let h = 360u32;
    let left = 60.0;
    let bottom = (h - 50) as f64;
    let top = 46.0;
    let plot_w = w as f64 - left - 30.0;
    let plot_h = bottom - top;

    let max_v = series
        .iter()
        .flat_map(|s| s.values.iter())
        .fold(0.0f64, |m, &v| m.max(v))
        .max(1e-12);

    let mut out = svg_header(w, h, title);
    // y axis with 4 gridlines.
    for k in 0..=4 {
        let frac = k as f64 / 4.0;
        let y = bottom - frac * plot_h;
        let _ = writeln!(
            out,
            r##"<line x1="{left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd"/>"##,
            left + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{:.3}</text>"#,
            left - 6.0,
            y + 3.0,
            frac * max_v
        );
    }
    let _ = writeln!(
        out,
        r#"<text x="14" y="{:.1}" font-size="11" transform="rotate(-90 14 {:.1})" text-anchor="middle">{}</text>"#,
        top + plot_h / 2.0,
        top + plot_h / 2.0,
        esc(y_label)
    );

    let group_w = plot_w / categories.len() as f64;
    let bar_w = (group_w * 0.8) / series.len() as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let gx = left + ci as f64 * group_w;
        for (si, s) in series.iter().enumerate() {
            let v = s.values[ci];
            let bh = (v / max_v * plot_h).max(0.0);
            let x = gx + group_w * 0.1 + si as f64 * bar_w;
            let y = bottom - bh;
            let _ = writeln!(
                out,
                r#"<rect x="{x:.2}" y="{y:.2}" width="{:.2}" height="{bh:.2}" fill="{}"/>"#,
                bar_w * 0.92,
                PALETTE[si % PALETTE.len()]
            );
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"#,
            gx + group_w / 2.0,
            bottom + 16.0,
            esc(cat)
        );
    }
    legend(&mut out, series, left, 30.0);
    out.push_str("</svg>\n");
    out
}

/// Render a line chart with a log-ish x axis given by explicit
/// positions (Figs. 4 and 5: execution time vs input size, one line per
/// policy).
pub fn line_chart_svg(
    title: &str,
    x_labels: &[String],
    series: &[Series],
    y_label: &str,
) -> String {
    assert!(x_labels.len() >= 2 && !series.is_empty());
    for s in series {
        assert_eq!(s.values.len(), x_labels.len(), "series arity mismatch");
    }
    let w = 900u32;
    let h = 380u32;
    let left = 70.0;
    let bottom = (h - 50) as f64;
    let top = 46.0;
    let plot_w = w as f64 - left - 30.0;
    let plot_h = bottom - top;

    let max_v = series
        .iter()
        .flat_map(|s| s.values.iter())
        .fold(0.0f64, |m, &v| m.max(v))
        .max(1e-12);

    let mut out = svg_header(w, h, title);
    for k in 0..=4 {
        let frac = k as f64 / 4.0;
        let y = bottom - frac * plot_h;
        let _ = writeln!(
            out,
            r##"<line x1="{left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd"/>"##,
            left + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end">{:.3}</text>"#,
            left - 6.0,
            y + 3.0,
            frac * max_v
        );
    }
    let _ = writeln!(
        out,
        r#"<text x="16" y="{:.1}" font-size="11" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"#,
        top + plot_h / 2.0,
        top + plot_h / 2.0,
        esc(y_label)
    );

    let step = plot_w / (x_labels.len() - 1) as f64;
    for (i, lbl) in x_labels.iter().enumerate() {
        let x = left + i as f64 * step;
        let _ = writeln!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" font-size="10" text-anchor="middle">{}</text>"#,
            bottom + 16.0,
            esc(lbl)
        );
    }
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<String> = s
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                format!(
                    "{:.2},{:.2}",
                    left + i as f64 * step,
                    bottom - v / max_v * plot_h
                )
            })
            .collect();
        let _ = writeln!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            pts.join(" ")
        );
        for p in &pts {
            let mut it = p.split(',');
            let (x, y) = (it.next().unwrap(), it.next().unwrap());
            let _ = writeln!(out, r#"<circle cx="{x}" cy="{y}" r="3" fill="{color}"/>"#);
        }
    }
    legend(&mut out, series, left, 30.0);
    out.push_str("</svg>\n");
    out
}

fn legend(out: &mut String, series: &[Series], x0: f64, y: f64) {
    let mut x = x0;
    for (si, s) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let _ = writeln!(
            out,
            r#"<rect x="{x:.1}" y="{:.1}" width="12" height="12" fill="{color}"/>"#,
            y - 10.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{y:.1}" font-size="11">{}</text>"#,
            x + 16.0,
            esc(&s.label)
        );
        x += 22.0 + 7.5 * s.label.len() as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plb_runtime::trace::Trace as RtTrace;

    fn sample_trace() -> RtTrace {
        let mut t = RtTrace::new(2);
        t.record_task(
            plb_hetsim::PuId(0),
            plb_runtime::TaskId(0),
            10,
            0.0,
            0.2,
            1.0,
        );
        t.record_task(
            plb_hetsim::PuId(1),
            plb_runtime::TaskId(1),
            10,
            0.0,
            0.0,
            2.0,
        );
        t
    }

    #[test]
    fn gantt_contains_rows_and_segments() {
        let names = vec!["cpu".to_string(), "gpu".to_string()];
        let svg = gantt_svg(&sample_trace(), &names, "demo");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains(">cpu<"));
        assert!(svg.contains(">gpu<"));
        // Compute + transfer + background rects present.
        assert!(svg.matches("<rect").count() >= 5);
    }

    #[test]
    fn bars_scale_to_max() {
        let cats = vec!["a".into(), "b".into()];
        let series = vec![
            Series {
                label: "p1".into(),
                values: vec![1.0, 2.0],
            },
            Series {
                label: "p2".into(),
                values: vec![0.5, 1.5],
            },
        ];
        let svg = grouped_bars_svg("demo", &cats, &series, "share");
        assert!(svg.contains("p1") && svg.contains("p2"));
        assert!(svg.matches("<rect").count() >= 4);
    }

    #[test]
    fn line_chart_has_polylines_per_series() {
        let xs = vec!["4096".into(), "8192".into(), "16384".into()];
        let series = vec![
            Series {
                label: "plb".into(),
                values: vec![3.0, 2.0, 1.0],
            },
            Series {
                label: "greedy".into(),
                values: vec![4.0, 4.0, 4.0],
            },
        ];
        let svg = line_chart_svg("demo", &xs, &series, "time");
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_series_rejected() {
        grouped_bars_svg(
            "demo",
            &["a".into()],
            &[Series {
                label: "s".into(),
                values: vec![1.0, 2.0],
            }],
            "y",
        );
    }

    #[test]
    fn titles_are_escaped() {
        let svg = grouped_bars_svg(
            "a < b & c",
            &["x".into()],
            &[Series {
                label: "s".into(),
                values: vec![1.0],
            }],
            "y",
        );
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
