//! The performance-trajectory harness behind `BENCH_solver.json` and
//! `BENCH_driver.json`.
//!
//! Unlike the Criterion benches under `benches/` (interactive,
//! statistics-heavy, never committed), this module produces the small
//! committed snapshots that `cargo xtask bench-check` regression-gates:
//!
//! * [`solver_bench`] — interior-point solve latency as the number of
//!   processing units grows, on both KKT paths (the O(n)
//!   arrow-structured Schur elimination and the dense LU oracle), plus
//!   cold- vs warm-start iteration counts on a drifted re-solve;
//! * [`driver_bench`] — scheduler overhead per task through the real
//!   `core::drive()` loop, and raw event-sink throughput.
//!
//! The JSON is emitted by hand ([`SolverReport::to_json`],
//! [`DriverReport::to_json`]) so the snapshots are byte-stable and the
//! harness has no serializer dependency on its measurement path. The
//! schema, the methodology, and how to refresh the committed files are
//! documented in `docs/PERFORMANCE.md`.

use plb_ipm::nlp::FnCurve;
use plb_ipm::{solve, solve_warm, BlockPartitionNlp, BoxedCurve, IpmOptions, WarmStart};
use std::time::Instant;

/// Schema version stamped into both snapshot files.
pub const PERF_SCHEMA_VERSION: u32 = 1;

/// One row of the solver trajectory: latency and iteration counts at a
/// given cluster size.
#[derive(Debug, Clone)]
pub struct SolverEntry {
    /// Processing units in the synthetic selection problem.
    pub n_pus: usize,
    /// Median wall-clock of a cold solve on the arrow-structured KKT
    /// path, microseconds.
    pub structured_us: f64,
    /// Median wall-clock of the same solve forced onto the dense LU
    /// path, microseconds. `None` when the dense system was too large
    /// to build (the n = 10000 KKT matrix alone is ~3.2 GB).
    pub dense_us: Option<f64>,
    /// Interior-point iterations of a cold solve on a drifted re-fit of
    /// the problem (the rebalance scenario, solved from scratch).
    pub cold_iters: usize,
    /// Iterations of the same drifted re-solve warm-started from the
    /// previous optimum.
    pub warm_iters: usize,
}

/// The committed `BENCH_solver.json` payload.
#[derive(Debug, Clone)]
pub struct SolverReport {
    /// One entry per measured cluster size, ascending.
    pub entries: Vec<SolverEntry>,
}

/// One row of the pool claim-latency table: the per-claim cost of
/// draining a `WorkPool` of a given size through `take`, under uniform
/// weights (O(1) arithmetic) and under a per-item cost table (binary
/// search over the prefix sum). The gap between the two columns is the
/// price of the weighted range model on the driver's claim path.
#[derive(Debug, Clone)]
pub struct ClaimEntry {
    /// Items in the drained pool.
    pub items: u64,
    /// Nanoseconds per claim with `Weights::Uniform`.
    pub uniform_ns: f64,
    /// Nanoseconds per claim with a per-item weight table.
    pub weighted_ns: f64,
}

/// Inter-node migration cost on the cluster tier: how many chunks left
/// their home shard in the reference 3-node run, and the mean modeled
/// link latency each paid. The run uses a virtual clock and a seeded
/// simulator, so both numbers are deterministic — bit-reproducible on
/// any machine — which is what lets `cargo xtask bench-check` gate on
/// them directly instead of on ratios.
#[derive(Debug, Clone)]
pub struct MigrationStats {
    /// `migration_sent` events in the reference cluster run.
    pub migrations: u64,
    /// Mean modeled transfer time per migrated chunk, milliseconds
    /// (floor: the link's 1 ms propagation latency).
    pub xfer_ms_mean: f64,
}

/// The committed `BENCH_driver.json` payload.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Wall-clock scheduler cost per completed task through the full
    /// `core::drive()` loop (simulator backend, so virtual task time is
    /// free and the measurement is pure scheduling), microseconds.
    pub sched_overhead_us_per_task: f64,
    /// Tasks the overhead measurement completed.
    pub tasks_measured: u64,
    /// Sustained `EventSink::record` throughput, events per second.
    pub events_per_sec: f64,
    /// Events the throughput measurement recorded.
    pub events_measured: u64,
    /// Pool claim latency, uniform vs weighted, ascending by size.
    pub claim: Vec<ClaimEntry>,
    /// Inter-node migration latency on the cluster tier.
    pub migration: MigrationStats,
}

/// The synthetic selection problem at a given size: a heterogeneous
/// roster cycling through 64 distinct unit speed grades, each with a
/// mildly convex per-unit finish-time curve (fixed overhead + linear
/// rate + quadratic contention term) — the same shape
/// `BlockPartitionNlp` sees from fitted `F_p`/`G_p` models.
///
/// The curves are expressed in the *normalized share* `s = x·n` (a
/// unit's fraction relative to the uniform 1/n split), so a unit's
/// predicted time stays O(1 second) at every roster size. That is how
/// real fitted curves behave — per-unit work shrinks as the roster
/// grows — and it keeps the equal-finish-time system feasible: with
/// times in raw fractions, a fixed per-unit overhead would exceed the
/// common finish time at large n and no equal-time split would exist.
pub fn synthetic_curves(n: usize, drift: f64) -> Vec<BoxedCurve> {
    let k = n as f64;
    (0..n)
        .map(|i| {
            let rate = (1.0 + (i % 64) as f64 * 0.25) * drift;
            let overhead = 0.01 * (1 + i % 3) as f64;
            let quad = 0.05;
            Box::new(FnCurve::new(
                move |x: f64| overhead + x * k / rate + quad * (x * k) * (x * k),
                move |x: f64| k / rate + 2.0 * quad * k * (x * k),
                move |_x: f64| 2.0 * quad * k * k,
            )) as BoxedCurve
        })
        .collect()
}

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Measure one cluster size. `repeats` controls the structured-path
/// sample count (the dense path at n ≥ 1000 is measured once — a single
/// LU factorization there already dominates the whole budget);
/// `dense_max` caps the size at which the dense oracle is attempted.
pub fn solver_entry(n: usize, repeats: usize, dense_max: usize) -> SolverEntry {
    let opts = IpmOptions::default();

    // Structured path, cold.
    let mut samples = Vec::with_capacity(repeats.max(1));
    let mut cold_sol = None;
    for _ in 0..repeats.max(1) {
        let nlp = BlockPartitionNlp::new(synthetic_curves(n, 1.0));
        let t0 = Instant::now();
        let sol = solve(&nlp, &opts);
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        if let Ok(s) = sol {
            cold_sol = Some(s);
        }
    }
    let structured_us = median_us(&mut samples);

    // Dense oracle (same problem, arrow path disabled).
    let dense_us = (n <= dense_max).then(|| {
        let dense_opts = IpmOptions {
            force_dense_kkt: true,
            ..Default::default()
        };
        let dense_repeats = if n >= 1000 { 1 } else { repeats.max(1) };
        let mut samples = Vec::with_capacity(dense_repeats);
        for _ in 0..dense_repeats {
            let nlp = BlockPartitionNlp::new(synthetic_curves(n, 1.0));
            let t0 = Instant::now();
            let _ = solve(&nlp, &dense_opts);
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        median_us(&mut samples)
    });

    // The rebalance scenario: the models drift 3%, the selection is
    // re-solved — once cold, once warm-started from the stale optimum.
    let drifted = BlockPartitionNlp::new(synthetic_curves(n, 1.03));
    let cold_iters = solve(&drifted, &opts).map(|s| s.iterations).unwrap_or(0);
    let warm_iters = cold_sol
        .as_ref()
        .map(WarmStart::from_solution)
        .and_then(|w| solve_warm(&drifted, &opts, Some(&w)).ok())
        .map(|s| s.iterations)
        .unwrap_or(cold_iters);

    SolverEntry {
        n_pus: n,
        structured_us,
        dense_us,
        cold_iters,
        warm_iters,
    }
}

/// Run the solver trajectory over `sizes`.
pub fn solver_bench(sizes: &[usize], repeats: usize, dense_max: usize) -> SolverReport {
    SolverReport {
        entries: sizes
            .iter()
            .map(|&n| solver_entry(n, repeats, dense_max))
            .collect(),
    }
}

/// Measure one row of the claim-latency table: drain a pool of `items`
/// items twice — once under uniform weights, once under a skewed
/// per-item cost table — with the budget sized so each drain takes on
/// the order of a thousand claims, and report nanoseconds per claim.
pub fn claim_entry(items: u64) -> ClaimEntry {
    use plb_runtime::{Weights, WorkPool};

    // Deterministic skewed costs in [1, 128]: a multiplicative-hash
    // pattern, not RNG, so the snapshot is reproducible bit-for-bit.
    let cost_of = |i: u64| (i.wrapping_mul(2_654_435_761) >> 7) % 128 + 1;
    let weights = std::sync::Arc::new(Weights::per_item((0..items).map(cost_of)));
    let total_cost = weights.total_cost(items);
    let budget = (total_cost / 1024).max(1);

    let drain = |mut pool: WorkPool| -> f64 {
        let mut claims = 0u64;
        let t0 = Instant::now();
        while pool.take(budget).is_some() {
            claims += 1;
        }
        let secs = t0.elapsed().as_secs_f64();
        if claims > 0 {
            secs * 1e9 / claims as f64
        } else {
            0.0
        }
    };

    // Uniform drain gets the same *claim count* (budget rescaled to the
    // uniform cost domain, where cost ≡ items) so the comparison is
    // per-claim against per-claim, not per-drain.
    let uniform_budget = (items / 1024).max(1);
    let uniform_ns = {
        let mut pool = WorkPool::new(items);
        let mut claims = 0u64;
        let t0 = Instant::now();
        while pool.take(uniform_budget).is_some() {
            claims += 1;
        }
        let secs = t0.elapsed().as_secs_f64();
        if claims > 0 {
            secs * 1e9 / claims as f64
        } else {
            0.0
        }
    };
    let weighted_ns = drain(WorkPool::with_weights(items, weights));

    ClaimEntry {
        items,
        uniform_ns,
        weighted_ns,
    }
}

/// Measure the driver hot path: a full simulated run under the greedy
/// policy (maximum task churn — every completion triggers a fresh
/// claim), wall time divided by tasks completed; then raw event-sink
/// recording throughput.
pub fn driver_bench() -> DriverReport {
    use crate::harness::{run_once, App, PolicyKind};
    use plb_hetsim::Scenario;
    use plb_runtime::{EventKind, EventSink};

    // Warm-up run (page in code, allocate cluster state), then measure.
    let _ = run_once(
        App::BlackScholes(50_000),
        Scenario::Two,
        false,
        PolicyKind::Greedy,
        0,
        Vec::new(),
    );
    let t0 = Instant::now();
    let outcome = run_once(
        App::BlackScholes(400_000),
        Scenario::Two,
        false,
        PolicyKind::Greedy,
        0,
        Vec::new(),
    );
    let wall = t0.elapsed().as_secs_f64();
    let tasks = outcome.report.tasks as u64;
    let sched_overhead_us_per_task = if tasks > 0 {
        wall * 1e6 / tasks as f64
    } else {
        0.0
    };

    // Event-sink throughput: the record path the driver hits for every
    // submit/start/finish triple.
    let events_measured: u64 = 1_000_000;
    let mut sink = EventSink::default();
    let t0 = Instant::now();
    for i in 0..events_measured {
        sink.record(
            i as f64 * 1e-6,
            Some((i % 16) as usize),
            EventKind::TaskSubmit {
                task: i,
                items: 64,
                cost: 64,
            },
        );
    }
    let secs = t0.elapsed().as_secs_f64();
    let events_per_sec = if secs > 0.0 {
        events_measured as f64 / secs
    } else {
        0.0
    };

    // Claim path: the uniform fast path vs the weighted binary search,
    // at a small and a large pool (the weighted column should grow only
    // logarithmically between the two).
    let claim = vec![claim_entry(10_000), claim_entry(1_000_000)];

    DriverReport {
        sched_overhead_us_per_task,
        tasks_measured: tasks,
        events_per_sec,
        events_measured,
        claim,
        migration: migration_bench(),
    }
}

/// Measure the cluster tier's migration path: a 3-node ring where node
/// 0 is a two-machine node (faster) and nodes 1–2 single-machine, so
/// node 0 drains its home shard early and pulls cross-shard work over
/// the modeled inter-node link. Virtual clock, zero noise: the event
/// stream — and with it both committed numbers — is deterministic.
pub fn migration_bench() -> MigrationStats {
    use plb_hec::NodeDiffusionPolicy;
    use plb_hetsim::cluster::ClusterOptions;
    use plb_hetsim::workload::LinearCost;
    use plb_hetsim::{cluster_scenario, ClusterSim, Scenario, Topology};
    use plb_runtime::{
        equal_cost_shards, ClusterEngine, EventKind, FixedBlockPolicy, Policy, SimNodeRunner,
        Weights,
    };

    let n_nodes = 3usize;
    let total: u64 = 120_000;
    let cost = LinearCost::generic();
    let opts = ClusterOptions {
        noise_sigma: 0.0,
        ..Default::default()
    };
    let clusters: Vec<ClusterSim> = (0..n_nodes)
        .map(|i| {
            let scenario = if i == 0 { Scenario::Two } else { Scenario::One };
            ClusterSim::build(&cluster_scenario(scenario, false), &opts)
        })
        .collect();
    let policies: Vec<Box<dyn Policy>> = (0..n_nodes)
        .map(|_| Box::new(FixedBlockPolicy { block: 4096 }) as Box<dyn Policy>)
        .collect();
    let names = (0..n_nodes).map(|i| format!("node{i}")).collect();
    let weights = Weights::uniform();
    let bounds = equal_cost_shards(total, n_nodes, &weights);
    let mut runner = SimNodeRunner::new(&cost, names, clusters, policies, weights);
    let mut policy = NodeDiffusionPolicy::new(Topology::Ring, bounds.clone());
    let mut engine = ClusterEngine::new(&mut runner).with_shard_bounds(bounds);
    let _ = engine.run(&mut policy, total);

    let (mut migrations, mut xfer_sum) = (0u64, 0.0f64);
    if let Some(sink) = engine.last_events() {
        for e in sink.events() {
            if let EventKind::MigrationSent { xfer_s, .. } = e.kind {
                migrations += 1;
                xfer_sum += xfer_s;
            }
        }
    }
    MigrationStats {
        migrations,
        xfer_ms_mean: if migrations > 0 {
            xfer_sum * 1e3 / migrations as f64
        } else {
            0.0
        },
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

impl SolverReport {
    /// Serialize to the committed `BENCH_solver.json` shape.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {PERF_SCHEMA_VERSION},\n"));
        out.push_str(
            "  \"note\": \"IPM solve latency vs cluster size; see docs/PERFORMANCE.md\",\n",
        );
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let dense = e
                .dense_us
                .map(fmt_f64)
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "    {{\"n_pus\": {}, \"structured_us\": {}, \"dense_us\": {}, \"cold_iters\": {}, \"warm_iters\": {}}}{}\n",
                e.n_pus,
                fmt_f64(e.structured_us),
                dense,
                e.cold_iters,
                e.warm_iters,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl DriverReport {
    /// Serialize to the committed `BENCH_driver.json` shape.
    pub fn to_json(&self) -> String {
        let mut claim = String::new();
        for (i, e) in self.claim.iter().enumerate() {
            claim.push_str(&format!(
                "    {{\"items\": {}, \"uniform_ns\": {}, \"weighted_ns\": {}}}{}\n",
                e.items,
                fmt_f64(e.uniform_ns),
                fmt_f64(e.weighted_ns),
                if i + 1 < self.claim.len() { "," } else { "" }
            ));
        }
        format!(
            "{{\n  \"schema\": {PERF_SCHEMA_VERSION},\n  \"note\": \"core::drive() hot-path costs; see docs/PERFORMANCE.md\",\n  \"sched_overhead_us_per_task\": {},\n  \"tasks_measured\": {},\n  \"events_per_sec\": {},\n  \"events_measured\": {},\n  \"claim\": [\n{claim}  ],\n  \"migration\": {{\"migrations\": {}, \"xfer_ms_mean\": {}}}\n}}\n",
            fmt_f64(self.sched_overhead_us_per_task),
            self.tasks_measured,
            fmt_f64(self.events_per_sec),
            self.events_measured,
            self.migration.migrations,
            fmt_f64(self.migration.xfer_ms_mean)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_entry_small_is_sane() {
        let e = solver_entry(4, 1, 100);
        assert_eq!(e.n_pus, 4);
        assert!(e.structured_us > 0.0);
        assert!(e.dense_us.unwrap() > 0.0);
        assert!(e.cold_iters > 0);
        assert!(e.warm_iters <= e.cold_iters);
    }

    #[test]
    fn dense_is_skipped_past_the_cap() {
        let e = solver_entry(12, 1, 10);
        assert!(e.dense_us.is_none());
        assert!(e.structured_us > 0.0);
    }

    #[test]
    fn solver_json_has_all_rows_and_null_dense() {
        let report = SolverReport {
            entries: vec![
                SolverEntry {
                    n_pus: 10,
                    structured_us: 50.0,
                    dense_us: Some(80.0),
                    cold_iters: 20,
                    warm_iters: 4,
                },
                SolverEntry {
                    n_pus: 10000,
                    structured_us: 9000.0,
                    dense_us: None,
                    cold_iters: 25,
                    warm_iters: 5,
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"n_pus\": 10,"));
        assert!(json.contains("\"n_pus\": 10000,"));
        assert!(json.contains("\"dense_us\": null"));
        assert!(json.contains("\"schema\": 1"));
    }

    #[test]
    fn driver_json_shape() {
        let report = DriverReport {
            sched_overhead_us_per_task: 1.5,
            tasks_measured: 1000,
            events_per_sec: 2e7,
            events_measured: 1_000_000,
            claim: vec![
                ClaimEntry {
                    items: 10_000,
                    uniform_ns: 40.0,
                    weighted_ns: 90.0,
                },
                ClaimEntry {
                    items: 1_000_000,
                    uniform_ns: 41.0,
                    weighted_ns: 130.0,
                },
            ],
            migration: MigrationStats {
                migrations: 7,
                xfer_ms_mean: 1.234,
            },
        };
        let json = report.to_json();
        assert!(json.contains("\"sched_overhead_us_per_task\": 1.500"));
        assert!(json.contains("\"events_measured\": 1000000"));
        assert!(json.contains("\"items\": 10000,"));
        assert!(json.contains("\"weighted_ns\": 130.000"));
        assert!(json.contains("\"migration\": {\"migrations\": 7, \"xfer_ms_mean\": 1.234}"));
    }

    #[test]
    fn migration_bench_is_deterministic_and_pays_link_latency() {
        let a = migration_bench();
        assert!(a.migrations >= 1, "the skewed ring must migrate work");
        // Every migrated chunk pays at least the link's 1 ms latency.
        assert!(
            a.xfer_ms_mean >= 1.0,
            "mean {} below latency",
            a.xfer_ms_mean
        );
        let b = migration_bench();
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.xfer_ms_mean, b.xfer_ms_mean);
    }

    #[test]
    fn claim_entry_measures_both_paths() {
        let e = claim_entry(10_000);
        assert_eq!(e.items, 10_000);
        assert!(e.uniform_ns > 0.0);
        assert!(e.weighted_ns > 0.0);
    }
}
