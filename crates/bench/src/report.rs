//! Markdown / CSV table emitters for the `results/` directory.

use std::fs;
use std::path::Path;

/// A simple column-oriented table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (markdown heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the arity differs from the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }

    /// Render as CSV (headers + rows; cells are escaped minimally).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Write a figure's markdown (and CSVs for each table) under `dir`.
pub fn write_results(
    dir: &Path,
    name: &str,
    markdown: &str,
    tables: &[Table],
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.md")), markdown)?;
    for (i, t) in tables.iter().enumerate() {
        let suffix = if tables.len() == 1 {
            String::new()
        } else {
            format!("_{i}")
        };
        fs::write(dir.join(format!("{name}{suffix}.csv")), t.to_csv())?;
    }
    Ok(())
}

/// Format seconds compactly (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Format a ratio as `1.23x`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5 µs");
        assert_eq!(fmt_speedup(1.234), "1.23x");
    }
}
