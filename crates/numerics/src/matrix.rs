//! A minimal dense, row-major matrix type.
//!
//! The problems solved in this workspace are small (curve fits over a
//! handful of basis functions, KKT systems with a few dozen variables), so
//! a straightforward `Vec<f64>`-backed dense matrix is the right tool: no
//! unsafe, no external BLAS, cache-friendly row-major storage.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// ```
/// use plb_numerics::Mat;
///
/// let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
/// let b = a.matmul(&Mat::identity(2));
/// assert_eq!(a, b);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major slice. Panics if the slice length
    /// does not equal `rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_rows: expected {} elements, got {}",
            rows * cols,
            data.len()
        );
        Mat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col {} out of bounds ({} cols)",
            j,
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner accesses sequential in memory.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for j in 0..rhs.cols {
                    orow[j] += a * rrow[j];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.cols,
            v.len(),
            "matvec: dimension mismatch ({}x{} * {})",
            self.rows,
            self.cols,
            v.len()
        );
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            self.rows,
            v.len(),
            "tr_matvec: dimension mismatch ({}x{})ᵀ * {}",
            self.rows,
            self.cols,
            v.len()
        );
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += a * vi;
            }
        }
        out
    }

    /// `selfᵀ * self` (the normal-equations Gram matrix).
    pub fn gram(&self) -> Mat {
        let mut g = Mat::zeros(self.cols, self.cols);
        for k in 0..self.rows {
            let row = self.row(k);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add `s` to every diagonal entry (Hessian regularization).
    pub fn add_diag(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Infinity norm of a slice.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// `y += alpha * x` (axpy).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Mat::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "from_rows")]
    fn from_rows_wrong_len_panics() {
        Mat::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(2, 2, &[1., 2., 3., 4.]);
        let b = Mat::from_rows(2, 2, &[5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let c = Mat::identity(2).matmul(&a);
        assert_eq!(c, a);
        let c = a.matmul(&Mat::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matvec_and_transposed() {
        let a = Mat::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matvec(&[1., 1., 1.]), vec![6., 15.]);
        assert_eq!(a.tr_matvec(&[1., 1.]), vec![5., 7., 9.]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Mat::from_rows(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_sub_scale_diag() {
        let a = Mat::from_rows(2, 2, &[1., 2., 3., 4.]);
        let b = Mat::from_rows(2, 2, &[4., 3., 2., 1.]);
        assert_eq!(a.add(&b).as_slice(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&b).as_slice(), &[-3., -1., 1., 3.]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[2., 4., 6., 8.]);
        let mut d = a;
        d.add_diag(10.0);
        assert_eq!(d.as_slice(), &[11., 2., 3., 14.]);
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(1, 2, &[3., -4.]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!((norm2(&[3., 4.]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[1., -7., 3.]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn row_col_access() {
        let m = Mat::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.col(2), vec![3., 6.]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Mat::identity(2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}
