//! Checked float → integer conversions.
//!
//! The workspace's `cargo xtask lint` pass forbids `as` casts to
//! narrower numeric types anywhere in `plb-numerics` / `plb-ipm`
//! *except* this module: a bare `pos as usize` silently saturates on
//! NaN, negative, or oversized values — exactly the kind of quiet
//! corruption a profiling-driven balancer cannot debug after the fact.
//! These helpers centralize the guard so call sites state their intent
//! and receive an explicit `None` on out-of-domain input.

/// Largest `f64` a `usize` conversion is allowed to see. (At this exact
/// boundary the guarded cast below clamps to `usize::MAX`; Rust
/// float-to-int `as` casts saturate.)
const MAX_USIZE_F: f64 = usize::MAX as f64;

/// `x.floor()` as a `usize`; `None` when `x` is NaN, negative, or too
/// large to represent.
pub fn floor_usize(x: f64) -> Option<usize> {
    let f = x.floor();
    if !f.is_finite() || f < 0.0 || f > MAX_USIZE_F {
        return None;
    }
    // Guarded above: finite, non-negative, in range.
    Some(f as usize)
}

/// `x.ceil()` as a `usize`; `None` when `x` is NaN, negative, or too
/// large to represent.
pub fn ceil_usize(x: f64) -> Option<usize> {
    let c = x.ceil();
    if !c.is_finite() || c < 0.0 || c > MAX_USIZE_F {
        return None;
    }
    // Guarded above: finite, non-negative, in range.
    Some(c as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_convert() {
        assert_eq!(floor_usize(3.7), Some(3));
        assert_eq!(ceil_usize(3.2), Some(4));
        assert_eq!(floor_usize(0.0), Some(0));
        assert_eq!(ceil_usize(0.0), Some(0));
    }

    #[test]
    fn out_of_domain_values_are_refused() {
        assert_eq!(floor_usize(f64::NAN), None);
        assert_eq!(ceil_usize(f64::NAN), None);
        assert_eq!(floor_usize(-0.5), None);
        assert_eq!(ceil_usize(-1.5), None);
        assert_eq!(floor_usize(f64::INFINITY), None);
        assert_eq!(floor_usize(1e300), None);
    }

    #[test]
    fn negative_zero_is_in_domain() {
        // ceil(-0.5) is -0.0, which equals 0.0 and must convert.
        assert_eq!(ceil_usize(-0.0), Some(0));
        assert_eq!(floor_usize(-0.0), Some(0));
    }
}
