//! Least-squares performance-curve fitting (paper Section III-B).
//!
//! Given measured `(block size, time)` samples for one processing unit,
//! fit `F_p[x] = Σ a_i f_i(x)` over the paper's basis set and report the
//! coefficient of determination that gates the modeling phase.
//!
//! Block sizes are normalized internally (`u = x / x_scale`) so that the
//! exponential basis functions stay well-conditioned regardless of
//! whether "block size" is 10 options or 10⁹ matrix elements; times are
//! similarly normalized. [`FittedCurve::eval`] and the derivative methods
//! transparently work in original units, which is what the interior-point
//! block-size selection consumes.

use crate::basis::{BasisFn, BasisSet};
use crate::matrix::Mat;
use crate::solve::{lstsq, LinAlgError};
use crate::stats::{adjusted_r_squared, r_squared};

/// Errors from curve fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer samples than model parameters.
    NotEnoughSamples {
        /// Samples available.
        have: usize,
        /// Parameters the model needs.
        need: usize,
    },
    /// A sample had a non-positive block size or non-finite time.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
    },
    /// The underlying linear solve failed on every candidate model.
    AllModelsFailed(LinAlgError),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughSamples { have, need } => {
                write!(f, "not enough samples: have {have}, need {need}")
            }
            FitError::InvalidSample { index } => write!(f, "invalid sample at index {index}"),
            FitError::AllModelsFailed(e) => write!(f, "all candidate models failed: {e}"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted performance curve: model form, coefficients, fit quality, and
/// the normalization used during fitting.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
#[must_use = "a FittedCurve encodes a fitted model; evaluate or store it"]
pub struct FittedCurve {
    basis: BasisSet,
    coeffs: Vec<f64>,
    r2: f64,
    adj_r2: f64,
    x_scale: f64,
    y_scale: f64,
    n_samples: usize,
}

impl FittedCurve {
    /// The model form.
    pub fn basis(&self) -> &BasisSet {
        &self.basis
    }

    /// Fitted coefficients (in normalized space; use `eval` for values).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Plain coefficient of determination of the fit.
    pub fn r2(&self) -> f64 {
        self.r2
    }

    /// Size-penalized R² used for model selection.
    pub fn adjusted_r2(&self) -> f64 {
        self.adj_r2
    }

    /// Number of samples the curve was fitted on.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Predicted time at block size `x` (original units).
    pub fn eval(&self, x: f64) -> f64 {
        let u = x / self.x_scale;
        let s: f64 = self
            .basis
            .funcs()
            .iter()
            .zip(&self.coeffs)
            .map(|(f, a)| a * f.eval(u))
            .sum();
        s * self.y_scale
    }

    /// First derivative `dT/dx` at block size `x` (original units).
    pub fn d1(&self, x: f64) -> f64 {
        let u = x / self.x_scale;
        let s: f64 = self
            .basis
            .funcs()
            .iter()
            .zip(&self.coeffs)
            .map(|(f, a)| a * f.d1(u))
            .sum();
        s * self.y_scale / self.x_scale
    }

    /// Second derivative `d²T/dx²` at block size `x` (original units).
    pub fn d2(&self, x: f64) -> f64 {
        let u = x / self.x_scale;
        let s: f64 = self
            .basis
            .funcs()
            .iter()
            .zip(&self.coeffs)
            .map(|(f, a)| a * f.d2(u))
            .sum();
        s * self.y_scale / (self.x_scale * self.x_scale)
    }

    /// A constant curve (used as a degenerate fallback when a device
    /// produced identical times for every probe, e.g. a fully
    /// overhead-dominated regime).
    pub fn constant(value: f64) -> FittedCurve {
        FittedCurve {
            basis: BasisSet::new(&[BasisFn::One]),
            coeffs: vec![value],
            r2: 1.0,
            adj_r2: 1.0,
            x_scale: 1.0,
            y_scale: 1.0,
            n_samples: 0,
        }
    }

    /// Human-readable summary, e.g.
    /// `"T(x) = a0*1 + a1*x (R^2 = 0.993)"`.
    pub fn describe(&self) -> String {
        format!("T(x) = {} (R^2 = {:.3})", self.basis.describe(), self.r2)
    }
}

fn validate(samples: &[(f64, f64)]) -> Result<(), FitError> {
    for (i, &(x, y)) in samples.iter().enumerate() {
        if !(x.is_finite() && x > 0.0 && y.is_finite()) {
            return Err(FitError::InvalidSample { index: i });
        }
    }
    Ok(())
}

fn scales(samples: &[(f64, f64)]) -> (f64, f64) {
    let x_max = samples.iter().fold(0.0f64, |m, &(x, _)| m.max(x));
    let y_max = samples.iter().fold(0.0f64, |m, &(_, y)| m.max(y.abs()));
    (
        if x_max > 0.0 { x_max } else { 1.0 },
        if y_max > 0.0 { y_max } else { 1.0 },
    )
}

/// Fit one specific model form to `(block size, time)` samples.
pub fn fit_basis(samples: &[(f64, f64)], basis: &BasisSet) -> Result<FittedCurve, FitError> {
    validate(samples)?;
    let n = samples.len();
    let k = basis.len();
    if n < k {
        return Err(FitError::NotEnoughSamples { have: n, need: k });
    }
    let (x_scale, y_scale) = scales(samples);

    let mut design = Mat::zeros(n, k);
    let mut rhs = vec![0.0; n];
    let mut row = Vec::with_capacity(k);
    for (i, &(x, y)) in samples.iter().enumerate() {
        basis.eval_row(x / x_scale, &mut row);
        design.row_mut(i).copy_from_slice(&row);
        rhs[i] = y / y_scale;
    }
    let coeffs = lstsq(&design, &rhs).map_err(FitError::AllModelsFailed)?;

    let predicted: Vec<f64> = (0..n)
        .map(|i| design.row(i).iter().zip(&coeffs).map(|(d, c)| d * c).sum())
        .collect();
    let r2 = r_squared(&rhs, &predicted);
    let adj = adjusted_r_squared(r2, n, k);

    Ok(FittedCurve {
        basis: basis.clone(),
        coeffs,
        r2,
        adj_r2: adj,
        x_scale,
        y_scale,
        n_samples: n,
    })
}

/// Fit the affine transfer-time model `G_p[x] = a1·x + a2` (Equation 2).
pub fn fit_linear(samples: &[(f64, f64)]) -> Result<FittedCurve, FitError> {
    fit_basis(samples, &BasisSet::transfer_linear())
}

/// A fitted performance curve must behave like one outside the sampled
/// range too: execution time is positive and non-decreasing in block
/// size. Candidates that go negative or turn sharply downward when
/// extrapolated (the load balancer evaluates them at execution-block
/// sizes well beyond the probe range) are rejected — an `eˣ` term can
/// interpolate four probe points perfectly and still predict negative
/// times at 10× the range.
fn extrapolates_sanely(fit: &FittedCurve, max_x: f64) -> bool {
    let mut prev = fit.eval(max_x);
    if !(prev.is_finite() && prev > 0.0) {
        return false;
    }
    for mult in [2.0, 4.0, 8.0, 16.0] {
        let v = fit.eval(max_x * mult);
        if !(v.is_finite() && v > 0.0 && v >= 0.99 * prev) {
            return false;
        }
        prev = v;
    }
    true
}

/// Fit every candidate model form and return the best one by adjusted R²
/// (paper Section III-B: best least-squares fit over the basis-function
/// set, with the 0.7 threshold "preventing overfitting").
///
/// Candidate models that fail to solve (singular design on these
/// particular samples) or that extrapolate non-physically (negative or
/// decreasing execution times beyond the sampled range) are skipped;
/// only if *every* candidate fails is an error returned.
///
/// ```
/// use plb_numerics::fit_best_model;
///
/// // A device taking 1 ms of overhead plus 2 µs per item:
/// let samples: Vec<(f64, f64)> = [100.0f64, 200.0, 400.0, 800.0, 1600.0]
///     .iter()
///     .map(|&x| (x, 1e-3 + 2e-6 * x))
///     .collect();
/// let curve = fit_best_model(&samples).unwrap();
/// assert!(curve.r2() > 0.999);
/// assert!((curve.eval(1000.0) - 3e-3).abs() < 1e-5);
/// ```
pub fn fit_best_model(samples: &[(f64, f64)]) -> Result<FittedCurve, FitError> {
    validate(samples)?;
    if samples.len() < 2 {
        return Err(FitError::NotEnoughSamples {
            have: samples.len(),
            need: 2,
        });
    }

    let max_x = samples.iter().fold(0.0f64, |m, &(x, _)| m.max(x));
    let mut best: Option<FittedCurve> = None;
    let mut last_err: Option<FitError> = None;
    // First pass demands at least one residual degree of freedom so an
    // exact interpolation cannot masquerade as a perfect fit (4 probe
    // points + a 4-parameter cubic would always report R² = 1 and defeat
    // the paper's 0.7 convergence gate), and sane extrapolation. The
    // requirements are relaxed step by step only if nothing qualifies.
    for (require_dof, require_sane) in [(true, true), (false, true), (true, false), (false, false)]
    {
        for cand in BasisSet::candidate_models() {
            let limit_ok = if require_dof {
                cand.len() < samples.len()
            } else {
                cand.len() <= samples.len()
            };
            if !limit_ok {
                continue;
            }
            match fit_basis(samples, &cand) {
                Ok(fit) => {
                    if require_sane && !extrapolates_sanely(&fit, max_x) {
                        continue;
                    }
                    // Parsimony margin: a larger model must beat the
                    // incumbent by a real gap, not by noise-level
                    // residual differences — on near-constant data a
                    // quadratic can edge out the affine fit by 1e-4 of
                    // R² and then wildly overestimate when extrapolated.
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            if fit.basis.len() <= b.basis.len() {
                                fit.adj_r2 > b.adj_r2
                            } else {
                                fit.adj_r2 > b.adj_r2 + 0.005
                            }
                        }
                    };
                    if better {
                        best = Some(fit);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        if best.is_some() {
            break;
        }
    }
    best.ok_or_else(|| {
        last_err.unwrap_or(FitError::NotEnoughSamples {
            have: samples.len(),
            need: 2,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisFn;

    fn sample_fn(f: impl Fn(f64) -> f64, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, f(x))).collect()
    }

    const XS: [f64; 8] = [100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0];

    #[test]
    fn recovers_linear_model() {
        let s = sample_fn(|x| 3.0 + 0.002 * x, &XS);
        let fit = fit_linear(&s).unwrap();
        assert!(fit.r2() > 0.999, "r2 = {}", fit.r2());
        for &x in &XS {
            let p = fit.eval(x);
            let t = 3.0 + 0.002 * x;
            assert!((p - t).abs() < 1e-6 * t.max(1.0), "{p} vs {t}");
        }
    }

    #[test]
    fn recovers_cubic_model() {
        let s = sample_fn(|x| 1.0 + 1e-9 * x * x * x, &XS);
        let fit = fit_best_model(&s).unwrap();
        assert!(fit.r2() > 0.999);
        // Interpolation inside range.
        let x = 5000.0;
        let t = 1.0 + 1e-9 * x * x * x;
        assert!((fit.eval(x) - t).abs() / t < 0.05);
    }

    #[test]
    fn recovers_log_saturating_model() {
        // GPU-like: time grows sub-linearly at small sizes.
        let s = sample_fn(|x| 0.5 + 0.3 * (x / 100.0).ln() + 0.0001 * x, &XS);
        let fit = fit_best_model(&s).unwrap();
        assert!(fit.r2() > 0.99, "r2 = {}", fit.r2());
    }

    #[test]
    fn r2_gate_fails_on_noise() {
        // Pure noise (deterministic pseudo-noise): no model should reach
        // R^2 near 1 with high confidence. We only check it runs and
        // yields a finite fit.
        let s: Vec<(f64, f64)> = XS
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, if i % 2 == 0 { 1.0 } else { 9.0 }))
            .collect();
        let fit = fit_best_model(&s).unwrap();
        assert!(fit.r2().is_finite());
    }

    #[test]
    fn derivative_matches_finite_difference_in_original_units() {
        let s = sample_fn(|x| 2.0 + 0.01 * x + 1e-7 * x * x, &XS);
        let fit = fit_best_model(&s).unwrap();
        let x = 1000.0;
        let h = 1.0;
        let num = (fit.eval(x + h) - fit.eval(x - h)) / (2.0 * h);
        let ana = fit.d1(x);
        assert!(
            (num - ana).abs() < 1e-6 * (1.0 + ana.abs()),
            "{num} vs {ana}"
        );
        let num2 = (fit.d1(x + h) - fit.d1(x - h)) / (2.0 * h);
        let ana2 = fit.d2(x);
        assert!(
            (num2 - ana2).abs() < 1e-6 * (1.0 + ana2.abs()),
            "{num2} vs {ana2}"
        );
    }

    #[test]
    fn rejects_nonpositive_block_size() {
        let s = vec![(0.0, 1.0), (1.0, 2.0)];
        assert!(matches!(
            fit_linear(&s),
            Err(FitError::InvalidSample { index: 0 })
        ));
    }

    #[test]
    fn rejects_nan_time() {
        let s = vec![(1.0, f64::NAN), (2.0, 2.0)];
        assert!(matches!(
            fit_linear(&s),
            Err(FitError::InvalidSample { index: 0 })
        ));
    }

    #[test]
    fn too_few_samples() {
        let s = vec![(1.0, 1.0)];
        assert!(matches!(
            fit_best_model(&s),
            Err(FitError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn huge_block_sizes_stay_finite() {
        // Block sizes ~1e9 (65536x65536 matrix rows of floats): exp basis
        // must not overflow thanks to normalization.
        let s = sample_fn(|x| 1.0 + 1e-9 * x, &[1e8, 2e8, 4e8, 8e8, 1.6e9]);
        let fit = fit_best_model(&s).unwrap();
        assert!(fit.eval(1.2e9).is_finite());
        assert!(fit.r2() > 0.99);
    }

    #[test]
    fn constant_curve_fallback() {
        let c = FittedCurve::constant(5.0);
        assert_eq!(c.eval(123.0), 5.0);
        assert_eq!(c.d1(123.0), 0.0);
        assert_eq!(c.d2(123.0), 0.0);
    }

    #[test]
    fn model_selection_prefers_smaller_model_on_ties() {
        // Data exactly linear: the quadratic also fits perfectly, but
        // adjusted R^2 must not pick a larger model that adds nothing.
        let s = sample_fn(|x| 2.0 * x, &XS);
        let fit = fit_best_model(&s).unwrap();
        assert!(
            fit.basis().len() <= 3,
            "picked {:?}",
            fit.basis().describe()
        );
        assert!(fit.r2() > 0.999999);
    }

    #[test]
    fn fit_specific_basis_exact_interpolation() {
        let basis = BasisSet::new(&[BasisFn::One, BasisFn::X, BasisFn::X2]);
        let s = sample_fn(|x| 1.0 + 2.0 * x + 3.0 * x * x, &[1.0, 2.0, 3.0]);
        let fit = fit_basis(&s, &basis).unwrap();
        assert!((fit.eval(2.5) - (1.0 + 5.0 + 18.75)).abs() < 1e-6);
    }

    #[test]
    fn describe_mentions_r2() {
        let s = sample_fn(|x| x, &XS);
        let fit = fit_best_model(&s).unwrap();
        assert!(fit.describe().contains("R^2"));
    }

    #[test]
    fn y_scale_invariance() {
        // Scaling all times by 1e6 must not change R^2.
        let s1 = sample_fn(|x| 1.0 + 0.003 * x + 1e-8 * x * x, &XS);
        let s2: Vec<(f64, f64)> = s1.iter().map(|&(x, y)| (x, y * 1e6)).collect();
        let f1 = fit_best_model(&s1).unwrap();
        let f2 = fit_best_model(&s2).unwrap();
        assert!((f1.r2() - f2.r2()).abs() < 1e-9);
    }
}
